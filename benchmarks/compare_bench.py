"""Perf-regression gate: rerun a figure benchmark and compare it to a
committed baseline.

Used by the CI ``perf-gate`` job::

    python benchmarks/compare_bench.py --figure fig2b --scale small \
        --baseline BENCH_pr1.json --output perf-gate.json

The baseline may be a ``BENCH_prN.json`` snapshot (the comparison uses the
``scales.<scale>.<figure>_rows`` section, preferring its ``after`` side), a
``{"rows": [...]}`` object, or a bare list of row dicts.  Rows are matched
by figure-specific keys (reader count for fig2b, series + blob size for
fig2a) and every metric present in both rows is compared: throughput-like
metrics may not drop by more than ``--tolerance`` (default 15 %), counter
metrics (round trips, nodes fetched) may not grow by more than the same
factor.  The run fails (exit code 1) on any regression, and always writes a
machine-readable report for the workflow-artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.fig2a import run_fig2a  # noqa: E402
from repro.bench.fig2b import run_fig2b  # noqa: E402

_FIGURES = {"fig2a": run_fig2a, "fig2b": run_fig2b}

#: Keys identifying a row within one figure's result table.
_MATCH_KEYS = {
    "fig2a": ("series", "pages_total"),
    "fig2b": ("readers",),
}

#: Metrics where bigger is better (gate on drops).  The ``warm_*`` and
#: cache-hit-rate metrics gate the shared metadata cache: a regression that
#: stops warm repeated reads from being served by the cache shows up as a
#: hit-rate or warm-bandwidth drop.
_HIGHER_IS_BETTER = (
    "avg_bandwidth_mbps",
    "min_bandwidth_mbps",
    "aggregate_mbps",
    "bandwidth_mbps",
    "warm_avg_bandwidth_mbps",
    "cache_hit_rate",
    "warm_cache_hit_rate",
    "page_cache_hit_rate",
    "warm_page_cache_hit_rate",
    "speculative_hit_rate",
    "peer_cache_hit_rate",
)

#: Metrics where smaller is better (gate on growth): round-trip and
#: node-count counters.  ``warm_meta_nodes_per_read`` must stay ~0 — warm
#: traversals fetching nodes from the DHT again is a cache regression —
#: ``warm_vm_trips_per_read`` likewise (warm reads paying the version
#: manager again is a lease regression), and ``warm_data_trips_per_read``
#: must stay 0: warm reads paying the data providers again is a
#: page-cache regression.  ``cold_meta_latency`` (milliseconds) gates the
#: cold metadata descent that speculative prefetch attacks, and
#: ``speculative_wasted`` gates the prefetcher's over-fetch.
_LOWER_IS_BETTER = (
    "cold_meta_latency",
    "speculative_wasted",
    "meta_nodes_per_read",
    "meta_trips_per_read",
    "data_trips_per_read",
    "vm_trips_per_read",
    "warm_meta_nodes_per_read",
    "warm_meta_trips_per_read",
    "warm_data_trips_per_read",
    "warm_vm_trips_per_read",
    "metadata_nodes",
    "border_fetches",
    "data_trips",
    "vm_trips",
)


def load_baseline_rows(path: Path, figure: str, scale: str) -> list[dict]:
    """Extract the baseline's row list for one figure at one scale."""
    document = json.loads(path.read_text())
    if isinstance(document, list):
        return document
    if "rows" in document:
        return document["rows"]
    try:
        section = document["scales"][scale][f"{figure}_rows"]
    except KeyError as error:
        raise SystemExit(
            f"{path}: cannot find rows for {figure}/{scale} ({error} missing)"
        ) from error
    if isinstance(section, dict):
        # BENCH_prN.json keeps a before/after pair; the "after" side is the
        # state the PR shipped, i.e. the baseline for the next PR.
        return section.get("after", section.get("before", []))
    return section


def row_key(row: dict, figure: str) -> tuple:
    return tuple(row.get(key) for key in _MATCH_KEYS[figure])


def compare_rows(
    current: list[dict],
    baseline: list[dict],
    figure: str,
    tolerance: float,
    required_columns: tuple[str, ...] = (),
    exact_columns: tuple[str, ...] = (),
) -> tuple[list[dict], list[str], list[str]]:
    """Compare matched rows metric by metric.

    Returns ``(records, failures, skipped_columns)``.  A gated metric that
    exists in the current rows but not in the baseline is *skipped* (listed
    by name, reported as a warning) — unless it appears in
    ``required_columns``, in which case the gate fails with a clear
    "column missing from baseline" message instead of silently passing (or
    blowing up with a raw ``KeyError``) when the committed baseline
    predates the counter.  A required column missing from the *current*
    rows (the harness stopped emitting it) fails the same way — the gate
    never goes green while a counter it was told to watch is uncompared.

    ``exact_columns`` are held to EQUALITY, not tolerance: a listed column
    must be present on both sides of every matched row and bit-identical
    (as a float).  This is the no-drift gate — e.g. the cold fig2b counters
    must not move at all while the default configuration is unchanged,
    because the cold path is meant to be byte-for-byte the pre-change
    system.
    """
    baseline_by_key = {row_key(row, figure): row for row in baseline}
    records: list[dict] = []
    failures: list[str] = []
    skipped: set[str] = set()
    matched = 0
    matched_pairs: list[tuple[dict, dict]] = []
    for row in current:
        key = row_key(row, figure)
        base = baseline_by_key.get(key)
        if base is None:
            continue
        matched += 1
        matched_pairs.append((row, base))
        label = ", ".join(
            f"{name}={value}" for name, value in zip(_MATCH_KEYS[figure], key)
        )
        for metric, gate in (
            (_HIGHER_IS_BETTER, "min"),
            (_LOWER_IS_BETTER, "max"),
        ):
            for name in metric:
                if name not in row:
                    continue
                if name not in base:
                    skipped.add(name)
                    continue
                now, then = float(row[name]), float(base[name])
                if gate == "min":
                    limit = then * (1.0 - tolerance)
                    ok = now >= limit
                else:
                    limit = then * (1.0 + tolerance)
                    ok = now <= limit
                records.append(
                    {
                        "row": label,
                        "metric": name,
                        "baseline": then,
                        "current": now,
                        "limit": limit,
                        "ok": ok,
                    }
                )
                if not ok:
                    failures.append(
                        f"{label}: {name} {now:.2f} vs baseline {then:.2f} "
                        f"(limit {limit:.2f})"
                    )
        for name in exact_columns:
            if name not in row or name not in base:
                side = "current rows" if name not in row else "baseline"
                failures.append(
                    f"{label}: exact column {name!r} missing from the {side}"
                )
                continue
            now, then = float(row[name]), float(base[name])
            ok = now == then
            records.append(
                {
                    "row": label,
                    "metric": name,
                    "baseline": then,
                    "current": now,
                    "limit": then,
                    "ok": ok,
                }
            )
            if not ok:
                failures.append(
                    f"{label}: {name} {now!r} != baseline {then!r} "
                    "(exact column — must not drift at all)"
                )
    if matched == 0:
        failures.append(
            f"no baseline rows matched the current {figure} rows — "
            "baseline layout or presets changed?"
        )
    for name in required_columns:
        in_current = any(name in row for row, _base in matched_pairs)
        in_baseline = any(name in base for _row, base in matched_pairs)
        if matched and not in_baseline:
            failures.append(
                f"column {name!r} missing from baseline — the committed "
                "baseline predates this counter; regenerate the baseline "
                "(python -m repro.bench) before gating on it"
            )
        if matched and not in_current:
            failures.append(
                f"column {name!r} missing from the current {figure} rows — "
                "the harness stopped emitting a counter the gate is "
                "required to watch"
            )
        if name not in _HIGHER_IS_BETTER and name not in _LOWER_IS_BETTER:
            failures.append(
                f"required column {name!r} is not a gated metric — add it "
                "to _HIGHER_IS_BETTER or _LOWER_IS_BETTER in "
                "benchmarks/compare_bench.py"
            )
    return records, failures, sorted(skipped)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--figure", choices=sorted(_FIGURES), default="fig2b")
    parser.add_argument("--scale", default="small")
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative regression (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--require-columns",
        default="",
        help="comma-separated gated metrics that MUST exist in the baseline; "
        "a listed column the baseline predates fails the gate with a clear "
        "message instead of being skipped",
    )
    parser.add_argument(
        "--exact-columns",
        default="",
        help="comma-separated columns that must be EXACTLY equal (no "
        "tolerance) on every matched row — the no-drift gate for cold-path "
        "counters; a listed column missing from either side fails",
    )
    args = parser.parse_args(argv)
    required = tuple(
        name.strip() for name in args.require_columns.split(",") if name.strip()
    )
    exact = tuple(
        name.strip() for name in args.exact_columns.split(",") if name.strip()
    )

    baseline_rows = load_baseline_rows(args.baseline, args.figure, args.scale)
    result = _FIGURES[args.figure](scale=args.scale)
    records, failures, skipped = compare_rows(
        result.rows, baseline_rows, args.figure, args.tolerance, required, exact
    )

    report = {
        "figure": args.figure,
        "scale": args.scale,
        "baseline_file": str(args.baseline),
        "tolerance": args.tolerance,
        "exact_columns": list(exact),
        "passed": not failures,
        "failures": failures,
        "skipped_columns": skipped,
        "comparisons": records,
        "current_rows": result.rows,
    }
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=1) + "\n")

    checked = len(records)
    print(
        f"perf gate [{args.figure}/{args.scale}] vs {args.baseline}: "
        f"{checked} metric comparisons, {len(failures)} regressions "
        f"(tolerance {args.tolerance:.0%})"
    )
    for record in records:
        if record["metric"] in ("avg_bandwidth_mbps", "bandwidth_mbps"):
            delta = (
                (record["current"] / record["baseline"] - 1.0) * 100
                if record["baseline"]
                else 0.0
            )
            print(
                f"  {record['row']}: {record['metric']} "
                f"{record['baseline']:.2f} -> {record['current']:.2f} "
                f"({delta:+.1f}%)"
            )
    for name in skipped:
        if name not in required:
            print(
                f"  warning: column {name!r} not in baseline (predates it) — "
                "not gated this run"
            )
    for failure in failures:
        print(f"  REGRESSION: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
