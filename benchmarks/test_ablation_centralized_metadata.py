"""ABL-meta benchmark: distributed segment tree vs. centralized metadata.

Asserts the two claims DESIGN.md makes for this ablation: (1) under growing
reader concurrency the DHT-distributed segment tree retains a larger
fraction of its single-reader bandwidth than a centralized metadata server,
and (2) the metadata *write* work per update is O(update + log blob) for
BlobSeer versus O(blob) for a flat centralized table.
"""

import re

from repro.bench.ablations import run_ablation_metadata


def test_centralized_metadata_degrades_faster(benchmark, bench_scale):
    result = benchmark(run_ablation_metadata, bench_scale)
    rows = sorted(result.rows, key=lambda row: row["readers"])
    assert rows[0]["readers"] == 1
    last = rows[-1]
    # Retention = bandwidth at max concurrency / bandwidth with one reader.
    assert last["blobseer_retention"] > last["centralized_retention"]
    # The distributed scheme keeps most of its single-reader bandwidth.
    assert last["blobseer_retention"] >= 0.55


def test_metadata_write_work_is_sublinear(benchmark, bench_scale):
    result = benchmark(run_ablation_metadata, bench_scale)
    note = next(note for note in result.notes if "metadata write work" in note)
    blobseer_nodes, centralized_descriptors = (
        int(value) for value in re.findall(r"BlobSeer (\d+) tree nodes, "
                                            r"centralized flat table (\d+)", note)[0]
    )
    assert blobseer_nodes * 4 < centralized_descriptors
