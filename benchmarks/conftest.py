"""Shared configuration for the benchmark suite.

Every benchmark runs the *small* scale of the corresponding harness so the
whole suite stays CI-friendly; the ``--bench-scale`` option switches to the
larger presets (``default`` or ``paper``) for a faithful regeneration of the
paper's figures.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=("small", "default", "paper"),
        help="scale of the figure/ablation benchmarks (default: small)",
    )


@pytest.fixture
def bench_scale(request) -> str:
    return request.config.getoption("--bench-scale")
