"""FIG-2b benchmark: read throughput under concurrency (Figure 2(b)).

Regenerates the figure's data points (1 / N / M concurrent readers on
disjoint chunks) and asserts the qualitative shape: per-reader bandwidth
degrades only mildly as the reader count approaches the provider count, and
aggregate bandwidth keeps scaling — the opposite of a centralized
bottleneck's 1/N collapse.
"""

from repro.bench.fig2b import run_fig2b, shape_checks


def test_fig2b_read_concurrency_shape(benchmark, bench_scale):
    result = benchmark(run_fig2b, bench_scale)
    checks = shape_checks(result)
    assert all(checks.values()), f"figure 2(b) shape not reproduced: {checks}"


def test_fig2b_reader_counts_cover_paper_pattern(benchmark, bench_scale):
    """The experiment must include a single reader, an intermediate count and
    a count matching the provider pool (the paper's 1 / 100 / 175 pattern)."""
    result = benchmark(run_fig2b, bench_scale)
    readers = sorted(row["readers"] for row in result.rows)
    providers = result.rows[0]["providers"]
    assert readers[0] == 1
    assert len(readers) >= 3
    assert readers[-1] >= providers  # readers saturate the provider pool
    # Per-reader bandwidth is positive everywhere and monotone non-increasing
    # within a small tolerance (queueing noise allowed).
    ordered = [row["avg_bandwidth_mbps"] for row in
               sorted(result.rows, key=lambda row: row["readers"])]
    assert all(value > 0 for value in ordered)
    assert ordered[-1] <= ordered[0] * 1.05
