"""ABL-psize benchmark: page-size sweep.

Larger pages amortize the per-request overheads (higher append/read
bandwidth), at the cost of proportionally more metadata nodes per byte for
small pages — the trade-off behind the paper's choice of 64 KB / 256 KB.
"""

from repro.bench.ablations import run_ablation_page_size


def test_larger_pages_amortize_overhead(benchmark, bench_scale):
    result = benchmark(run_ablation_page_size, bench_scale)
    rows = sorted(result.rows, key=lambda row: row["page_size_kib"])
    appends = [row["append_mbps"] for row in rows]
    reads = [row["read_mbps"] for row in rows]
    assert appends == sorted(appends), "append bandwidth must rise with page size"
    # Reads must not *lose* bandwidth as pages grow.  With frontier-batched
    # metadata the per-node round trips no longer dominate the read path, so
    # the curve is nearly flat and tiny (<2 %) scheduling wiggles between
    # adjacent page sizes are expected noise, not a broken trend.  Comparing
    # against the best bandwidth seen so far (not the neighbour) keeps the
    # tolerance from compounding into a permitted monotonic decline.
    best = 0.0
    for bandwidth in reads:
        assert bandwidth >= 0.98 * best, (
            f"read bandwidth must not drop with page size: {reads}"
        )
        best = max(best, bandwidth)


def test_metadata_cost_scales_inversely_with_page_size(benchmark, bench_scale):
    result = benchmark(run_ablation_page_size, bench_scale)
    rows = sorted(result.rows, key=lambda row: row["page_size_kib"])
    smallest, largest = rows[0], rows[-1]
    size_factor = largest["page_size_kib"] / smallest["page_size_kib"]
    node_factor = (
        smallest["metadata_nodes_per_append"] / largest["metadata_nodes_per_append"]
    )
    # Halving the page size roughly doubles the metadata nodes per update.
    assert node_factor >= size_factor / 2
    assert node_factor <= size_factor * 2
