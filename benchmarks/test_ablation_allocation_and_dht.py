"""ABL-alloc / ABL-dht benchmarks: load balance of pages and metadata.

The provider manager must spread pages evenly over data providers
(Section 3.1) and the DHT must spread tree nodes evenly over metadata
providers (Section 4.1) — otherwise hot nodes reintroduce the serialization
the design is built to avoid.
"""

from repro.bench.ablations import run_ablation_allocation, run_ablation_dht_placement


def test_round_robin_and_least_loaded_stay_balanced(benchmark, bench_scale):
    result = benchmark(run_ablation_allocation, bench_scale)
    rows = {row["strategy"]: row for row in result.rows}
    assert rows["round_robin"]["imbalance_max_over_mean"] <= 1.15
    assert rows["least_loaded"]["imbalance_max_over_mean"] <= 1.15
    assert rows["round_robin"]["idle_providers"] == 0
    assert rows["least_loaded"]["idle_providers"] == 0
    # The random strawman is never better than the deterministic strategies.
    assert (
        rows["random"]["imbalance_max_over_mean"]
        >= rows["round_robin"]["imbalance_max_over_mean"] - 1e-9
    )


def test_every_strategy_stores_the_same_workload(benchmark, bench_scale):
    result = benchmark(run_ablation_allocation, bench_scale)
    totals = {row["total_pages"] for row in result.rows}
    assert len(totals) == 1  # same workload, same number of pages stored


def test_dht_placement_spreads_metadata(benchmark, bench_scale):
    result = benchmark(run_ablation_dht_placement, bench_scale)
    for row in result.rows:
        assert row["empty_buckets"] == 0
        assert row["max_over_mean"] <= 2.0
        assert row["min_over_mean"] >= 0.3
    strategies = {row["strategy"] for row in result.rows}
    assert strategies == {"static", "consistent"}
    nodes = {row["metadata_nodes"] for row in result.rows}
    assert len(nodes) == 1  # identical workload across placement schemes
