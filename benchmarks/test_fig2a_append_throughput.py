"""FIG-2a benchmark: append throughput as the blob grows (Figure 2(a)).

Regenerates the figure's data series and asserts its qualitative shape:
flat bandwidth while the blob grows, larger pages at least as fast, more
providers never worse.  Absolute MB/s values are reported, not asserted
(the substrate is a simulator, not Grid'5000).
"""

from repro.bench.fig2a import run_fig2a, shape_checks


def test_fig2a_append_throughput(benchmark, bench_scale):
    result = benchmark(run_fig2a, bench_scale)
    checks = shape_checks(result)
    assert all(checks.values()), f"figure 2(a) shape not reproduced: {checks}"
    # Every series must contain multiple points along the blob-growth axis.
    series = {row["series"] for row in result.rows}
    assert len(series) >= 3
    assert all(
        sum(1 for row in result.rows if row["series"] == name) >= 3 for name in series
    )


def test_fig2a_metadata_overhead_grows_logarithmically(benchmark, bench_scale):
    """The per-append metadata node count must grow like log2(blob pages),
    which is the mechanism behind the paper's power-of-two dips."""
    result = benchmark(run_fig2a, bench_scale)
    rows = [row for row in result.rows if not row["series"].startswith("fine")]
    by_series = {}
    for row in rows:
        by_series.setdefault(row["series"], []).append(row)
    for series_rows in by_series.values():
        first, last = series_rows[0], series_rows[-1]
        growth_factor = last["pages_total"] // first["pages_total"]
        node_increase = last["metadata_nodes"] - first["metadata_nodes"]
        # Metadata per append grows by ~log2(growth) nodes, never linearly.
        assert node_increase <= 2 + growth_factor.bit_length() + 4
        assert node_increase >= 0
