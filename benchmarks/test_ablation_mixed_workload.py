"""ABL-mixed benchmark: readers under concurrent appenders.

The isolation claim (Section 4.3): readers of a published snapshot and
writers creating new snapshots share only the network, never locks or
metadata, so per-reader bandwidth must degrade gracefully as appenders are
added, and every concurrent append must still be published.
"""

from repro.bench.ablations import run_ablation_mixed_workload


def test_readers_keep_most_bandwidth_under_concurrent_appends(benchmark, bench_scale):
    result = benchmark(run_ablation_mixed_workload, bench_scale)
    rows = sorted(result.rows, key=lambda row: row["writers"])
    assert rows[0]["writers"] == 0
    baseline = rows[0]["avg_read_mbps"]
    first_contended = rows[1]["avg_read_mbps"]
    most_writers = rows[-1]
    # Fair sharing with appenders costs something, but far from starvation.
    # Frontier-batched metadata made the *uncontended* baseline much faster
    # (the read path is now page-NIC-bound, not metadata-bound), so the old
    # >= 0.5 * baseline floor no longer describes NIC fair sharing.  Two
    # scale-relative guards instead: contention must never take readers
    # below a quarter of their uncontended bandwidth, and piling on writers
    # beyond the first contended point must degrade gradually (NIC queueing),
    # not collapse.
    assert most_writers["avg_read_mbps"] >= 0.25 * baseline
    assert most_writers["avg_read_mbps"] >= 0.5 * first_contended
    # Appenders also make progress while readers hammer the providers.
    assert most_writers["avg_append_mbps"] > 0


def test_all_concurrent_appends_are_published(benchmark, bench_scale):
    result = benchmark(run_ablation_mixed_workload, bench_scale)
    for row in result.rows:
        assert row["versions_published"] % 2 == 0  # appends_per_writer = 2
        assert row["versions_published"] == 2 * row["writers"]
