"""ABL-space benchmark: storage footprint of page sharing vs. full copy.

The paper's space-efficiency claim: "real space is consumed only by the
newly generated pages".  After V partial overwrites of a fixed fraction f,
BlobSeer should store ~(1 + V*f) times the blob size while the full-copy
baseline stores ~(1 + V) times; the ratio between the two must therefore
grow with the number of versions.
"""

from repro.bench.ablations import run_ablation_storage_space


def test_storage_space_ratio_grows_with_versions(benchmark, bench_scale):
    result = benchmark(run_ablation_storage_space, bench_scale)
    rows = sorted(result.rows, key=lambda row: row["version"])
    assert rows[0]["ratio"] <= 1.5
    assert rows[-1]["ratio"] > 3.0
    ratios = [row["ratio"] for row in rows]
    assert ratios == sorted(ratios), "space advantage must grow monotonically"


def test_blobseer_storage_grows_with_bytes_written_only(benchmark, bench_scale):
    result = benchmark(run_ablation_storage_space, bench_scale)
    rows = sorted(result.rows, key=lambda row: row["version"])
    initial = rows[0]["blobseer_bytes"]
    final = rows[-1]["blobseer_bytes"]
    versions = rows[-1]["version"] - rows[0]["version"]
    per_version_growth = (final - initial) / max(versions, 1)
    # Each version only adds the overwritten fraction, far below a full copy.
    assert per_version_growth < 0.5 * initial
    # The full-copy baseline adds a whole blob per version.
    fullcopy_growth = (rows[-1]["fullcopy_bytes"] - rows[0]["fullcopy_bytes"]) / max(
        versions, 1
    )
    assert fullcopy_growth >= initial * 0.99
