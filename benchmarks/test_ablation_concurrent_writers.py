"""ABL-writers benchmark: aggregate throughput with concurrent appenders.

The paper argues (Section 4.3) that WRITEs and APPENDs "may fully proceed in
parallel" — only version assignment serializes.  Aggregate append throughput
must therefore scale close to linearly with the number of concurrent
appenders until provider NICs saturate, and every assigned version must end
up published (no lost or stuck updates).
"""

from repro.bench.ablations import run_ablation_concurrent_writers


def test_aggregate_append_throughput_scales(benchmark, bench_scale):
    result = benchmark(run_ablation_concurrent_writers, bench_scale)
    rows = sorted(result.rows, key=lambda row: row["writers"])
    single = rows[0]
    most = rows[-1]
    scale_up = most["writers"] / single["writers"]
    achieved = most["aggregate_mbps"] / single["aggregate_mbps"]
    # At least 60 % of perfect linear scaling before NIC saturation effects.
    assert achieved >= 0.6 * scale_up
    # Per-writer bandwidth under concurrency stays within 2x of a lone writer.
    assert most["avg_writer_mbps"] >= 0.5 * single["avg_writer_mbps"]


def test_every_concurrent_update_is_published(benchmark, bench_scale):
    result = benchmark(run_ablation_concurrent_writers, bench_scale)
    for row in result.rows:
        # final_version == total number of appends issued in that run
        # (atomic total ordering: nothing lost, nothing duplicated).
        assert row["final_version"] > 0
        assert row["final_version"] % row["writers"] == 0
