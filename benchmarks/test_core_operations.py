"""Micro-benchmarks of the core library operations (no simulator).

These are regular pytest-benchmark measurements of the in-process library:
append / write / read latency on an in-memory cluster, and the raw cost of
the metadata algorithms (tree build and traversal).  They are not figures
from the paper but keep the library's hot paths observable over time.
"""

import pytest

from repro import BlobStore, Cluster
from repro.config import KiB
from repro.metadata.build import BorderSpec, border_targets, build_nodes
from repro.metadata.node import PageDescriptor
from repro.metadata.read_plan import drive_plan, read_plan

PAGE_SIZE = 4 * KiB


@pytest.fixture
def cluster():
    return Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=PAGE_SIZE
    )


@pytest.fixture
def store(cluster):
    # Cold cache: these series track the *uncached* hot paths (metadata
    # traversal included) over time; a warm shared cache would reduce the
    # read benchmarks to cache-hit microbenchmarks and break continuity
    # with the pre-cache numbers.
    return BlobStore(cluster, cache_metadata=False)


def test_append_latency(benchmark, store):
    blob_id = store.create()
    payload = b"x" * (16 * PAGE_SIZE)
    benchmark(store.append, blob_id, payload)


def test_overwrite_latency(benchmark, store):
    blob_id = store.create()
    store.append(blob_id, b"y" * (64 * PAGE_SIZE))
    payload = b"z" * (8 * PAGE_SIZE)
    benchmark(store.write, blob_id, payload, 16 * PAGE_SIZE)


def test_read_latency(benchmark, store):
    blob_id = store.create()
    version = store.append(blob_id, b"r" * (64 * PAGE_SIZE))
    store.sync(blob_id, version)
    benchmark(store.read, blob_id, version, 8 * PAGE_SIZE, 32 * PAGE_SIZE)


def test_metadata_build_nodes(benchmark):
    span = 1024
    pages = 64
    descriptors = [
        PageDescriptor(page_index=index, page_id=f"p{index}",
                       provider_id="data-0000", length=PAGE_SIZE)
        for index in range(pages)
    ]
    needed, dangling = border_targets(0, pages, span, 0)
    borders = BorderSpec(versions={target: None for target in needed + dangling})
    benchmark(build_nodes, 1, 0, pages, span, descriptors, borders)


def test_metadata_read_plan_traversal(benchmark):
    span = 1024
    pages = 64
    descriptors = [
        PageDescriptor(page_index=index, page_id=f"p{index}",
                       provider_id="data-0000", length=PAGE_SIZE)
        for index in range(span)
    ]
    needed, dangling = border_targets(0, span, span, 0)
    borders = BorderSpec(versions={target: None for target in needed + dangling})
    build = build_nodes(1, 0, span, span, descriptors, borders)
    nodes = {(ref.offset, ref.size): node for ref, node in build.nodes}

    def fetch(ref):
        return nodes[(ref.offset, ref.size)]

    def traverse():
        return drive_plan(read_plan(1, span, 128, pages), fetch)

    result = benchmark(traverse)
    assert len(result.descriptors) == pages
