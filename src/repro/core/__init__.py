"""Public client API of the BlobSeer reproduction.

* :class:`~repro.core.cluster.Cluster` — an in-process deployment wiring
  together the version manager, provider manager, data providers and the
  metadata DHT.
* :class:`~repro.core.blob_store.BlobStore` — the client implementing the
  paper's primitives (CREATE, WRITE, APPEND, READ, GET_RECENT, GET_SIZE,
  SYNC, BRANCH).
* :class:`~repro.core.blob.Blob` — an object-style handle over one blob.
"""

from .cluster import Cluster
from .blob_store import BlobStore, ReadStats, WriteResult
from .blob import Blob
from .io import AppendWriter, SnapshotReader

__all__ = [
    "Cluster",
    "BlobStore",
    "Blob",
    "ReadStats",
    "WriteResult",
    "AppendWriter",
    "SnapshotReader",
]
