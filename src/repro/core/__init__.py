"""Public client API of the BlobSeer reproduction.

* :class:`~repro.core.cluster.Cluster` — an in-process deployment wiring
  together the version manager, provider manager, data providers and the
  metadata DHT.
* :class:`~repro.core.async_store.AsyncBlobStore` — the asyncio-native
  client core implementing the paper's primitives (CREATE, WRITE, APPEND,
  READ, GET_RECENT, GET_SIZE, SYNC, BRANCH) as awaitables.
* :class:`~repro.core.blob_store.BlobStore` — the synchronous client, a
  loop-free bridge over the same core.
* :class:`~repro.core.blob.Blob` — an object-style handle over one blob.
"""

from .cluster import Cluster
from .async_store import AsyncBlobStore
from .blob_store import BlobStore, ReadStats, WriteResult
from .blob import Blob
from .io import AppendWriter, SnapshotReader

__all__ = [
    "Cluster",
    "AsyncBlobStore",
    "BlobStore",
    "Blob",
    "ReadStats",
    "WriteResult",
    "AppendWriter",
    "SnapshotReader",
]
