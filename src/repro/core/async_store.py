"""The asyncio-native client core: CREATE, WRITE, APPEND, READ, GET_RECENT,
GET_SIZE, SYNC and BRANCH as awaitables (paper, Section 2.1).

:class:`AsyncBlobStore` IS the client implementation — the sync
:class:`~repro.core.blob_store.BlobStore` is a loop-free bridge over this
class (see :mod:`repro.aio`), so planning, caching, replication, retry and
trip accounting exist exactly once.  Which of the two execution modes runs
underneath is decided by the injected :class:`~repro.aio.IORuntime`:

* under :class:`~repro.aio.SyncRuntime` no awaitable ever suspends, the
  traversal stays strictly level-by-level and the write path stores pages
  before publishing metadata — the pre-async behaviour, timing and counters,
  bit for bit;

* under :class:`~repro.aio.AsyncRuntime` (the default) the store exploits
  the event loop where the old thread pool could not:

  - READ *pipelines* the metadata tree descent: one frontier's fetches are
    grouped by DHT bucket and each group expands its children — and issues
    their level-N+1 fetches — the moment it lands, while the level's slower
    buckets are still in flight (``_pipelined_walk``);
  - WRITE *overlaps* the batched ``put_nodes`` publish with the page
    stores: descriptors are built optimistically from the allocated replica
    sets, the publish task starts while pages are still landing, and the
    rare page that landed on fewer replicas than allocated gets its leaf
    re-put before the version manager is notified (``_finish_update``);
  - SYNC and retry backoff park on the loop instead of a thread, so
    thousands of operations stay concurrently in flight in one process
    with zero per-operation threads.

Both modes produce identical bytes and identical ``ReadStats`` /
``WriteResult`` trip counters on healthy clusters (the equivalence property
in ``tests/test_async_store.py`` asserts this across random histories);
the only intentional divergence is the degraded-write reconciliation trip,
which can only occur with ``page_replication > 1`` and a mid-write replica
failure.

Everything the sync client's docstring says about frontier-parallel
metadata I/O, provider-parallel data I/O, shared caches and version leases
(see :mod:`repro.core.blob_store`) applies unchanged — same planners, same
components, same accounting.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from ..aio import AsyncRuntime, Handle, IORuntime
from ..cache import (
    CacheStats,
    CacheTally,
    NodeCache,
    PageCache,
    PeerCacheGroup,
    PeerCacheMember,
    complete_frontier,
    split_frontier,
)
from ..errors import InvalidRangeError, StoreClosedError, UpdateAbortedError
from ..metadata.build import BorderSpec, border_plan, border_targets, build_nodes
from ..metadata.geometry import pages_for_size, span_for_pages, validate_node_range
from ..metadata.node import LeafNode, NodeKey, NodeRef, PageDescriptor, TreeNode
from ..metadata.read_plan import (
    ReadPlanResult,
    adrive_plan,
    multi_range_read_plan,
    plan_walker,
    read_plan,
)
from ..obs.trace import span
from ..providers.provider_manager import FaultTally
from ..util.ranges import covering_page_range, is_aligned
from ..version.records import BlobRecord, UpdateTicket, resolve_owner
from ..vm import LeaseCache
from .cluster import Cluster


@dataclass(frozen=True)
class WriteResult:
    """Detailed outcome of a WRITE/APPEND (``*_ex`` variants)."""

    #: Snapshot version this update was assigned (published after SYNC).
    version: int
    #: Payload bytes the caller handed in.
    bytes_written: int
    #: Individual pages stored (each replicated ``page_replication`` ways).
    pages_written: int
    #: New tree nodes published for this snapshot's metadata.
    metadata_nodes_written: int
    #: Border nodes that actually travelled from the DHT during border
    #: resolution; nodes served by the shared cache are counted in
    #: ``metadata_cache_hits`` instead.
    border_nodes_fetched: int
    #: Batched metadata round trips: one per border-plan frontier that had
    #: at least one cache miss, plus one for the batched publish of the new
    #: tree nodes.  A fully cached border resolution costs just the publish.
    #: (An event-loop write that had to reconcile a degraded page adds one
    #: more for the leaf re-put.)
    metadata_round_trips: int = 0
    #: Batched data round trips: one multi-page store per provider touched
    #: (plus one multi-page fetch per provider supplying boundary bytes for
    #: an unaligned write) — compare ``pages_written``, which counts
    #: individual pages and is unchanged by batching.
    data_round_trips: int = 0
    #: Border-node lookups served by the shared metadata cache.
    metadata_cache_hits: int = 0
    #: Boundary page ranges served by the shared page cache (unaligned
    #: writes fetch boundary bytes; aligned writes never fetch pages).
    page_cache_hits: int = 0
    #: This update's exact hit/miss counts plus an occupancy snapshot of
    #: the (possibly shared) cache right after it; None when caching is
    #: disabled.
    cache: CacheStats | None = None
    #: Version-manager round trips this update issued: ticket registration,
    #: the completion notice, plus any record/recency/size lookups the
    #: shared lease cache could not serve.  The registration and completion
    #: trips additionally coalesce with concurrent writers' in the
    #: cluster's ticket window / publish queue (see ``VMStats``).
    vm_round_trips: int = 0


@dataclass(frozen=True)
class ReadStats:
    """Detailed outcome of a READ (``read_ex``)."""

    #: Snapshot version the bytes came from.
    version: int
    #: Bytes returned (exactly the requested size).
    bytes_read: int
    #: Individual page ranges the plan resolved to, however served.
    pages_fetched: int
    #: Tree nodes that actually travelled from the DHT; lookups served by
    #: the shared cache are counted in ``metadata_cache_hits`` instead, so
    #: a warm repeated read reports ~0 here.
    metadata_nodes_fetched: int
    #: Batched metadata round trips of the tree traversal: one per frontier
    #: with at least one cache miss, i.e. at most O(log pages) — and zero
    #: for a fully cached traversal.  Compare ``metadata_nodes_fetched``,
    #: which counts individual nodes and is unchanged by batching.  The
    #: pipelined event-loop traversal preserves the count: its per-bucket
    #: fetch tasks of one tree level still constitute one logical round.
    metadata_round_trips: int = 0
    #: Batched data round trips: one multi-page fetch per provider touched,
    #: i.e. O(providers), not O(pages) — compare ``pages_fetched``, which
    #: counts individual pages and is unchanged by batching.
    data_round_trips: int = 0
    #: Tree-node lookups served by the shared metadata cache.
    metadata_cache_hits: int = 0
    #: Page ranges served by the shared page cache — a warm repeated read
    #: reports every page here and ``data_round_trips == 0``.
    page_cache_hits: int = 0
    #: This read's exact hit/miss counts plus an occupancy snapshot of the
    #: (possibly shared) cache right after it; None when caching is
    #: disabled.
    cache: CacheStats | None = None
    #: The page cache's per-read deltas and occupancy snapshot; None when
    #: page caching is disabled.
    page_cache: CacheStats | None = None
    #: Version-manager round trips this read issued: 0 when the blob record
    #: and the snapshot's published size were served by the shared lease
    #: cache (the warm repeated-read regime), up to 2 cold (record +
    #: combined publication check) — the read path never blocks on the VM's
    #: global order beyond these lookups.
    vm_round_trips: int = 0
    #: Page requests re-routed to another replica because a provider batch
    #: failed (dead provider, missing page, short read) — the read-path
    #: fault-tolerance counter (see :mod:`repro.fault` and DESIGN.md).
    failovers: int = 0
    #: Page requests ultimately served by a NON-primary replica.  A
    #: non-zero value means the read ran *degraded*: correct bytes, reduced
    #: redundancy behind them — callers can alert or trigger a repair pass.
    degraded: int = 0
    #: Speculatively prefetched metadata nodes this read actually consumed:
    #: the pipelined descent predicted them as level-N+1 children of a
    #: missed ref BEFORE the parent resolved, and the authoritative parent
    #: then confirmed the prediction (DESIGN.md §9).  Consumed predictions
    #: still count in ``metadata_nodes_fetched`` — they did travel from the
    #: DHT — so speculation never changes that counter, only when the
    #: fetch was issued.  Always 0 with ``speculative_prefetch`` off, under
    #: the sync runtime, and on warm reads (no misses, nothing to predict).
    speculative_hits: int = 0
    #: Speculative predictions this read issued but never consumed — wrong
    #: version guesses and predictions the authoritative parent pruned.
    #: Wasted lookups cost idle DHT capacity, never correctness: they are
    #: miss-tolerant, never enter the node cache, and are drained before
    #: the read returns.  This is the ONLY counter speculation may change.
    speculative_wasted: int = 0
    #: Metadata nodes plus page ranges served by a co-located peer's cache
    #: (see :class:`repro.cache.PeerCacheGroup`) — consulted after the own
    #: caches miss and before any DHT/provider round.  Peer-served items do
    #: NOT count in ``metadata_nodes_fetched``/``tally`` fetch counters
    #: (they never travelled from the service side), so a read fully served
    #: by peers reports zero round trips on that leg.  Always 0 without an
    #: attached peer group or with ``peer_caching`` off.
    peer_cache_hits: int = 0


@dataclass
class _PendingStore:
    """An in-flight batched page store plus its optimistic descriptors.

    ``planned`` records the replica sets the allocator CHOSE; the handle
    resolves to the descriptors of the replicas that actually STORED each
    page (plus the store's batch count).  Under ``SyncRuntime`` the handle
    is always already done, so the two never diverge observably; under the
    event loop the gap is what lets the metadata publish overlap the store.
    """

    handle: Handle
    planned: list[PageDescriptor]


@dataclass
class _Speculation:
    """Per-read state of the speculative frontier prefetch (DESIGN.md §9).

    ``tasks`` maps each predicted :class:`NodeKey` to the in-flight
    miss-tolerant multi-get that covers it (one handle serves a whole
    prediction batch; ``slot`` is the key's position in it).  ``seen``
    dedupes — a key is predicted at most once per read, bounding waste.
    ``handles`` keeps every issued handle so leftovers can be drained
    before the read returns (an abandoned task would leak a pending
    coroutine into the loop).
    """

    hits: int = 0
    predicted: int = 0
    tasks: dict[NodeKey, tuple[Handle, int]] = field(default_factory=dict)
    seen: set[NodeKey] = field(default_factory=set)
    handles: list[Handle] = field(default_factory=list)

    @property
    def wasted(self) -> int:
        return self.predicted - self.hits


class AsyncBlobStore:
    """Awaitable client front-end to a BlobSeer :class:`Cluster`.

    Accepts the same caching/leasing knobs as the sync
    :class:`~repro.core.blob_store.BlobStore` (see its docstring for the
    full parameter discussion) minus ``parallel_io`` — concurrency comes
    from the event loop, not a thread pool — plus:

    runtime:
        The :class:`~repro.aio.IORuntime` executing the store's batched
        I/O.  Defaults to :class:`~repro.aio.AsyncRuntime` (event-loop
        mode: pipelined reads, overlapped writes, loop-parked SYNC).  The
        sync bridge injects a :class:`~repro.aio.SyncRuntime` instead.
    peer_group:
        Optional :class:`~repro.cache.PeerCacheGroup` of co-located
        clients.  When given (and ``config.peer_caching`` is on) the store
        joins with its node and page caches and probes the peers on every
        own-cache miss before paying a DHT/provider round trip; peer hits
        are counted in ``ReadStats.peer_cache_hits``.  Without a group the
        read path is byte-for-byte the non-peer path.

    Use as an async context manager (``async with AsyncBlobStore(c) as s:``)
    or call :meth:`aclose` explicitly; a closed store raises
    :class:`~repro.errors.StoreClosedError` on further operations.
    """

    def __init__(
        self,
        cluster: Cluster,
        strict_unaligned: bool = False,
        cache_metadata: bool = True,
        node_cache: NodeCache | None = None,
        cache_pages: bool = True,
        page_cache: PageCache | None = None,
        lease_versions: bool = True,
        version_leases: LeaseCache | None = None,
        runtime: IORuntime | None = None,
        peer_group: PeerCacheGroup | None = None,
    ):
        self._cluster = cluster
        self._vm = cluster.version_manager
        self._pm = cluster.provider_manager
        self._meta = cluster.metadata_provider
        self._runtime: IORuntime = runtime if runtime is not None else AsyncRuntime()
        self._strict_unaligned = strict_unaligned
        self._closed = False
        # What StoreClosedError names; the sync bridge overrides this so a
        # closed BlobStore reports itself, not its engine.
        self._display_name = type(self).__name__
        self._cache: NodeCache | None = (
            (node_cache if node_cache is not None else cluster.node_cache)
            if cache_metadata
            else None
        )
        if self._cache is not None:
            # GC invalidation must reach override caches too, not just the
            # cluster's shared one.
            cluster.register_node_cache(self._cache)
        self._page_cache: PageCache | None = (
            (page_cache if page_cache is not None else cluster.page_cache)
            if cache_pages
            else None
        )
        if self._page_cache is not None:
            cluster.register_page_cache(self._page_cache)
        self._lease: LeaseCache | None = (
            (version_leases if version_leases is not None else cluster.version_leases)
            if lease_versions
            else None
        )
        # Cooperative peer caching: join the group with THIS store's caches
        # so probes can exclude them (own cache is always consulted first).
        # ``peer_caching=False`` makes an attached group inert.
        self._peers: PeerCacheMember | None = (
            peer_group.join(node_cache=self._cache, page_cache=self._page_cache)
            if peer_group is not None
            and cluster.config.feature_enabled("peer_caching")
            else None
        )
        # Observability (DESIGN.md §11): on a traced cluster, operations
        # open root spans and publish their result structs as metrics; an
        # attached peer group additionally becomes a registry pull source.
        if cluster.metrics is not None and peer_group is not None:
            cluster.metrics.register_source(
                "repro.cache.peer",
                peer_group,
                lambda group: group.stats(),
                {"cluster": cluster.cache_namespace},
            )

    # ----------------------------------------------------------- observability
    def _trace_root(self, name: str, **attrs):
        """A root-span context on a traced cluster, ``nullcontext`` (yielding
        None) otherwise — the only per-operation cost of disabled tracing."""
        tracer = self._cluster.tracer
        if tracer is None:
            return nullcontext()
        return tracer.trace(name, **attrs)

    def _publish_op_metrics(self, op: str, stats, root) -> None:
        """Feed one operation's result struct into the metrics registry."""
        metrics = self._cluster.metrics
        if metrics is None:
            return
        labels = {"cluster": self._cluster.cache_namespace}
        prefix = f"repro.{op}"
        metrics.inc(f"{prefix}.ops", 1, labels)
        metrics.count_fields(prefix, stats, labels, skip=("version",))
        metrics.observe(f"{prefix}.latency_seconds", root.duration, labels)

    # --------------------------------------------------------------- lifecycle
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(self._display_name)

    def close(self) -> None:
        """Release the store (idempotent); further operations raise
        :class:`~repro.errors.StoreClosedError`.  The shared caches and the
        cluster stay untouched — other stores keep using them."""
        if not self._closed:
            self._closed = True
            self._runtime.close()

    async def aclose(self) -> None:
        """Awaitable :meth:`close` (idempotent)."""
        self.close()

    async def __aenter__(self) -> "AsyncBlobStore":
        self._ensure_open()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ CREATE
    async def create(self, page_size: int | None = None) -> str:
        """CREATE: make a new blob with an empty, published snapshot 0."""
        self._ensure_open()
        return self._vm.create_blob(page_size).blob_id

    # ------------------------------------------------------------------- WRITE
    async def write(self, blob_id: str, data: bytes, offset: int) -> int:
        """WRITE: replace ``len(data)`` bytes at ``offset``; return the new
        snapshot version (which may not be published yet — use SYNC).

        Thin wrapper over the canonical :meth:`write_ex`.
        """
        return (await self.write_ex(blob_id, data, offset)).version

    async def write_ex(self, blob_id: str, data: bytes, offset: int) -> WriteResult:
        with self._trace_root(
            "write", blob_id=blob_id, offset=offset, nbytes=len(data)
        ) as root:
            result = await self._write_ex_impl(blob_id, data, offset)
        if root is not None:
            self._publish_op_metrics("write", result, root)
        return result

    async def _write_ex_impl(
        self, blob_id: str, data: bytes, offset: int
    ) -> WriteResult:
        self._ensure_open()
        data = bytes(data)
        if offset < 0:
            raise InvalidRangeError(f"negative write offset: {offset}")
        if not data:
            raise InvalidRangeError("WRITE requires a non-empty buffer")
        with span("write.vm"):
            record, vm_trips = self._get_record(blob_id)
        page_size = record.page_size

        if is_aligned(offset, len(data), page_size) and not self._strict_unaligned:
            return await self._write_aligned(record, data, offset, vm_trips)
        if self._strict_unaligned:
            return await self._write_strict(record, data, offset, vm_trips)
        return await self._write_unaligned(record, data, offset, vm_trips)

    # ------------------------------------------------------------------ APPEND
    async def append(self, blob_id: str, data: bytes) -> int:
        """APPEND: WRITE at the end of the previous snapshot; the offset is
        chosen by the version manager.

        Thin wrapper over the canonical :meth:`append_ex`.
        """
        return (await self.append_ex(blob_id, data)).version

    async def append_ex(self, blob_id: str, data: bytes) -> WriteResult:
        with self._trace_root("append", blob_id=blob_id, nbytes=len(data)) as root:
            result = await self._append_ex_impl(blob_id, data)
        if root is not None:
            self._publish_op_metrics("write", result, root)
        return result

    async def _append_ex_impl(self, blob_id: str, data: bytes) -> WriteResult:
        self._ensure_open()
        data = bytes(data)
        if not data:
            raise InvalidRangeError("APPEND requires a non-empty buffer")
        with span("write.vm"):
            record, vm_trips = self._get_record(blob_id)
            ticket = self._vm.register_update(
                record.blob_id, len(data), is_append=True
            )
        vm_trips += 1  # the (group-committed) ticket registration
        try:
            reference_version: int | None = None
            if ticket.byte_offset % record.page_size != 0 and ticket.version > 1:
                # The append starts inside the tail page of the previous
                # snapshot: wait for it so the boundary bytes are exact.
                try:
                    with span("write.vm.sync", version=ticket.version - 1):
                        await self._runtime.vm_sync(
                            self._vm, record.blob_id, ticket.version - 1
                        )
                    reference_version = ticket.version - 1
                except UpdateAbortedError:
                    # The predecessor became a hole: its size already fell
                    # back to its own predecessor's, so the boundary bytes
                    # come from the most recent *published* snapshot
                    # (reference_version=None) instead of failing the append.
                    reference_version = None
                vm_trips += 1
            page_tally = CacheTally()
            payloads, boundary_trips, boundary_vm_trips = (
                await self._compose_page_payloads(
                    record, ticket, data, reference_version=reference_version,
                    page_tally=page_tally,
                )
            )
            vm_trips += boundary_vm_trips
            pending = self._start_page_stores(payloads)
            return await self._finish_update(
                record, ticket, pending, data_round_trips=boundary_trips,
                vm_round_trips=vm_trips, page_cache_hits=page_tally.hits,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "append failed")
            raise

    # -------------------------------------------------------------------- READ
    async def read(self, blob_id: str, version: int, offset: int, size: int) -> bytes:
        """READ: return ``size`` bytes at ``offset`` from snapshot ``version``.

        Fails when the version is not published or the range exceeds the
        snapshot size (paper, Section 2.1).  Thin wrapper over the
        canonical :meth:`read_ex`.
        """
        data, _stats = await self.read_ex(blob_id, version, offset, size)
        return data

    async def read_ex(
        self, blob_id: str, version: int, offset: int, size: int
    ) -> tuple[bytes, ReadStats]:
        with self._trace_root(
            "read", blob_id=blob_id, version=version, offset=offset, size=size
        ) as root:
            data, stats = await self._read_ex_impl(blob_id, version, offset, size)
        if root is not None:
            self._publish_op_metrics("read", stats, root)
        return data, stats

    async def _read_ex_impl(
        self, blob_id: str, version: int, offset: int, size: int
    ) -> tuple[bytes, ReadStats]:
        self._ensure_open()
        if offset < 0 or size < 0:
            raise InvalidRangeError(f"negative read offset/size ({offset}, {size})")
        with span("read.vm"):
            record, vm_trips = self._get_record(blob_id)
            snapshot_size, check_trips = self._published_size(blob_id, version)
        vm_trips += check_trips
        if offset + size > snapshot_size:
            raise InvalidRangeError(
                f"read range ({offset}, {size}) exceeds snapshot {version} "
                f"size {snapshot_size}"
            )
        if size == 0:
            return b"", ReadStats(version, 0, 0, 0, 0, vm_round_trips=vm_trips)

        page_size = record.page_size
        page_offset, page_count = covering_page_range(offset, size, page_size)
        tree_span = span_for_pages(pages_for_size(snapshot_size, page_size))
        tally = CacheTally()
        # Speculation needs the pipelined descent (there is nothing to
        # overlap level-by-level) and is opt-in; peer probing needs an
        # attached group.  Both gates leave the default read path intact.
        spec = (
            _Speculation()
            if self._cluster.config.feature_enabled("speculative_prefetch")
            and self._runtime.pipelined
            else None
        )
        peer_tally = CacheTally() if self._peers is not None else None
        with span("read.meta"):
            plan_result = await self._run_read_plan(
                record, version, tree_span, page_offset, page_count, tally,
                spec=spec, peer_tally=peer_tally,
            )

        buffer = bytearray(size)
        descriptors = plan_result.sorted_descriptors()
        page_tally = CacheTally()
        fault_tally = FaultTally()
        with span("read.data", pages=len(descriptors)):
            data_trips = await self._fetch_pages_into(
                record, descriptors, buffer, offset, size, page_tally,
                fault_tally, peer_tally=peer_tally,
            )
        stats = ReadStats(
            version=version,
            bytes_read=size,
            pages_fetched=len(descriptors),
            metadata_nodes_fetched=tally.fetched,
            metadata_round_trips=tally.trips,
            data_round_trips=data_trips,
            metadata_cache_hits=tally.hits,
            page_cache_hits=page_tally.hits,
            cache=self._operation_cache_stats(tally),
            page_cache=self._operation_page_cache_stats(page_tally),
            vm_round_trips=vm_trips,
            failovers=fault_tally.failovers,
            degraded=fault_tally.degraded,
            speculative_hits=spec.hits if spec is not None else 0,
            speculative_wasted=spec.wasted if spec is not None else 0,
            peer_cache_hits=peer_tally.hits if peer_tally is not None else 0,
        )
        return bytes(buffer), stats

    async def read_recent(
        self, blob_id: str, offset: int, size: int
    ) -> tuple[int, bytes]:
        """Convenience: READ from the most recently published snapshot."""
        version = await self.get_recent(blob_id)
        return version, await self.read(blob_id, version, offset, size)

    # ------------------------------------------------------- version primitives
    async def get_recent(self, blob_id: str) -> int:
        """GET_RECENT: a recently published snapshot version.

        Served from the shared version lease when one is fresh — publish
        notifications renew leases synchronously, so the answer equals what
        the version manager itself would return.
        """
        self._ensure_open()
        version, _trips = self._recent(blob_id)
        return version

    async def get_size(self, blob_id: str, version: int) -> int:
        """GET_SIZE: size in bytes of a published snapshot.

        A published snapshot's size is immutable, so the answer is served
        from the lease cache's fact map once known.
        """
        self._ensure_open()
        size, _trips = self._published_size(blob_id, version)
        return size

    async def sync(
        self, blob_id: str, version: int, timeout: float | None = None
    ) -> None:
        """SYNC: wait until ``version`` is published ("read your writes").

        Under the event-loop runtime the wait parks on the loop (publish
        notifications wake it) instead of blocking a thread on the version
        manager's condition variable.
        """
        self._ensure_open()
        await self._runtime.vm_sync(self._vm, blob_id, version, timeout)

    async def branch(self, blob_id: str, version: int) -> str:
        """BRANCH: virtually duplicate the blob up to ``version``; return the
        new blob id."""
        self._ensure_open()
        return self._vm.branch(blob_id, version).blob_id

    # ------------------------------------------------------------ version leases
    def _get_record(self, blob_id: str) -> tuple[BlobRecord, int]:
        """The blob's immutable record, via the lease cache's fact map:
        ``(record, vm_round_trips)``."""
        if self._lease is not None:
            return self._lease.record(blob_id)
        return self._vm.get_record(blob_id), 1

    def _published_size(self, blob_id: str, version: int) -> tuple[int, int]:
        """Size of a published snapshot (raises
        :class:`~repro.errors.VersionNotPublishedError` otherwise):
        ``(size, vm_round_trips)``.  One combined ``check_read`` trip cold,
        zero once the immutable fact is cached."""
        if self._lease is not None:
            return self._lease.published_size(blob_id, version)
        return self._vm.check_read(blob_id, version), 1

    def _recent(self, blob_id: str) -> tuple[int, int]:
        """Leased GET_RECENT: ``(version, vm_round_trips)``."""
        if self._lease is not None:
            return self._lease.recent(blob_id)
        return self._vm.get_recent(blob_id), 1

    # ---------------------------------------------------------------- internals
    async def _write_aligned(
        self, record: BlobRecord, data: bytes, offset: int, vm_trips: int = 0
    ) -> WriteResult:
        """Fast path for page-aligned writes: page stores START before the
        version is assigned, exactly as in Algorithm 2 (and complete before
        it under the sync runtime)."""
        page_size = record.page_size
        first_page = offset // page_size
        payloads = [
            (first_page + index, data[index * page_size:(index + 1) * page_size])
            for index in range(len(data) // page_size)
        ]
        pending = self._start_page_stores(payloads)
        try:
            ticket = self._vm.register_update(record.blob_id, len(data), offset=offset)
        except Exception:
            await self._reap(pending.handle)
            self._discard_pages(pending.planned)
            raise
        try:
            return await self._finish_update(
                record, ticket, pending, vm_round_trips=vm_trips + 1,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "write failed")
            raise

    async def _write_unaligned(
        self, record: BlobRecord, data: bytes, offset: int, vm_trips: int = 0
    ) -> WriteResult:
        """Unaligned write: boundary pages are completed from the most
        recently published snapshot, then the update proceeds as usual."""
        ticket = self._vm.register_update(record.blob_id, len(data), offset=offset)
        vm_trips += 1
        try:
            page_tally = CacheTally()
            payloads, boundary_trips, boundary_vm_trips = (
                await self._compose_page_payloads(record, ticket, data,
                                                  page_tally=page_tally)
            )
            pending = self._start_page_stores(payloads)
            return await self._finish_update(
                record, ticket, pending, data_round_trips=boundary_trips,
                vm_round_trips=vm_trips + boundary_vm_trips,
                page_cache_hits=page_tally.hits,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "write failed")
            raise

    async def _write_strict(
        self, record: BlobRecord, data: bytes, offset: int, vm_trips: int = 0
    ) -> WriteResult:
        """Strict unaligned write: wait for the previous snapshot so boundary
        bytes are taken from exactly version - 1."""
        ticket = self._vm.register_update(record.blob_id, len(data), offset=offset)
        vm_trips += 1
        try:
            if ticket.version > 1:
                await self._runtime.vm_sync(
                    self._vm, record.blob_id, ticket.version - 1
                )
                vm_trips += 1
            page_tally = CacheTally()
            payloads, boundary_trips, boundary_vm_trips = (
                await self._compose_page_payloads(
                    record, ticket, data, reference_version=ticket.version - 1,
                    page_tally=page_tally,
                )
            )
            pending = self._start_page_stores(payloads)
            return await self._finish_update(
                record, ticket, pending, data_round_trips=boundary_trips,
                vm_round_trips=vm_trips + boundary_vm_trips,
                page_cache_hits=page_tally.hits,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "write failed")
            raise

    async def _compose_page_payloads(
        self,
        record: BlobRecord,
        ticket: UpdateTicket,
        data: bytes,
        reference_version: int | None = None,
        page_tally: CacheTally | None = None,
    ) -> tuple[list[tuple[int, bytes]], int, int]:
        """Split ``data`` into per-page payloads, merging boundary pages with
        existing content where the update is not page-aligned.

        Only the first page can need an old prefix and only the last page an
        old suffix; both are resolved with ONE combined metadata traversal
        (:func:`repro.metadata.read_plan.multi_range_read_plan`) instead of
        one full READ — each a complete tree walk — per boundary page, and
        the boundary bytes of both ranges come back in one provider-grouped
        batch of page fetches.

        Returns ``(page_index, payload)`` pairs covering the ticket's page
        range exactly, plus the number of batched data round trips the
        boundary fetches cost, plus the version-manager round trips the
        reference-snapshot lookups cost (zero when the shared lease cache
        served them).
        """
        page_size = record.page_size
        offset = ticket.byte_offset
        size = ticket.byte_size
        first_page = ticket.page_offset
        last_page = first_page + ticket.page_count - 1

        # Content outside the written range but inside the previous snapshot
        # must be preserved: figure out which reference snapshot supplies it.
        vm_trips = 0
        if reference_version is None:
            reference_version, trips = self._recent(record.blob_id)
            vm_trips += trips
        if reference_version > 0:
            reference_size, trips = self._published_size(
                record.blob_id, reference_version
            )
            vm_trips += trips
        else:
            reference_size = 0

        # Old bytes [first_page_start, offset) and [offset + size, last_page_end),
        # both capped at the reference snapshot's size.
        first_start = first_page * page_size
        last_end = (last_page + 1) * page_size
        write_end = offset + size
        prefix_range: tuple[int, int] | None = None
        if offset > first_start and min(offset, reference_size) > first_start:
            prefix_range = (first_start, min(offset, reference_size) - first_start)
        suffix_range: tuple[int, int] | None = None
        if write_end < last_end and min(reference_size, last_end) > write_end:
            suffix_range = (write_end, min(reference_size, last_end) - write_end)
        wanted = [r for r in (prefix_range, suffix_range) if r is not None]
        chunks, boundary_trips = await self._read_byte_ranges(
            record, reference_version, reference_size, wanted, page_tally
        )
        by_range = dict(zip(wanted, chunks))

        payloads: list[tuple[int, bytes]] = []
        for page_index in range(first_page, last_page + 1):
            page_start = page_index * page_size
            page_end = page_start + page_size
            write_start = max(offset, page_start)
            write_stop = min(write_end, page_end)
            prefix = b""
            suffix = b""
            if write_start > page_start:
                # Bytes [page_start, write_start) must come from old content.
                if prefix_range is not None:
                    prefix = by_range[prefix_range]
                prefix = prefix.ljust(write_start - page_start, b"\x00")
            if write_stop < page_end and suffix_range is not None:
                # Preserve old bytes between the end of the write and the end
                # of the previous snapshot (capped at the page boundary).
                suffix = by_range[suffix_range]
            payload = (
                prefix
                + data[write_start - offset:write_stop - offset]
                + suffix
            )
            payloads.append((page_index, payload))
        return payloads, boundary_trips, vm_trips

    async def _read_byte_ranges(
        self,
        record: BlobRecord,
        version: int,
        snapshot_size: int,
        byte_ranges: list[tuple[int, int]],
        page_tally: CacheTally | None = None,
    ) -> tuple[list[bytes], int]:
        """Read several small byte ranges of a published snapshot with one
        combined metadata traversal and one provider-grouped batch of page
        fetches covering ALL of the ranges; returns ``(chunks, data_trips)``.
        Cached page ranges are served from the shared page cache and skip
        the batch entirely (tallied into ``page_tally``).
        """
        if not byte_ranges:
            return [], 0
        page_size = record.page_size
        page_ranges = [
            covering_page_range(byte_offset, byte_size, page_size)
            for byte_offset, byte_size in byte_ranges
        ]
        span = span_for_pages(pages_for_size(snapshot_size, page_size))
        plan_result = await self._resolve_ranges(record, version, span, page_ranges)
        descriptors = plan_result.sorted_descriptors()
        buffers = [bytearray(byte_size) for _byte_offset, byte_size in byte_ranges]
        requests: list[tuple[str, str, int, memoryview]] = []
        failover: list[tuple[str, ...]] = []
        for index, (byte_offset, byte_size) in enumerate(byte_ranges):
            view = memoryview(buffers[index])
            for descriptor in descriptors:
                request = self._page_request(
                    descriptor, page_size, byte_offset, byte_size
                )
                if request is None:
                    continue
                destination, (provider_id, page_id, page_offset, length) = request
                requests.append(
                    (
                        provider_id,
                        page_id,
                        page_offset,
                        view[destination:destination + length],
                    )
                )
                failover.append(descriptor.provider_ids)
        data_trips = await self._pm.multi_fetch_into_async(
            requests,
            self._runtime,
            cache=self._page_cache,
            cache_key=self._cluster.page_cache_key,
            tally=page_tally,
            failover=failover,
        )
        return [bytes(buffer) for buffer in buffers], data_trips

    # ------------------------------------------------------------- page stores
    def _start_page_stores(self, payloads: list[tuple[int, bytes]]) -> _PendingStore:
        """Allocate replica sets and page ids, then START the batched store
        — ONE multi-store per provider touched (paper's ``PD`` set).

        Allocation happens here, synchronously, so the optimistic leaf
        descriptors exist before a single byte moves; under the event loop
        the returned handle's store overlaps the caller's border resolution
        and metadata publish, under the sync runtime it has already
        completed (and already raised on failure) when this returns.

        With ``page_replication > 1`` each page fans out to that many
        distinct providers; the final descriptors record the replicas that
        actually stored it (a dead replica degrades redundancy without
        failing the write — the repair service tops it back up).  A page
        landing on NO replica fails the whole store *after* the live
        providers' batches completed, and the pages that did land are
        garbage-collected before the error propagates.
        """
        replication = self._cluster.config.page_replication
        replica_sets = self._pm.allocate_replicas(len(payloads), replication)
        items: list[tuple[tuple[str, ...], str, bytes]] = []
        planned: list[PageDescriptor] = []
        for (page_index, payload), replicas in zip(payloads, replica_sets):
            page_id = self._cluster._ids.next_page_id()
            items.append((replicas, page_id, payload))
            planned.append(
                PageDescriptor(
                    page_index=page_index,
                    page_id=page_id,
                    provider_id=replicas[0],
                    length=len(payload),
                    provider_ids=replicas,
                )
            )
        handle = self._runtime.start(self._execute_page_stores(items, planned))
        return _PendingStore(handle=handle, planned=planned)

    async def _execute_page_stores(
        self,
        items: list[tuple[tuple[str, ...], str, bytes]],
        planned: list[PageDescriptor],
    ) -> tuple[list[PageDescriptor], int]:
        try:
            with span("write.store", pages=len(items)):
                landed, store_trips = await self._pm.multi_store_replicated_async(
                    items, self._runtime
                )
        except Exception:
            self._discard_pages(planned)
            raise
        descriptors = [
            PageDescriptor(
                page_index=descriptor.page_index,
                page_id=descriptor.page_id,
                provider_id=stored[0],
                length=descriptor.length,
                provider_ids=stored,
            )
            for descriptor, stored in zip(planned, landed)
        ]
        return descriptors, store_trips

    @staticmethod
    async def _reap(handle: Handle) -> None:
        """Settle an in-flight handle whose outcome no longer matters (a
        failure elsewhere already decides the operation's fate); its pages
        were garbage-collected by the store task itself on failure."""
        try:
            await handle.result()
        except Exception:  # noqa: BLE001 - reaped error must not mask the real one
            pass

    def _discard_pages(self, descriptors: list[PageDescriptor]) -> None:
        """Best-effort garbage collection of pages of a failed update —
        every replica of every page."""
        for descriptor in descriptors:
            for provider_id in descriptor.provider_ids:
                try:
                    self._pm.provider(provider_id).delete_page(
                        descriptor.page_id
                    )
                except Exception:  # noqa: BLE001 - GC must never mask the real error
                    continue

    # ----------------------------------------------------------------- publish
    async def _finish_update(
        self,
        record: BlobRecord,
        ticket: UpdateTicket,
        pending: _PendingStore,
        data_round_trips: int = 0,
        vm_round_trips: int = 0,
        page_cache_hits: int = 0,
    ) -> WriteResult:
        """Resolve border nodes, build and store the new metadata tree, then
        notify the version manager (Algorithm 2, lines 10-13).

        Border resolution always proceeds while the page stores are in
        flight.  If the store has settled by then (always true under the
        sync runtime), the tree is built from the descriptors of the
        replicas that actually stored each page — the exact legacy path.
        Otherwise the publish is *optimistic*: leaves are built from the
        allocated replica sets and ``put_nodes`` overlaps the remaining
        store; once the store settles, any page that landed on fewer
        replicas than allocated gets its leaf re-put (one extra metadata
        round trip) before the completion notice — re-puts are safe because
        nothing can read the version before it is published.
        """
        needed, dangling = border_targets(
            ticket.page_offset, ticket.page_count, ticket.span, ticket.prev_num_pages
        )
        tally = CacheTally()
        try:
            with span("write.borders"):
                spec = await self._resolve_borders(
                    record, ticket, needed, dangling, tally
                )
        except Exception:
            await self._reap(pending.handle)
            raise
        publish_trips = 1  # the batched publish itself

        def build_items(
            descriptors: list[PageDescriptor],
        ) -> list[tuple[NodeKey, TreeNode]]:
            build = build_nodes(
                ticket.version,
                ticket.page_offset,
                ticket.page_count,
                ticket.span,
                descriptors,
                spec,
            )
            return [
                (NodeKey(record.blob_id, ref.version, ref.offset, ref.size), node)
                for ref, node in build.nodes
            ]

        if pending.handle.done():
            descriptors, store_trips = await pending.handle.result()
            items = build_items(descriptors)
            with span("write.publish", nodes=len(items)):
                await self._meta.put_nodes_async(items, self._runtime)
        else:
            items = build_items(pending.planned)

            async def overlapped_publish(
                publish_items: list[tuple[NodeKey, TreeNode]],
            ) -> None:
                with span("write.publish", nodes=len(publish_items),
                          overlapped=True):
                    await self._meta.put_nodes_async(publish_items, self._runtime)

            publish = self._runtime.start(overlapped_publish(items))
            try:
                descriptors, store_trips = await pending.handle.result()
            except Exception:
                await self._reap(publish)
                raise
            await publish.result()
            fixups = self._degraded_fixups(items, pending.planned, descriptors)
            if fixups:
                with span("write.publish.fixup", nodes=len(fixups)):
                    await self._meta.put_nodes_async(
                        [(key, node) for _index, key, node in fixups],
                        self._runtime,
                    )
                publish_trips += 1
                for index, key, node in fixups:
                    items[index] = (key, node)
        # Write-through: published nodes are immutable from this moment on,
        # so caching them at publish time makes the writer's own subsequent
        # reads (and every other store on this cluster) warm.
        self._cache_put_items(items)
        self._vm.complete_update(record.blob_id, ticket.version)
        return WriteResult(
            version=ticket.version,
            bytes_written=ticket.byte_size,
            pages_written=len(descriptors),
            metadata_nodes_written=len(items),
            border_nodes_fetched=tally.fetched,
            metadata_round_trips=tally.trips + publish_trips,
            data_round_trips=data_round_trips + store_trips,
            metadata_cache_hits=tally.hits,
            page_cache_hits=page_cache_hits,
            cache=self._operation_cache_stats(tally),
            vm_round_trips=vm_round_trips + 1,  # + the completion notice
        )

    @staticmethod
    def _degraded_fixups(
        items: list[tuple[NodeKey, TreeNode]],
        planned: list[PageDescriptor],
        actual: list[PageDescriptor],
    ) -> list[tuple[int, NodeKey, LeafNode]]:
        """Leaf corrections for pages whose landed replica set differs from
        the allocated one an optimistic publish already wrote."""
        changed: dict[str, PageDescriptor] = {
            landed.page_id: landed
            for chosen, landed in zip(planned, actual)
            if chosen.provider_ids != landed.provider_ids
        }
        if not changed:
            return []
        fixups: list[tuple[int, NodeKey, LeafNode]] = []
        for index, (key, node) in enumerate(items):
            if isinstance(node, LeafNode) and node.page_id in changed:
                landed = changed[node.page_id]
                fixups.append(
                    (
                        index,
                        key,
                        LeafNode(
                            page_id=node.page_id,
                            provider_id=landed.provider_id,
                            length=node.length,
                            provider_ids=landed.provider_ids,
                        ),
                    )
                )
        return fixups

    async def _resolve_borders(
        self,
        record: BlobRecord,
        ticket: UpdateTicket,
        needed: list[tuple[int, int]],
        dangling: list[tuple[int, int]],
        tally: CacheTally | None = None,
    ) -> BorderSpec:
        plan = border_plan(
            needed,
            dangling,
            ticket.published_version if ticket.published_version else None,
            ticket.published_num_pages,
            ticket.inflight_tuples(),
        )
        return await adrive_plan(
            plan, lambda refs: self._fetch_frontier(record, refs, tally)
        )

    # --------------------------------------------------------- metadata reads
    async def _run_read_plan(
        self,
        record: BlobRecord,
        version: int,
        span: int,
        page_offset: int,
        page_count: int,
        tally: CacheTally | None = None,
        spec: _Speculation | None = None,
        peer_tally: CacheTally | None = None,
    ) -> ReadPlanResult:
        if self._runtime.pipelined:
            walker = plan_walker(version, span, [(page_offset, page_count)])
            return await self._pipelined_walk(
                record, walker, tally, spec=spec, peer_tally=peer_tally
            )
        plan = read_plan(version, span, page_offset, page_count)
        return await adrive_plan(
            plan,
            lambda refs: self._fetch_frontier(
                record, refs, tally, peer_tally=peer_tally
            ),
        )

    async def _resolve_ranges(
        self,
        record: BlobRecord,
        version: int,
        span: int,
        page_ranges: list[tuple[int, int]],
        tally: CacheTally | None = None,
    ) -> ReadPlanResult:
        # Write-path border reads: no speculation, no peer probes — border
        # resolution is tiny (two boundary paths) and must stay identical
        # across runtimes and toggles.
        if self._runtime.pipelined:
            walker = plan_walker(version, span, page_ranges)
            return await self._pipelined_walk(record, walker, tally)
        plan = multi_range_read_plan(version, span, page_ranges)
        return await adrive_plan(
            plan, lambda refs: self._fetch_frontier(record, refs, tally)
        )

    async def _fetch_frontier(
        self,
        record: BlobRecord,
        refs: list[NodeRef],
        tally: CacheTally | None = None,
        peer_tally: CacheTally | None = None,
    ) -> list[TreeNode]:
        """Resolve one frontier of node fetches, branch lineage included.

        Cached keys are filtered out *before* the DHT multi-get: a hit is
        served from the shared :class:`~repro.cache.NodeCache` and never
        enters the batch (tree nodes are immutable, so a cached copy is
        always valid), and a frontier of pure hits costs zero round trips.
        With a peer group attached, the remaining misses then probe the
        co-located peers' caches (identically to the pipelined walk, so the
        two runtimes keep identical counters); only what the peers miss too
        travels in one bucket-grouped multi-get and is inserted into the
        cache on the way back — a frontier fully served by peers costs
        zero round trips as well.
        """
        keys = [
            NodeKey(
                resolve_owner(record, ref.version), ref.version, ref.offset, ref.size
            )
            for ref in refs
        ]
        cache_keys = [self._cluster.node_cache_key(key) for key in keys]
        nodes, miss_indices = split_frontier(self._cache, cache_keys, tally)
        if miss_indices and peer_tally is not None:
            miss_indices = self._peer_fill_nodes(
                cache_keys, miss_indices, nodes, peer_tally
            )
        if miss_indices:
            with span("meta.fetch", nodes=len(miss_indices)):
                fetched = await self._meta.get_nodes_async(
                    [keys[index] for index in miss_indices], self._runtime
                )
            complete_frontier(
                self._cache, cache_keys, miss_indices, fetched, nodes, tally
            )
        return nodes

    def _peer_fill_nodes(
        self,
        cache_keys: list,
        miss_indices: list[int],
        nodes: list,
        peer_tally: CacheTally,
    ) -> list[int]:
        """Probe the peer group for own-cache misses; fill ``nodes`` in
        place and return the indices the peers missed too.

        Peer hits are write-through-cached locally (the next read serves
        them without even the peer hop) and counted ONLY in ``peer_tally``:
        they never travelled from the DHT, so the fetch/trip tallies — and
        ``metadata_nodes_fetched`` — exclude them by construction.
        """
        if self._peers is None:
            return miss_indices
        remaining: list[int] = []
        served: list[tuple] = []
        for index in miss_indices:
            node = self._peers.probe_node(cache_keys[index])
            if node is None:
                remaining.append(index)
                continue
            nodes[index] = node
            served.append((cache_keys[index], node))
            peer_tally.hits += 1
        if served and self._cache is not None:
            self._cache.put_many(served)
        return remaining

    async def _pipelined_walk(
        self,
        record: BlobRecord,
        walker,
        tally: CacheTally | None = None,
        spec: _Speculation | None = None,
        peer_tally: CacheTally | None = None,
    ) -> ReadPlanResult:
        """Event-loop metadata descent: level N+1 starts before level N ends.

        Each frontier's cache misses are grouped by primary DHT bucket
        (:meth:`~repro.metadata.metadata_provider.MetadataProvider.bucket_groups`)
        and fetched as independent tasks; every group expands its children
        and recurses the moment its own fetch lands, so a slow bucket delays
        only its own subtree.  Cache hits expand immediately without waiting
        for any fetch at all.

        The trip accounting is defined to match the level-by-level driver
        exactly: a tree level with at least one cache miss counts as ONE
        metadata round trip no matter how many per-bucket tasks fanned out
        (the sync driver issues those same per-bucket sub-batches inside one
        ``multi_get``), and hit/fetched tallies are per-node sums that do
        not depend on resolution order.

        With a ``spec`` state, the walk additionally runs the *speculative
        frontier prefetch* (DESIGN.md §9): the moment a level's misses are
        known — BEFORE their fetch resolves — their wanted level-N+1 child
        spans are predicted from geometry alone at the parent ref's version
        (:meth:`~repro.metadata.read_plan.FrontierWalker.predicted_children`)
        and issued as one miss-tolerant background multi-get.  When the
        authoritative parent later confirms a predicted child as a real
        miss, the already-in-flight result is consumed instead of starting
        a fresh fetch, collapsing two levels of descent into one round-trip
        latency.  Mispredictions surface as ``None`` slots and fall back to
        the normal fetch path; leftover predictions are drained before
        returning and never enter the node cache.  The trip/fetch tallies
        are computed exactly as without speculation — a consumed prediction
        IS the level's fetch — so only ``speculative_*`` counters differ.
        """
        runtime = self._runtime
        levels: set[int] = set()
        miss_levels: set[int] = set()

        def issue_predictions(missed_refs: list[NodeRef]) -> None:
            predictions: list[NodeKey] = []
            for ref in missed_refs:
                for child in walker.predicted_children(ref):
                    key = NodeKey(
                        resolve_owner(record, child.version),
                        child.version,
                        child.offset,
                        child.size,
                    )
                    if key in spec.seen:
                        continue
                    spec.seen.add(key)
                    predictions.append(key)
            if not predictions:
                return
            spec.predicted += len(predictions)

            async def speculative_fetch(keys: list[NodeKey]):
                with span("meta.speculate", nodes=len(keys)):
                    return await self._meta.try_get_nodes_async(keys, runtime)

            handle = runtime.start(speculative_fetch(predictions))
            spec.handles.append(handle)
            for slot, key in enumerate(predictions):
                spec.tasks[key] = (handle, slot)

        async def resolve(refs: list[NodeRef], level: int) -> None:
            levels.add(level)
            for ref in refs:
                validate_node_range(ref.offset, ref.size)
            keys = [
                NodeKey(
                    resolve_owner(record, ref.version),
                    ref.version,
                    ref.offset,
                    ref.size,
                )
                for ref in refs
            ]
            cache_keys = [self._cluster.node_cache_key(key) for key in keys]
            nodes, miss_indices = split_frontier(self._cache, cache_keys, tally)
            if miss_indices and peer_tally is not None:
                miss_indices = self._peer_fill_nodes(
                    cache_keys, miss_indices, nodes, peer_tally
                )
            walker.note_fetched(len(refs))
            if spec is not None and miss_indices:
                # Predict the misses' children NOW, before any fetch of this
                # level resolves — that head start is the entire win.
                issue_predictions([refs[index] for index in miss_indices])
            children: list[NodeRef] = []
            for ref, node in zip(refs, nodes):
                if node is not None:
                    children.extend(walker.expand(ref, node))
            branches = []
            if miss_indices:
                miss_levels.add(level)
                spec_positions: list[int] = []
                spec_entries: list[tuple[Handle, int]] = []
                normal: list[int] = []
                for index in miss_indices:
                    entry = (
                        spec.tasks.pop(keys[index], None)
                        if spec is not None
                        else None
                    )
                    if entry is None:
                        normal.append(index)
                    else:
                        spec_positions.append(index)
                        spec_entries.append(entry)
                if normal:
                    for group in self._meta.bucket_groups(
                        [keys[index] for index in normal]
                    ):
                        positions = [normal[g] for g in group]
                        branches.append(
                            fetch_group(refs, keys, cache_keys, positions, level)
                        )
                if spec_positions:
                    branches.append(
                        consume_spec(
                            refs, keys, cache_keys,
                            spec_positions, spec_entries, level,
                        )
                    )
            if children:
                branches.append(resolve(children, level + 1))
            if branches:
                await runtime.gather(*branches)

        async def fetch_group(
            refs: list[NodeRef],
            keys: list[NodeKey],
            cache_keys: list,
            positions: list[int],
            level: int,
        ) -> None:
            with span("meta.fetch", level=level, nodes=len(positions)):
                fetched = await self._meta.get_nodes_async(
                    [keys[position] for position in positions], runtime
                )
            if self._cache is not None:
                self._cache.put_many(
                    [
                        (cache_keys[position], node)
                        for position, node in zip(positions, fetched)
                    ]
                )
            if tally is not None:
                tally.fetched += len(positions)
            children: list[NodeRef] = []
            for position, node in zip(positions, fetched):
                children.extend(walker.expand(refs[position], node))
            if children:
                await resolve(children, level + 1)

        async def consume_spec(
            refs: list[NodeRef],
            keys: list[NodeKey],
            cache_keys: list,
            positions: list[int],
            entries: list[tuple[Handle, int]],
            level: int,
        ) -> None:
            """Reconcile confirmed misses against their in-flight
            predictions: a landed prediction is this level's fetch (cached,
            tallied, expanded exactly like ``fetch_group``'s results); a
            ``None`` slot was a misprediction and re-fetches normally."""
            landed_positions: list[int] = []
            landed_nodes: list[TreeNode] = []
            fallback: list[int] = []
            with span("meta.consume_spec", level=level, nodes=len(positions)):
                for position, (handle, slot) in zip(positions, entries):
                    batch = await handle.result()
                    node = batch[slot]
                    if node is None:
                        fallback.append(position)
                    else:
                        landed_positions.append(position)
                        landed_nodes.append(node)
            if landed_positions:
                spec.hits += len(landed_positions)
                if self._cache is not None:
                    self._cache.put_many(
                        [
                            (cache_keys[position], node)
                            for position, node in zip(
                                landed_positions, landed_nodes
                            )
                        ]
                    )
                if tally is not None:
                    tally.fetched += len(landed_positions)
            children: list[NodeRef] = []
            for position, node in zip(landed_positions, landed_nodes):
                children.extend(walker.expand(refs[position], node))
            branches = []
            if fallback:
                for group in self._meta.bucket_groups(
                    [keys[index] for index in fallback]
                ):
                    positions2 = [fallback[g] for g in group]
                    branches.append(
                        fetch_group(refs, keys, cache_keys, positions2, level)
                    )
            if children:
                branches.append(resolve(children, level + 1))
            if branches:
                await runtime.gather(*branches)

        roots = walker.root_refs()
        if roots:
            await resolve(roots, 0)
        if spec is not None:
            # Drain leftover predictions: the last wave's unconsumed tasks
            # must not outlive the read (they would warn as never-awaited
            # work on the loop).  Their results are dropped on the floor —
            # wasted speculation never touches the node cache.
            for handle in spec.handles:
                await handle.result()
        if tally is not None:
            tally.trips += len(miss_levels)
        walker.result.round_trips = len(levels)
        return walker.result

    # ----------------------------------------------------------- cache plumbing
    def _cache_put_items(self, items: list[tuple[NodeKey, TreeNode]]) -> None:
        if self._cache is not None:
            self._cache.put_many(
                [
                    (self._cluster.node_cache_key(key), node)
                    for key, node in items
                ]
            )

    def _operation_cache_stats(self, tally: CacheTally) -> CacheStats | None:
        """Per-operation :class:`CacheStats`: this operation's exact hit and
        miss counts (from its tally — correct even when other clients share
        the cache) plus one occupancy snapshot taken right after it."""
        if self._cache is None:
            return None
        now = self._cache.stats()
        return CacheStats(
            hits=tally.hits,
            misses=tally.fetched,
            entries=now.entries,
            bytes=now.bytes,
            evictions=now.evictions,
        )

    def _operation_page_cache_stats(self, tally: CacheTally) -> CacheStats | None:
        """Per-operation page-cache :class:`CacheStats` (same shape as the
        metadata variant: exact per-op hit/miss deltas, shared-cache
        occupancy snapshot)."""
        if self._page_cache is None:
            return None
        now = self._page_cache.stats()
        return CacheStats(
            hits=tally.hits,
            misses=tally.fetched,
            entries=now.entries,
            bytes=now.bytes,
            evictions=now.evictions,
        )

    def cache_stats(self) -> CacheStats:
        """Lifetime counters and occupancy of the metadata node cache.

        The cache is shared — by default across every store of this
        cluster, and (with default budgets) across all clusters of the
        process — so the numbers are cache-wide, not per-store.  Per-read
        and per-write deltas live on ``ReadStats.cache`` /
        ``WriteResult.cache``.  An uncached store reports all zeros.
        """
        return self._cache.stats() if self._cache is not None else CacheStats()

    def page_cache_stats(self) -> CacheStats:
        """Lifetime counters and occupancy of the page payload cache.

        Shared like the metadata cache (see :meth:`cache_stats`); per-read
        deltas live on ``ReadStats.page_cache``.  An uncached store reports
        all zeros.
        """
        return (
            self._page_cache.stats()
            if self._page_cache is not None
            else CacheStats()
        )

    def lease_stats(self):
        """Counters of the (possibly shared) version lease cache, or None
        when this store runs unleased — see
        :class:`~repro.vm.lease.LeaseStats`."""
        return self._lease.stats() if self._lease is not None else None

    # ------------------------------------------------------------- data fetches
    @staticmethod
    def _page_request(
        descriptor: PageDescriptor, page_size: int, offset: int, size: int
    ) -> tuple[int, tuple[str, str, int, int]] | None:
        """Provider fetch request for the part of a page inside the byte
        window ``[offset, offset + size)``.

        Returns ``(destination, (provider_id, page_id, page_offset, length))``
        where ``destination`` is the chunk's position relative to ``offset``,
        or None when the page lies outside the window.  ``length`` is always
        a concrete byte count — the zero-copy callers slice their result
        buffer with it.
        """
        page_start = descriptor.page_index * page_size
        page_end = page_start + page_size
        want_start = max(offset, page_start)
        want_end = min(offset + size, page_end)
        if want_end <= want_start:
            return None
        fetch = (
            descriptor.provider_id,
            descriptor.page_id,
            want_start - page_start,
            want_end - want_start,
        )
        return want_start - offset, fetch

    async def _fetch_pages_into(
        self,
        record: BlobRecord,
        descriptors: list[PageDescriptor],
        buffer: bytearray,
        offset: int,
        size: int,
        page_tally: CacheTally | None = None,
        fault_tally: FaultTally | None = None,
        peer_tally: CacheTally | None = None,
    ) -> int:
        """Fetch the needed byte range of every page into ``buffer`` with one
        batched multi-fetch per provider; return the batch count.  Ranges
        held by the shared page cache are deposited directly and never
        enter a provider batch — a fully cached read costs zero batches.
        With a peer group attached (``peer_tally`` given), ranges the own
        cache missed then probe the co-located peers' page caches before
        any provider wave.  Each request carries its page's replica tuple,
        so a failed provider batch fails over to the next live replica
        (counted in ``fault_tally``) instead of failing the read.

        Zero-copy assembly: each request carries a writable ``memoryview``
        slice of the (single) result buffer, so providers deposit page bytes
        directly at their final destination instead of materializing
        per-chunk ``bytes`` objects that get copied a second time.  The
        slices are disjoint, so concurrent per-provider batches never
        overlap.
        """
        page_size = record.page_size
        view = memoryview(buffer)
        requests: list[tuple[str, str, int, memoryview]] = []
        failover: list[tuple[str, ...]] = []
        for descriptor in descriptors:
            request = self._page_request(descriptor, page_size, offset, size)
            if request is None:
                continue
            destination, (provider_id, page_id, page_offset, length) = request
            requests.append(
                (provider_id, page_id, page_offset,
                 view[destination:destination + length])
            )
            failover.append(descriptor.provider_ids)
        peer_lookup = None
        if (
            peer_tally is not None
            and self._peers is not None
            and self._page_cache is not None
        ):
            peer_lookup = self._peers.probe_page
        return await self._pm.multi_fetch_into_async(
            requests,
            self._runtime,
            cache=self._page_cache,
            cache_key=self._cluster.page_cache_key,
            tally=page_tally,
            failover=failover,
            fault_tally=fault_tally,
            peer_lookup=peer_lookup,
            peer_tally=peer_tally,
        )
