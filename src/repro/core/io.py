"""File-like adapters over blob snapshots.

Applications that expect a byte-stream interface (parsers, image decoders,
checkpoint loaders) can wrap a snapshot in :class:`SnapshotReader` — a
read-only, seekable file object — and produce new snapshots through
:class:`AppendWriter`, which buffers writes and emits page-aligned APPENDs.

Both adapters are thin translations onto the paper's primitives: the reader
issues READs against one fixed, published version (so it is immune to
concurrent updates), the writer issues APPENDs and reports the versions it
generated.
"""

from __future__ import annotations

import io

from ..errors import InvalidRangeError
from .blob_store import BlobStore


class SnapshotReader(io.RawIOBase):
    """A read-only, seekable file object over one published snapshot."""

    def __init__(self, store: BlobStore, blob_id: str, version: int | None = None):
        super().__init__()
        self._store = store
        self._blob_id = blob_id
        self._version = store.get_recent(blob_id) if version is None else version
        self._size = store.get_size(blob_id, self._version)
        self._position = 0

    # -- metadata ---------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    @property
    def size(self) -> int:
        return self._size

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    # -- positioning --------------------------------------------------------
    def tell(self) -> int:
        return self._position

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            target = offset
        elif whence == io.SEEK_CUR:
            target = self._position + offset
        elif whence == io.SEEK_END:
            target = self._size + offset
        else:
            raise ValueError(f"invalid whence: {whence}")
        if target < 0:
            raise InvalidRangeError(f"cannot seek to negative offset {target}")
        self._position = target
        return self._position

    # -- reading ---------------------------------------------------------------
    def read(self, size: int = -1) -> bytes:
        if self.closed:
            raise ValueError("read on a closed SnapshotReader")
        if size is None or size < 0:
            size = max(self._size - self._position, 0)
        size = min(size, max(self._size - self._position, 0))
        if size == 0:
            return b""
        data = self._store.read(self._blob_id, self._version, self._position, size)
        self._position += len(data)
        return data

    def readinto(self, buffer) -> int:
        data = self.read(len(buffer))
        buffer[: len(data)] = data
        return len(data)

    def readall(self) -> bytes:
        return self.read(-1)


class AppendWriter(io.RawIOBase):
    """A buffered, append-only file object producing blob snapshots.

    Data written through the adapter is buffered locally and flushed as
    APPEND operations of at least ``flush_threshold`` bytes (one final,
    possibly smaller APPEND happens on close/flush).  Each flush produces one
    snapshot version; the versions are recorded in :attr:`versions`.
    """

    def __init__(self, store: BlobStore, blob_id: str, flush_threshold: int = 1 << 20):
        super().__init__()
        if flush_threshold <= 0:
            raise InvalidRangeError("flush_threshold must be positive")
        self._store = store
        self._blob_id = blob_id
        self._threshold = flush_threshold
        self._buffer = bytearray()
        self._bytes_written = 0
        self.versions: list[int] = []

    def writable(self) -> bool:
        return True

    @property
    def bytes_written(self) -> int:
        """Bytes accepted so far (buffered or already appended)."""
        return self._bytes_written

    def write(self, data) -> int:
        if self.closed:
            raise ValueError("write on a closed AppendWriter")
        payload = bytes(data)
        self._buffer.extend(payload)
        self._bytes_written += len(payload)
        while len(self._buffer) >= self._threshold:
            self._flush_chunk(self._threshold)
        return len(payload)

    def flush(self) -> None:
        if self.closed:
            return
        if self._buffer:
            self._flush_chunk(len(self._buffer))

    def close(self) -> None:
        if not self.closed:
            self.flush()
        super().close()

    def sync(self, timeout: float | None = None) -> int:
        """Flush, wait for the last emitted snapshot to publish, return it."""
        self.flush()
        if not self.versions:
            return self._store.get_recent(self._blob_id)
        last = self.versions[-1]
        self._store.sync(self._blob_id, last, timeout)
        return last

    def _flush_chunk(self, length: int) -> None:
        chunk = bytes(self._buffer[:length])
        del self._buffer[:length]
        self.versions.append(self._store.append(self._blob_id, chunk))
