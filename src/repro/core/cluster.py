"""In-process deployment of every BlobSeer role.

A :class:`Cluster` wires together the distributed actors described in
Section 3.1 of the paper — data providers, the provider manager, the
metadata provider (a DHT) and the version manager — inside a single process.
Real threads can act as concurrent clients against it; every component is
individually lockable, killable and observable, which is what the tests and
the correctness-oriented examples use.  (Wall-clock performance experiments
use :mod:`repro.sim` instead.)
"""

from __future__ import annotations

import weakref
from collections.abc import Callable

from ..cache import (
    NodeCache,
    PageCache,
    next_cache_namespace,
    shared_node_cache,
    shared_page_cache,
)
from ..config import BlobSeerConfig
from ..dht.dht import DHT
from ..fault import ProviderHealth, RetryPolicy
from ..metadata.metadata_provider import MetadataProvider
from ..obs import Tracer, get_registry
from ..providers.allocation import make_allocation_strategy
from ..providers.data_provider import DataProvider
from ..providers.page_store import InMemoryPageStore, PageStore
from ..providers.provider_manager import ProviderManager
from ..util.ids import IdGenerator
from ..version.version_manager import VersionManager
from ..vm import LeaseCache, VersionManagerService


class Cluster:
    """A complete, in-process BlobSeer deployment."""

    def __init__(
        self,
        config: BlobSeerConfig | None = None,
        page_store_factory: Callable[[str], PageStore] | None = None,
        seed: int | None = None,
        node_cache: NodeCache | None = None,
        page_cache: PageCache | None = None,
        version_manager: VersionManager | None = None,
    ):
        self.config = config if config is not None else BlobSeerConfig()
        self._ids = IdGenerator("bs")
        factory = page_store_factory or (lambda _provider_id: InMemoryPageStore())

        # Every BlobStore on this cluster shares one metadata node cache:
        # the process-wide instance when the config keeps the default
        # budgets, a dedicated one otherwise (or whatever was injected).
        # Cache keys are namespaced per cluster so in-process deployments
        # sharing the process-wide cache can never serve each other's nodes
        # (different clusters generate identical blob ids).
        if node_cache is not None:
            self.node_cache = node_cache
        elif self.config.uses_default_cache_budgets:
            self.node_cache = shared_node_cache()
        else:
            self.node_cache = NodeCache(
                max_entries=self.config.metadata_cache_entries,
                max_bytes=self.config.metadata_cache_bytes,
                shards=self.config.metadata_cache_shards,
            )
        self.cache_namespace = next_cache_namespace("cluster")
        # Per-store override caches (tests, ablations) register here so GC
        # can invalidate them too; weak refs keep dropped stores collectable.
        self._override_caches: weakref.WeakSet[NodeCache] = weakref.WeakSet()

        # The page payload cache follows the same sharing rules as the node
        # cache — process-wide instance for default budgets, dedicated
        # otherwise — and ``page_cache_entries=None`` disables it for the
        # whole deployment (every read then pays its provider fetches).
        if page_cache is not None:
            self.page_cache: PageCache | None = page_cache
        elif self.config.page_cache_entries is None:
            self.page_cache = None
        elif self.config.uses_default_page_cache_budgets:
            self.page_cache = shared_page_cache()
        else:
            self.page_cache = PageCache(
                max_entries=self.config.page_cache_entries,
                max_bytes=self.config.page_cache_bytes,
                shards=self.config.page_cache_shards,
            )
        self._override_page_caches: weakref.WeakSet[PageCache] = weakref.WeakSet()

        strategy = make_allocation_strategy(
            self.config.allocation_strategy,
            seed=seed,
            page_size_hint=self.config.page_size,
        )
        # Fault-tolerance wiring (see :mod:`repro.fault` and DESIGN.md):
        # one health registry and one retry policy per cluster, shared by
        # every client.  The config defaults (``retry_attempts=1``) make
        # the retry policy a no-op, so a vanilla deployment behaves —
        # and times — exactly as before.
        self.provider_health = ProviderHealth(
            suspect_after=self.config.suspect_after
        )
        self.retry_policy = RetryPolicy.from_config(self.config)
        self.provider_manager = ProviderManager(
            strategy,
            retry_policy=self.retry_policy,
            health=self.provider_health,
            routing=self.config.feature_enabled("replica_routing"),
        )
        for index in range(self.config.num_data_providers):
            provider_id = f"data-{index:04d}"
            provider = DataProvider(
                provider_id,
                store=factory(provider_id),
                verify_checksums=self.config.verify_checksums,
            )
            self.provider_manager.register(provider)

        self.dht = DHT(
            num_buckets=self.config.num_metadata_providers,
            strategy=self.config.dht_strategy,
            replication=self.config.metadata_replication,
            retry_policy=self.retry_policy,
            routing=self.config.feature_enabled("replica_routing"),
        )
        self.metadata_provider = MetadataProvider(
            self.dht, encode_values=self.config.encode_metadata
        )
        # The version manager is wrapped in its service front-end: the
        # group-commit ticket window and publish queue live there, so every
        # client of this cluster shares one coalescing point — exactly like
        # the shared node cache.  ``version_manager`` quacks like the core
        # VersionManager (all queries forward), so existing callers and the
        # tools keep working.
        self.version_manager = VersionManagerService(
            version_manager
            if version_manager is not None
            else VersionManager(self.config, id_generator=self._ids)
        )
        # One shared lease cache per cluster (None when leasing is disabled):
        # co-located clients renew one another's GET_RECENT leases, and the
        # service's publish notifications keep them coherent.
        self.version_leases: LeaseCache | None = (
            LeaseCache(
                self.version_manager,
                ttl=self.config.vm_lease_ttl,
                max_entries=self.config.vm_lease_entries,
            )
            if self.config.vm_lease_ttl is not None
            else None
        )

        # Observability (DESIGN.md §11): one tracer per traced cluster, and
        # the cluster's components registered as pull sources of the
        # process-wide metrics registry.  With ``tracing=False`` (default)
        # both stay None and NOTHING here touches the registry — the no-op
        # discipline every other knob follows.
        self.tracer: Tracer | None = None
        self.metrics = None
        if self.config.feature_enabled("tracing"):
            self.tracer = Tracer()
            self.metrics = get_registry()
            self._register_metric_sources()

    def _register_metric_sources(self) -> None:
        """Publish this cluster's snapshot sources under stable dotted
        names, labelled by the cluster's cache namespace.

        Sources hold the cluster weakly, so traced clusters built by tests
        and benchmarks vanish from the registry with their last reference.
        """
        registry = self.metrics
        labels = {"cluster": self.cache_namespace}
        registry.register_source(
            "repro.vm", self, lambda c: c.version_manager.vm_stats(), labels
        )
        registry.register_source(
            "repro.dht", self, lambda c: c.dht.stats(), labels
        )
        registry.register_source(
            "repro.cache.node", self, lambda c: c.node_cache.stats(), labels
        )
        if self.page_cache is not None:
            registry.register_source(
                "repro.cache.page", self, lambda c: c.page_cache.stats(), labels
            )
        registry.register_source(
            "repro.health", self, lambda c: c.provider_health.stats(), labels
        )

    # -- convenience constructors -------------------------------------------
    @classmethod
    def in_memory(
        cls,
        num_data_providers: int = 16,
        num_metadata_providers: int = 16,
        page_size: int = BlobSeerConfig().page_size,
        **overrides,
    ) -> "Cluster":
        """Build a small in-memory cluster with sensible defaults."""
        config = BlobSeerConfig(
            page_size=page_size,
            num_data_providers=num_data_providers,
            num_metadata_providers=num_metadata_providers,
            **overrides,
        )
        return cls(config)

    # -- failure injection ----------------------------------------------------
    def kill_data_provider(self, provider_id: str) -> None:
        """Crash a data provider (its pages become unreachable)."""
        self.provider_manager.provider(provider_id).kill()
        self.provider_manager.deregister(provider_id)

    def revive_data_provider(self, provider_id: str) -> None:
        provider = self.provider_manager.provider(provider_id)
        provider.revive()
        self.provider_manager.register(provider)
        # Revival probe: a rejoining provider starts with a clean slate so
        # allocation stops steering around it immediately.
        self.provider_health.probe([provider])

    def kill_metadata_bucket(self, bucket_id: str) -> None:
        """Crash one metadata DHT bucket."""
        self.dht.kill_bucket(bucket_id)

    def revive_metadata_bucket(self, bucket_id: str) -> None:
        self.dht.revive_bucket(bucket_id)

    # -- metadata cache ---------------------------------------------------------
    def node_cache_key(self, key) -> tuple:
        """Namespace a :class:`~repro.metadata.node.NodeKey` for the cache.

        All cache traffic of this cluster — the clients' frontier lookups,
        write-through inserts at publish time, GC invalidation — goes
        through this mapping, so one process-wide cache can serve many
        in-process clusters without key collisions.
        """
        return (self.cache_namespace, key)

    def register_node_cache(self, cache: NodeCache) -> None:
        """Track a per-store override cache so GC invalidation reaches it."""
        if cache is not self.node_cache:
            self._override_caches.add(cache)

    def discard_cached_node(self, key) -> None:
        """Drop one node from the cluster cache AND every override cache —
        called by GC for each node it deletes from the DHT."""
        cache_key = self.node_cache_key(key)
        self.node_cache.discard(cache_key)
        for cache in self._override_caches:
            cache.discard(cache_key)

    # -- page cache -------------------------------------------------------------
    def page_cache_key(self, page_id: str, offset: int, length: int) -> tuple:
        """Namespace one fetched page sub-range for the page cache.

        All page-cache traffic of this cluster — read-path lookups,
        miss write-through, GC invalidation — goes through this mapping,
        so one process-wide cache can serve many in-process clusters
        without page-id collisions.
        """
        return (self.cache_namespace, page_id, offset, length)

    def register_page_cache(self, cache: PageCache) -> None:
        """Track a per-store override page cache so GC invalidation
        reaches it too."""
        if cache is not self.page_cache:
            self._override_page_caches.add(cache)

    def discard_cached_page(self, page_id: str) -> None:
        """Drop every cached sub-range of one page from the cluster page
        cache AND every override cache — the page-side twin of
        :meth:`discard_cached_node`, called by GC for each page it deletes
        from the providers."""
        if self.page_cache is not None:
            self.page_cache.discard_page(self.cache_namespace, page_id)
        for cache in self._override_page_caches:
            cache.discard_page(self.cache_namespace, page_id)

    # -- introspection ----------------------------------------------------------
    def storage_bytes_used(self) -> int:
        """Total page payload bytes stored across all data providers."""
        return self.provider_manager.total_bytes_used()

    def stored_page_count(self) -> int:
        return self.provider_manager.total_pages()

    def metadata_node_count(self) -> int:
        return self.metadata_provider.node_count()

    def page_load_distribution(self) -> dict[str, int]:
        """Bytes stored per data provider (even-distribution checks)."""
        return self.provider_manager.load_distribution()

    def metadata_load_distribution(self) -> dict[str, int]:
        """Metadata nodes stored per DHT bucket."""
        return self.dht.load_distribution()
