"""The BlobSeer client: CREATE, WRITE, APPEND, READ, GET_RECENT, GET_SIZE,
SYNC and BRANCH (paper, Section 2.1).

A :class:`BlobStore` is what an application links against.  Several
``BlobStore`` instances (one per thread, or one shared — the class is
thread-safe) can operate concurrently against the same :class:`Cluster`,
which is how the concurrency tests model the paper's "arbitrarily large
number of concurrent clients".

Write path (Algorithm 2): pages are stored on data providers chosen by the
provider manager, the version manager assigns the snapshot version and
returns the border-node hints, the client weaves the new metadata tree into
the old one, and finally notifies the version manager, which publishes
versions in total order.

Read path (Algorithms 1 and 3): the client checks publication with the
version manager, walks the segment tree of the requested snapshot through
the metadata DHT, then fetches the needed (parts of) pages from the data
providers.

Metadata I/O is *frontier-parallel*: the sans-IO planners
(:func:`repro.metadata.read_plan.read_plan`,
:func:`repro.metadata.build.border_plan`) yield one
:class:`~repro.metadata.node.Frontier` of independent node fetches per tree
level, and the store resolves each frontier with one batched DHT multi-get
(grouped by bucket, one bucket-lock acquisition per batch; concurrent bucket
groups go through the ``parallel_io`` thread pool).  Likewise, an update
publishes all of its new tree nodes in one batched multi-put — Algorithm 4
line 34's "in parallel", for real.  Metadata round trips per READ/WRITE are
therefore O(tree depth) = O(log pages), not O(nodes touched); the ``*_ex``
stats report both ``metadata_nodes_fetched`` (nodes that actually travelled
from the DHT) and ``metadata_round_trips``.

Metadata caching is a *shared subsystem*, not per-client state: published
tree nodes are immutable (the paper's total-order versioning), so every
``BlobStore`` on a :class:`Cluster` reads and writes one sharded,
LRU-bounded :class:`~repro.cache.NodeCache` (by default the process-wide
instance of :func:`repro.cache.shared_node_cache`, namespaced per cluster).
Frontier resolution filters cached keys *before* the DHT multi-get — a hit
never enters the batch, a frontier of pure hits costs zero round trips —
and an update writes its new nodes through to the cache at publish time, so
a writer's own subsequent reads are warm.  Warm repeated reads of a
snapshot therefore fetch ~0 nodes from the DHT; the per-operation cache
deltas are reported as a structured :class:`~repro.cache.CacheStats` on
``ReadStats.cache`` / ``WriteResult.cache`` and cache-wide totals via
:meth:`BlobStore.cache_stats`.

Data I/O assembles pages *zero-copy*: a READ allocates one writable result
buffer and hands each batched page fetch a ``memoryview`` slice of it, so
provider bytes land directly at their final offset
(:meth:`repro.providers.provider_manager.ProviderManager.multi_fetch_into`)
instead of materializing per-chunk ``bytes`` that are concatenated later.

Page payloads are cached the same way metadata nodes are: stored pages are
never overwritten (an update always writes *new* pages), so every fetched
page range is write-through-cached in the cluster's shared
:class:`~repro.cache.PageCache` and consulted *before* provider batches are
built — a cached range is deposited straight into the result buffer's
``memoryview`` and never enters a batch, so a warm repeated READ costs ZERO
data round trips on top of its zero metadata and version-manager trips.
Per-operation deltas are reported as ``ReadStats.page_cache_hits`` /
``ReadStats.page_cache`` and cache-wide totals via
:meth:`BlobStore.page_cache_stats`.

Data I/O is *provider-parallel* the same way: the page descriptors of a READ
(or the payloads of a WRITE) are grouped by data provider and each provider
receives ONE batched ``multi_fetch_into``/``multi_store`` request carrying
all of its pages
(:meth:`repro.providers.provider_manager.ProviderManager.multi_fetch_into`),
the per-provider sub-batches going through the same ``parallel_io`` thread
pool.  Data round trips per READ/WRITE are therefore O(providers touched),
not O(pages) — the striping across providers the paper's WRITE algorithm
stores "in parallel" (Algorithm 2, line 4).  The ``*_ex`` stats report
``data_round_trips`` next to ``metadata_round_trips`` so both axes of the
concurrency story are measurable.

Version-manager I/O is *leased and group-committed* (see :mod:`repro.vm`):
the blob record and the sizes of published snapshots are immutable facts
served by the cluster's shared :class:`~repro.vm.LeaseCache`, GET_RECENT is
answered from a publish-invalidated :class:`~repro.vm.VersionLease`, and a
cold publication check costs ONE combined ``check_read`` RPC instead of the
old ``is_published`` + ``get_size`` pair.  A warm repeated READ therefore
issues ZERO version-manager round trips — ``ReadStats.vm_round_trips`` /
``WriteResult.vm_round_trips`` make the last fixed per-operation cost
measurable, and the cluster's ticket window batches what remains of the
write-side traffic.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..cache import (
    CacheStats,
    CacheTally,
    NodeCache,
    PageCache,
    complete_frontier,
    split_frontier,
)
from ..errors import InvalidRangeError, UpdateAbortedError
from ..metadata.build import BorderSpec, border_plan, border_targets, build_nodes
from ..metadata.geometry import pages_for_size, span_for_pages
from ..metadata.node import NodeKey, NodeRef, PageDescriptor, TreeNode
from ..metadata.read_plan import (
    ReadPlanResult,
    drive_plan,
    multi_range_read_plan,
    read_plan,
)
from ..providers.provider_manager import FaultTally
from ..util.ranges import covering_page_range, is_aligned
from ..version.records import BlobRecord, UpdateTicket, resolve_owner
from ..vm import LeaseCache
from .cluster import Cluster


@dataclass(frozen=True)
class WriteResult:
    """Detailed outcome of a WRITE/APPEND (``*_ex`` variants)."""

    version: int
    bytes_written: int
    pages_written: int
    metadata_nodes_written: int
    #: Border nodes that actually travelled from the DHT during border
    #: resolution; nodes served by the shared cache are counted in
    #: ``metadata_cache_hits`` instead.
    border_nodes_fetched: int
    #: Batched metadata round trips: one per border-plan frontier that had
    #: at least one cache miss, plus one for the batched publish of the new
    #: tree nodes.  A fully cached border resolution costs just the publish.
    metadata_round_trips: int = 0
    #: Batched data round trips: one multi-page store per provider touched
    #: (plus one multi-page fetch per provider supplying boundary bytes for
    #: an unaligned write) — compare ``pages_written``, which counts
    #: individual pages and is unchanged by batching.
    data_round_trips: int = 0
    #: Border-node lookups served by the shared metadata cache.
    metadata_cache_hits: int = 0
    #: Boundary page ranges served by the shared page cache (unaligned
    #: writes fetch boundary bytes; aligned writes never fetch pages).
    page_cache_hits: int = 0
    #: This update's exact hit/miss counts plus an occupancy snapshot of
    #: the (possibly shared) cache right after it; None when caching is
    #: disabled.
    cache: CacheStats | None = None
    #: Version-manager round trips this update issued: ticket registration,
    #: the completion notice, plus any record/recency/size lookups the
    #: shared lease cache could not serve.  The registration and completion
    #: trips additionally coalesce with concurrent writers' in the
    #: cluster's ticket window / publish queue (see ``VMStats``).
    vm_round_trips: int = 0


@dataclass(frozen=True)
class ReadStats:
    """Detailed outcome of a READ (``read_ex``)."""

    version: int
    bytes_read: int
    pages_fetched: int
    #: Tree nodes that actually travelled from the DHT; lookups served by
    #: the shared cache are counted in ``metadata_cache_hits`` instead, so
    #: a warm repeated read reports ~0 here.
    metadata_nodes_fetched: int
    #: Batched metadata round trips of the tree traversal: one per frontier
    #: with at least one cache miss, i.e. at most O(log pages) — and zero
    #: for a fully cached traversal.  Compare ``metadata_nodes_fetched``,
    #: which counts individual nodes and is unchanged by batching.
    metadata_round_trips: int = 0
    #: Batched data round trips: one multi-page fetch per provider touched,
    #: i.e. O(providers), not O(pages) — compare ``pages_fetched``, which
    #: counts individual pages and is unchanged by batching.
    data_round_trips: int = 0
    #: Tree-node lookups served by the shared metadata cache.
    metadata_cache_hits: int = 0
    #: Page ranges served by the shared page cache — a warm repeated read
    #: reports every page here and ``data_round_trips == 0``.
    page_cache_hits: int = 0
    #: This read's exact hit/miss counts plus an occupancy snapshot of the
    #: (possibly shared) cache right after it; None when caching is
    #: disabled.
    cache: CacheStats | None = None
    #: The page cache's per-read deltas and occupancy snapshot; None when
    #: page caching is disabled.
    page_cache: CacheStats | None = None
    #: Version-manager round trips this read issued: 0 when the blob record
    #: and the snapshot's published size were served by the shared lease
    #: cache (the warm repeated-read regime), up to 2 cold (record +
    #: combined publication check) — the read path never blocks on the VM's
    #: global order beyond these lookups.
    vm_round_trips: int = 0
    #: Page requests re-routed to another replica because a provider batch
    #: failed (dead provider, missing page, short read) — the read-path
    #: fault-tolerance counter (see :mod:`repro.fault` and DESIGN.md).
    failovers: int = 0
    #: Page requests ultimately served by a NON-primary replica.  A
    #: non-zero value means the read ran *degraded*: correct bytes, reduced
    #: redundancy behind them — callers can alert or trigger a repair pass.
    degraded: int = 0


class BlobStore:
    """Client front-end to a BlobSeer :class:`Cluster`.

    Parameters
    ----------
    cluster:
        The deployment to operate against.
    parallel_io:
        When > 1, per-provider page batches and per-bucket metadata batches
        run on a thread pool of that many workers, mirroring the paper's
        parallel page transfers.  The default (sequential) is usually faster
        in-process because of the GIL.
    strict_unaligned:
        When True, unaligned WRITEs register their version first and wait for
        the previous snapshot before filling boundary pages, giving exact
        read-modify-write semantics at page boundaries even under concurrent
        overlapping writers (at the cost of serializing those writers).  The
        default fills boundaries from the most recently *published* snapshot,
        which matches the paper's lock-free spirit.
    cache_metadata:
        When True (the default), fetched metadata tree nodes are cached in
        the cluster's shared :class:`~repro.cache.NodeCache`.  Nodes are
        immutable once written (the paper's key design choice), so the
        cache never needs invalidation; it is LRU-bounded by the cluster
        config's ``metadata_cache_*`` budgets, and all stores on a cluster
        warm one another.  Pass False for cold-cache determinism (exact
        trip-count assertions, failure-injection tests).
    node_cache:
        Override the cache instance (a private cold
        :class:`~repro.cache.NodeCache` isolates tests from the shared
        one).  Ignored when ``cache_metadata`` is False.
    cache_pages:
        When True (the default), fetched page payload ranges are cached in
        the cluster's shared :class:`~repro.cache.PageCache` and served
        from it on repeat — stored pages are immutable, so the cache never
        needs invalidation (except for GC, which discards exactly the
        pages it deletes).  Pass False for cold-path determinism (exact
        data-trip assertions, failure-injection tests).  Also off when the
        cluster's config disables page caching (``page_cache_entries=None``).
    page_cache:
        Override the page cache instance (a private
        :class:`~repro.cache.PageCache` isolates tests from the shared
        one).  Ignored when ``cache_pages`` is False.
    lease_versions:
        When True (the default), GET_RECENT and the READ publication check
        are served from the cluster's shared :class:`~repro.vm.LeaseCache`
        when possible — publish notifications keep leases coherent, so
        results are identical to unleased calls while warm repeated reads
        issue zero version-manager round trips.  Pass False to hit the
        version manager on every call (the pre-PR-4 behaviour, with the
        old ``is_published`` + ``get_size`` pair fused into one
        ``check_read`` trip).  Also off when the cluster's config disables
        leasing (``vm_lease_ttl=None``).
    version_leases:
        Override the lease cache instance (a private
        :class:`~repro.vm.LeaseCache` isolates tests from the shared one).
        Ignored when ``lease_versions`` is False.
    """

    def __init__(
        self,
        cluster: Cluster,
        parallel_io: int = 0,
        strict_unaligned: bool = False,
        cache_metadata: bool = True,
        node_cache: NodeCache | None = None,
        cache_pages: bool = True,
        page_cache: PageCache | None = None,
        lease_versions: bool = True,
        version_leases: LeaseCache | None = None,
    ):
        self._cluster = cluster
        self._vm = cluster.version_manager
        self._pm = cluster.provider_manager
        self._meta = cluster.metadata_provider
        self._parallel_io = max(int(parallel_io), 0)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._strict_unaligned = strict_unaligned
        self._cache: NodeCache | None = (
            (node_cache if node_cache is not None else cluster.node_cache)
            if cache_metadata
            else None
        )
        if self._cache is not None:
            # GC invalidation must reach override caches too, not just the
            # cluster's shared one.
            cluster.register_node_cache(self._cache)
        self._page_cache: PageCache | None = (
            (page_cache if page_cache is not None else cluster.page_cache)
            if cache_pages
            else None
        )
        if self._page_cache is not None:
            cluster.register_page_cache(self._page_cache)
        self._lease: LeaseCache | None = (
            (version_leases if version_leases is not None else cluster.version_leases)
            if lease_versions
            else None
        )

    # ------------------------------------------------------------------ CREATE
    def create(self, page_size: int | None = None) -> str:
        """CREATE: make a new blob with an empty, published snapshot 0."""
        return self._vm.create_blob(page_size).blob_id

    # ------------------------------------------------------------------- WRITE
    def write(self, blob_id: str, data: bytes, offset: int) -> int:
        """WRITE: replace ``len(data)`` bytes at ``offset``; return the new
        snapshot version (which may not be published yet — use SYNC)."""
        return self.write_ex(blob_id, data, offset).version

    def write_ex(self, blob_id: str, data: bytes, offset: int) -> WriteResult:
        data = bytes(data)
        if offset < 0:
            raise InvalidRangeError(f"negative write offset: {offset}")
        if not data:
            raise InvalidRangeError("WRITE requires a non-empty buffer")
        record, vm_trips = self._get_record(blob_id)
        page_size = record.page_size

        if is_aligned(offset, len(data), page_size) and not self._strict_unaligned:
            return self._write_aligned(record, data, offset, vm_trips)
        if self._strict_unaligned:
            return self._write_strict(record, data, offset, vm_trips)
        return self._write_unaligned(record, data, offset, vm_trips)

    # ------------------------------------------------------------------ APPEND
    def append(self, blob_id: str, data: bytes) -> int:
        """APPEND: WRITE at the end of the previous snapshot; the offset is
        chosen by the version manager."""
        return self.append_ex(blob_id, data).version

    def append_ex(self, blob_id: str, data: bytes) -> WriteResult:
        data = bytes(data)
        if not data:
            raise InvalidRangeError("APPEND requires a non-empty buffer")
        record, vm_trips = self._get_record(blob_id)
        ticket = self._vm.register_update(record.blob_id, len(data), is_append=True)
        vm_trips += 1  # the (group-committed) ticket registration
        try:
            reference_version: int | None = None
            if ticket.byte_offset % record.page_size != 0 and ticket.version > 1:
                # The append starts inside the tail page of the previous
                # snapshot: wait for it so the boundary bytes are exact.
                try:
                    self._vm.sync(record.blob_id, ticket.version - 1)
                    reference_version = ticket.version - 1
                except UpdateAbortedError:
                    # The predecessor became a hole: its size already fell
                    # back to its own predecessor's, so the boundary bytes
                    # come from the most recent *published* snapshot
                    # (reference_version=None) instead of failing the append.
                    reference_version = None
                vm_trips += 1
            page_tally = CacheTally()
            payloads, boundary_trips, boundary_vm_trips = self._compose_page_payloads(
                record, ticket, data, reference_version=reference_version,
                page_tally=page_tally,
            )
            vm_trips += boundary_vm_trips
            descriptors, store_trips = self._store_pages(record, ticket, payloads)
            trips = boundary_trips + store_trips
            return self._finish_update(
                record, ticket, descriptors, data_round_trips=trips,
                vm_round_trips=vm_trips, page_cache_hits=page_tally.hits,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "append failed")
            raise

    # -------------------------------------------------------------------- READ
    def read(self, blob_id: str, version: int, offset: int, size: int) -> bytes:
        """READ: return ``size`` bytes at ``offset`` from snapshot ``version``.

        Fails when the version is not published or the range exceeds the
        snapshot size (paper, Section 2.1).
        """
        data, _stats = self.read_ex(blob_id, version, offset, size)
        return data

    def read_ex(
        self, blob_id: str, version: int, offset: int, size: int
    ) -> tuple[bytes, ReadStats]:
        if offset < 0 or size < 0:
            raise InvalidRangeError(f"negative read offset/size ({offset}, {size})")
        record, vm_trips = self._get_record(blob_id)
        snapshot_size, check_trips = self._published_size(blob_id, version)
        vm_trips += check_trips
        if offset + size > snapshot_size:
            raise InvalidRangeError(
                f"read range ({offset}, {size}) exceeds snapshot {version} "
                f"size {snapshot_size}"
            )
        if size == 0:
            return b"", ReadStats(version, 0, 0, 0, 0, vm_round_trips=vm_trips)

        page_size = record.page_size
        page_offset, page_count = covering_page_range(offset, size, page_size)
        span = span_for_pages(pages_for_size(snapshot_size, page_size))
        tally = CacheTally()
        plan_result = self._run_read_plan(
            record, version, span, page_offset, page_count, tally
        )

        buffer = bytearray(size)
        descriptors = plan_result.sorted_descriptors()
        page_tally = CacheTally()
        fault_tally = FaultTally()
        data_trips = self._fetch_pages_into(
            record, descriptors, buffer, offset, size, page_tally, fault_tally
        )
        stats = ReadStats(
            version=version,
            bytes_read=size,
            pages_fetched=len(descriptors),
            metadata_nodes_fetched=tally.fetched,
            metadata_round_trips=tally.trips,
            data_round_trips=data_trips,
            metadata_cache_hits=tally.hits,
            page_cache_hits=page_tally.hits,
            cache=self._operation_cache_stats(tally),
            page_cache=self._operation_page_cache_stats(page_tally),
            vm_round_trips=vm_trips,
            failovers=fault_tally.failovers,
            degraded=fault_tally.degraded,
        )
        return bytes(buffer), stats

    def read_recent(self, blob_id: str, offset: int, size: int) -> tuple[int, bytes]:
        """Convenience: READ from the most recently published snapshot."""
        version = self.get_recent(blob_id)
        return version, self.read(blob_id, version, offset, size)

    # ------------------------------------------------------- version primitives
    def get_recent(self, blob_id: str) -> int:
        """GET_RECENT: a recently published snapshot version.

        Served from the shared version lease when one is fresh — publish
        notifications renew leases synchronously, so the answer equals what
        the version manager itself would return.
        """
        version, _trips = self._recent(blob_id)
        return version

    def get_size(self, blob_id: str, version: int) -> int:
        """GET_SIZE: size in bytes of a published snapshot.

        A published snapshot's size is immutable, so the answer is served
        from the lease cache's fact map once known.
        """
        size, _trips = self._published_size(blob_id, version)
        return size

    def sync(self, blob_id: str, version: int, timeout: float | None = None) -> None:
        """SYNC: block until ``version`` is published ("read your writes")."""
        self._vm.sync(blob_id, version, timeout)

    def branch(self, blob_id: str, version: int) -> str:
        """BRANCH: virtually duplicate the blob up to ``version``; return the
        new blob id."""
        return self._vm.branch(blob_id, version).blob_id

    # ------------------------------------------------------------ version leases
    def _get_record(self, blob_id: str) -> tuple[BlobRecord, int]:
        """The blob's immutable record, via the lease cache's fact map:
        ``(record, vm_round_trips)``."""
        if self._lease is not None:
            return self._lease.record(blob_id)
        return self._vm.get_record(blob_id), 1

    def _published_size(self, blob_id: str, version: int) -> tuple[int, int]:
        """Size of a published snapshot (raises
        :class:`~repro.errors.VersionNotPublishedError` otherwise):
        ``(size, vm_round_trips)``.  One combined ``check_read`` trip cold,
        zero once the immutable fact is cached."""
        if self._lease is not None:
            return self._lease.published_size(blob_id, version)
        return self._vm.check_read(blob_id, version), 1

    def _recent(self, blob_id: str) -> tuple[int, int]:
        """Leased GET_RECENT: ``(version, vm_round_trips)``."""
        if self._lease is not None:
            return self._lease.recent(blob_id)
        return self._vm.get_recent(blob_id), 1

    # ---------------------------------------------------------------- internals
    def _write_aligned(
        self, record: BlobRecord, data: bytes, offset: int, vm_trips: int = 0
    ) -> WriteResult:
        """Fast path for page-aligned writes: pages are stored *before* the
        version is assigned, exactly as in Algorithm 2."""
        page_size = record.page_size
        first_page = offset // page_size
        payloads = [
            (first_page + index, data[index * page_size:(index + 1) * page_size])
            for index in range(len(data) // page_size)
        ]
        descriptors, store_trips = self._store_payloads(payloads)
        try:
            ticket = self._vm.register_update(record.blob_id, len(data), offset=offset)
        except Exception:
            self._discard_pages(descriptors)
            raise
        try:
            return self._finish_update(
                record, ticket, descriptors, data_round_trips=store_trips,
                vm_round_trips=vm_trips + 1,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "write failed")
            raise

    def _write_unaligned(
        self, record: BlobRecord, data: bytes, offset: int, vm_trips: int = 0
    ) -> WriteResult:
        """Unaligned write: boundary pages are completed from the most
        recently published snapshot, then the update proceeds as usual."""
        ticket = self._vm.register_update(record.blob_id, len(data), offset=offset)
        vm_trips += 1
        try:
            page_tally = CacheTally()
            payloads, boundary_trips, boundary_vm_trips = (
                self._compose_page_payloads(record, ticket, data,
                                            page_tally=page_tally)
            )
            descriptors, store_trips = self._store_pages(record, ticket, payloads)
            trips = boundary_trips + store_trips
            return self._finish_update(
                record, ticket, descriptors, data_round_trips=trips,
                vm_round_trips=vm_trips + boundary_vm_trips,
                page_cache_hits=page_tally.hits,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "write failed")
            raise

    def _write_strict(
        self, record: BlobRecord, data: bytes, offset: int, vm_trips: int = 0
    ) -> WriteResult:
        """Strict unaligned write: wait for the previous snapshot so boundary
        bytes are taken from exactly version - 1."""
        ticket = self._vm.register_update(record.blob_id, len(data), offset=offset)
        vm_trips += 1
        try:
            if ticket.version > 1:
                self._vm.sync(record.blob_id, ticket.version - 1)
                vm_trips += 1
            page_tally = CacheTally()
            payloads, boundary_trips, boundary_vm_trips = (
                self._compose_page_payloads(
                    record, ticket, data, reference_version=ticket.version - 1,
                    page_tally=page_tally,
                )
            )
            descriptors, store_trips = self._store_pages(record, ticket, payloads)
            trips = boundary_trips + store_trips
            return self._finish_update(
                record, ticket, descriptors, data_round_trips=trips,
                vm_round_trips=vm_trips + boundary_vm_trips,
                page_cache_hits=page_tally.hits,
            )
        except Exception:
            self._vm.abort_update(record.blob_id, ticket.version, "write failed")
            raise

    def _compose_page_payloads(
        self,
        record: BlobRecord,
        ticket: UpdateTicket,
        data: bytes,
        reference_version: int | None = None,
        page_tally: CacheTally | None = None,
    ) -> tuple[list[tuple[int, bytes]], int, int]:
        """Split ``data`` into per-page payloads, merging boundary pages with
        existing content where the update is not page-aligned.

        Only the first page can need an old prefix and only the last page an
        old suffix; both are resolved with ONE combined metadata traversal
        (:func:`repro.metadata.read_plan.multi_range_read_plan`) instead of
        one full READ — each a complete tree walk — per boundary page, and
        the boundary bytes of both ranges come back in one provider-grouped
        batch of page fetches.

        Returns ``(page_index, payload)`` pairs covering the ticket's page
        range exactly, plus the number of batched data round trips the
        boundary fetches cost, plus the version-manager round trips the
        reference-snapshot lookups cost (zero when the shared lease cache
        served them).
        """
        page_size = record.page_size
        offset = ticket.byte_offset
        size = ticket.byte_size
        first_page = ticket.page_offset
        last_page = first_page + ticket.page_count - 1

        # Content outside the written range but inside the previous snapshot
        # must be preserved: figure out which reference snapshot supplies it.
        vm_trips = 0
        if reference_version is None:
            reference_version, trips = self._recent(record.blob_id)
            vm_trips += trips
        if reference_version > 0:
            reference_size, trips = self._published_size(
                record.blob_id, reference_version
            )
            vm_trips += trips
        else:
            reference_size = 0

        # Old bytes [first_page_start, offset) and [offset + size, last_page_end),
        # both capped at the reference snapshot's size.
        first_start = first_page * page_size
        last_end = (last_page + 1) * page_size
        write_end = offset + size
        prefix_range: tuple[int, int] | None = None
        if offset > first_start and min(offset, reference_size) > first_start:
            prefix_range = (first_start, min(offset, reference_size) - first_start)
        suffix_range: tuple[int, int] | None = None
        if write_end < last_end and min(reference_size, last_end) > write_end:
            suffix_range = (write_end, min(reference_size, last_end) - write_end)
        wanted = [r for r in (prefix_range, suffix_range) if r is not None]
        chunks, boundary_trips = self._read_byte_ranges(
            record, reference_version, reference_size, wanted, page_tally
        )
        by_range = dict(zip(wanted, chunks))

        payloads: list[tuple[int, bytes]] = []
        for page_index in range(first_page, last_page + 1):
            page_start = page_index * page_size
            page_end = page_start + page_size
            write_start = max(offset, page_start)
            write_stop = min(write_end, page_end)
            prefix = b""
            suffix = b""
            if write_start > page_start:
                # Bytes [page_start, write_start) must come from old content.
                if prefix_range is not None:
                    prefix = by_range[prefix_range]
                prefix = prefix.ljust(write_start - page_start, b"\x00")
            if write_stop < page_end and suffix_range is not None:
                # Preserve old bytes between the end of the write and the end
                # of the previous snapshot (capped at the page boundary).
                suffix = by_range[suffix_range]
            payload = (
                prefix
                + data[write_start - offset:write_stop - offset]
                + suffix
            )
            payloads.append((page_index, payload))
        return payloads, boundary_trips, vm_trips

    def _read_byte_ranges(
        self,
        record: BlobRecord,
        version: int,
        snapshot_size: int,
        byte_ranges: list[tuple[int, int]],
        page_tally: CacheTally | None = None,
    ) -> tuple[list[bytes], int]:
        """Read several small byte ranges of a published snapshot with one
        combined metadata traversal and one provider-grouped batch of page
        fetches covering ALL of the ranges; returns ``(chunks, data_trips)``.
        Cached page ranges are served from the shared page cache and skip
        the batch entirely (tallied into ``page_tally``).
        """
        if not byte_ranges:
            return [], 0
        page_size = record.page_size
        page_ranges = [
            covering_page_range(byte_offset, byte_size, page_size)
            for byte_offset, byte_size in byte_ranges
        ]
        span = span_for_pages(pages_for_size(snapshot_size, page_size))
        plan = multi_range_read_plan(version, span, page_ranges)
        plan_result = drive_plan(
            plan, fetch_many=lambda refs: self._fetch_frontier(record, refs)
        )
        descriptors = plan_result.sorted_descriptors()
        buffers = [bytearray(byte_size) for _byte_offset, byte_size in byte_ranges]
        requests: list[tuple[str, str, int, memoryview]] = []
        failover: list[tuple[str, ...]] = []
        for index, (byte_offset, byte_size) in enumerate(byte_ranges):
            view = memoryview(buffers[index])
            for descriptor in descriptors:
                request = self._page_request(
                    descriptor, page_size, byte_offset, byte_size
                )
                if request is None:
                    continue
                destination, (provider_id, page_id, page_offset, length) = request
                requests.append(
                    (
                        provider_id,
                        page_id,
                        page_offset,
                        view[destination:destination + length],
                    )
                )
                failover.append(descriptor.provider_ids)
        data_trips = self._pm.multi_fetch_into(
            requests,
            run_batches=self._run_batches,
            cache=self._page_cache,
            cache_key=self._cluster.page_cache_key,
            tally=page_tally,
            failover=failover,
        )
        return [bytes(buffer) for buffer in buffers], data_trips

    def _store_pages(
        self,
        record: BlobRecord,
        ticket: UpdateTicket,
        payloads: list[tuple[int, bytes]],
    ) -> tuple[list[PageDescriptor], int]:
        return self._store_payloads(payloads)

    def _store_payloads(
        self, payloads: list[tuple[int, bytes]]
    ) -> tuple[list[PageDescriptor], int]:
        """Store one payload per page on providers chosen by the provider
        manager — ONE batched multi-store per provider touched — and return
        the page descriptors (paper's ``PD`` set) plus the batch count.

        With ``page_replication > 1`` each page fans out to that many
        distinct providers; the descriptor records the replicas that
        actually stored it (a dead replica degrades redundancy without
        failing the write — the repair service tops it back up).  A page
        landing on NO replica fails the whole store *after* the live
        providers' batches completed, so the pages that did land are
        garbage-collected here before the error propagates.
        """
        replication = self._cluster.config.page_replication
        replica_sets = self._pm.allocate_replicas(len(payloads), replication)
        descriptors: list[PageDescriptor] = []
        items: list[tuple[tuple[str, ...], str, bytes]] = []
        for (_page_index, payload), replicas in zip(payloads, replica_sets):
            page_id = self._cluster._ids.next_page_id()
            items.append((replicas, page_id, payload))
        try:
            landed, store_trips = self._pm.multi_store_replicated(
                items, run_batches=self._run_batches
            )
        except Exception:
            self._discard_pages(
                [
                    PageDescriptor(
                        page_index=page_index,
                        page_id=page_id,
                        provider_id=replicas[0],
                        length=len(payload),
                        provider_ids=replicas,
                    )
                    for (page_index, payload), (replicas, page_id, _payload)
                    in zip(payloads, items)
                ]
            )
            raise
        for (page_index, payload), (_replicas, page_id, _payload), stored in zip(
            payloads, items, landed
        ):
            descriptors.append(
                PageDescriptor(
                    page_index=page_index,
                    page_id=page_id,
                    provider_id=stored[0],
                    length=len(payload),
                    provider_ids=stored,
                )
            )
        return descriptors, store_trips

    def _discard_pages(self, descriptors: list[PageDescriptor]) -> None:
        """Best-effort garbage collection of pages of a failed update —
        every replica of every page."""
        for descriptor in descriptors:
            for provider_id in descriptor.provider_ids:
                try:
                    self._pm.provider(provider_id).delete_page(
                        descriptor.page_id
                    )
                except Exception:  # noqa: BLE001 - GC must never mask the real error
                    continue

    def _finish_update(
        self,
        record: BlobRecord,
        ticket: UpdateTicket,
        descriptors: list[PageDescriptor],
        data_round_trips: int = 0,
        vm_round_trips: int = 0,
        page_cache_hits: int = 0,
    ) -> WriteResult:
        """Resolve border nodes, build and store the new metadata tree, then
        notify the version manager (Algorithm 2, lines 10-13)."""
        needed, dangling = border_targets(
            ticket.page_offset, ticket.page_count, ticket.span, ticket.prev_num_pages
        )
        tally = CacheTally()
        spec = self._resolve_borders(record, ticket, needed, dangling, tally)
        build = build_nodes(
            ticket.version,
            ticket.page_offset,
            ticket.page_count,
            ticket.span,
            descriptors,
            spec,
        )
        items = [
            (NodeKey(record.blob_id, ref.version, ref.offset, ref.size), node)
            for ref, node in build.nodes
        ]
        self._meta.put_nodes(items, run_batches=self._run_batches)
        # Write-through: published nodes are immutable from this moment on,
        # so caching them at publish time makes the writer's own subsequent
        # reads (and every other store on this cluster) warm.
        self._cache_put_items(items)
        self._vm.complete_update(record.blob_id, ticket.version)
        return WriteResult(
            version=ticket.version,
            bytes_written=ticket.byte_size,
            pages_written=len(descriptors),
            metadata_nodes_written=len(items),
            border_nodes_fetched=tally.fetched,
            metadata_round_trips=tally.trips + 1,  # + the batched publish
            data_round_trips=data_round_trips,
            metadata_cache_hits=tally.hits,
            page_cache_hits=page_cache_hits,
            cache=self._operation_cache_stats(tally),
            vm_round_trips=vm_round_trips + 1,  # + the completion notice
        )

    def _resolve_borders(
        self,
        record: BlobRecord,
        ticket: UpdateTicket,
        needed: list[tuple[int, int]],
        dangling: list[tuple[int, int]],
        tally: CacheTally | None = None,
    ) -> BorderSpec:
        plan = border_plan(
            needed,
            dangling,
            ticket.published_version if ticket.published_version else None,
            ticket.published_num_pages,
            ticket.inflight_tuples(),
        )
        return drive_plan(
            plan, fetch_many=lambda refs: self._fetch_frontier(record, refs, tally)
        )

    def _run_read_plan(
        self,
        record: BlobRecord,
        version: int,
        span: int,
        page_offset: int,
        page_count: int,
        tally: CacheTally | None = None,
    ) -> ReadPlanResult:
        plan = read_plan(version, span, page_offset, page_count)
        return drive_plan(
            plan, fetch_many=lambda refs: self._fetch_frontier(record, refs, tally)
        )

    def _fetch_frontier(
        self,
        record: BlobRecord,
        refs: list[NodeRef],
        tally: CacheTally | None = None,
    ) -> list[TreeNode]:
        """Resolve one frontier of node fetches, branch lineage included.

        Cached keys are filtered out *before* the DHT multi-get: a hit is
        served from the shared :class:`~repro.cache.NodeCache` and never
        enters the batch (tree nodes are immutable, so a cached copy is
        always valid), and a frontier of pure hits costs zero round trips.
        The misses travel in one bucket-grouped multi-get and are inserted
        into the cache on the way back.
        """
        keys = [
            NodeKey(
                resolve_owner(record, ref.version), ref.version, ref.offset, ref.size
            )
            for ref in refs
        ]
        cache_keys = [self._cluster.node_cache_key(key) for key in keys]
        nodes, miss_indices = split_frontier(self._cache, cache_keys, tally)
        if miss_indices:
            fetched = self._meta.get_nodes(
                [keys[index] for index in miss_indices],
                run_batches=self._run_batches,
            )
            complete_frontier(
                self._cache, cache_keys, miss_indices, fetched, nodes, tally
            )
        return nodes

    # ----------------------------------------------------------- cache plumbing
    def _cache_put_items(self, items: list[tuple[NodeKey, TreeNode]]) -> None:
        if self._cache is not None:
            self._cache.put_many(
                [
                    (self._cluster.node_cache_key(key), node)
                    for key, node in items
                ]
            )

    def _operation_cache_stats(self, tally: CacheTally) -> CacheStats | None:
        """Per-operation :class:`CacheStats`: this operation's exact hit and
        miss counts (from its tally — correct even when other threads share
        the cache) plus one occupancy snapshot taken right after it."""
        if self._cache is None:
            return None
        now = self._cache.stats()
        return CacheStats(
            hits=tally.hits,
            misses=tally.fetched,
            entries=now.entries,
            bytes=now.bytes,
            evictions=now.evictions,
        )

    def _operation_page_cache_stats(self, tally: CacheTally) -> CacheStats | None:
        """Per-operation page-cache :class:`CacheStats` (same shape as the
        metadata variant: exact per-op hit/miss deltas, shared-cache
        occupancy snapshot)."""
        if self._page_cache is None:
            return None
        now = self._page_cache.stats()
        return CacheStats(
            hits=tally.hits,
            misses=tally.fetched,
            entries=now.entries,
            bytes=now.bytes,
            evictions=now.evictions,
        )

    def _run_batches(self, jobs: list) -> list:
        """Execute per-backend batch jobs — the DHT's per-bucket groups and
        the provider manager's per-provider groups — concurrently when the
        client has a thread pool.

        Passed as ``run_batches`` to the metadata provider and the provider
        manager so grouping stays inside the component that owns placement
        while the client only supplies the execution strategy.
        """
        if self._parallel_io > 1 and len(jobs) > 1:
            return list(self._executor().map(lambda job: job(), jobs))
        return [job() for job in jobs]

    def cache_stats(self) -> CacheStats:
        """Lifetime counters and occupancy of the metadata node cache.

        The cache is shared — by default across every store of this
        cluster, and (with default budgets) across all clusters of the
        process — so the numbers are cache-wide, not per-store.  Per-read
        and per-write deltas live on ``ReadStats.cache`` /
        ``WriteResult.cache``.  An uncached store reports all zeros.
        """
        return self._cache.stats() if self._cache is not None else CacheStats()

    def page_cache_stats(self) -> CacheStats:
        """Lifetime counters and occupancy of the page payload cache.

        Shared like the metadata cache (see :meth:`cache_stats`); per-read
        deltas live on ``ReadStats.page_cache``.  An uncached store reports
        all zeros.
        """
        return (
            self._page_cache.stats()
            if self._page_cache is not None
            else CacheStats()
        )

    def lease_stats(self):
        """Counters of the (possibly shared) version lease cache, or None
        when this store runs unleased — see
        :class:`~repro.vm.lease.LeaseStats`."""
        return self._lease.stats() if self._lease is not None else None

    @staticmethod
    def _page_request(
        descriptor: PageDescriptor, page_size: int, offset: int, size: int
    ) -> tuple[int, tuple[str, str, int, int]] | None:
        """Provider fetch request for the part of a page inside the byte
        window ``[offset, offset + size)``.

        Returns ``(destination, (provider_id, page_id, page_offset, length))``
        where ``destination`` is the chunk's position relative to ``offset``,
        or None when the page lies outside the window.  ``length`` is always
        a concrete byte count — the zero-copy callers slice their result
        buffer with it.
        """
        page_start = descriptor.page_index * page_size
        page_end = page_start + page_size
        want_start = max(offset, page_start)
        want_end = min(offset + size, page_end)
        if want_end <= want_start:
            return None
        fetch = (
            descriptor.provider_id,
            descriptor.page_id,
            want_start - page_start,
            want_end - want_start,
        )
        return want_start - offset, fetch

    def _fetch_pages_into(
        self,
        record: BlobRecord,
        descriptors: list[PageDescriptor],
        buffer: bytearray,
        offset: int,
        size: int,
        page_tally: CacheTally | None = None,
        fault_tally: FaultTally | None = None,
    ) -> int:
        """Fetch the needed byte range of every page into ``buffer`` with one
        batched multi-fetch per provider; return the batch count.  Ranges
        held by the shared page cache are deposited directly and never
        enter a provider batch — a fully cached read costs zero batches.
        Each request carries its page's replica tuple, so a failed provider
        batch fails over to the next live replica (counted in
        ``fault_tally``) instead of failing the read.

        Zero-copy assembly: each request carries a writable ``memoryview``
        slice of the (single) result buffer, so providers deposit page bytes
        directly at their final destination instead of materializing
        per-chunk ``bytes`` objects that get copied a second time.  The
        slices are disjoint, so concurrent per-provider batches on the
        ``parallel_io`` pool never overlap.
        """
        page_size = record.page_size
        view = memoryview(buffer)
        requests: list[tuple[str, str, int, memoryview]] = []
        failover: list[tuple[str, ...]] = []
        for descriptor in descriptors:
            request = self._page_request(descriptor, page_size, offset, size)
            if request is None:
                continue
            destination, (provider_id, page_id, page_offset, length) = request
            requests.append(
                (provider_id, page_id, page_offset,
                 view[destination:destination + length])
            )
            failover.append(descriptor.provider_ids)
        return self._pm.multi_fetch_into(
            requests,
            run_batches=self._run_batches,
            cache=self._page_cache,
            cache_key=self._cluster.page_cache_key,
            tally=page_tally,
            failover=failover,
            fault_tally=fault_tally,
        )

    def _executor(self) -> ThreadPoolExecutor:
        """The client's persistent thread pool, created on first use.

        One pool per :class:`BlobStore` — spinning a fresh pool per batch
        would add thread create/join cycles to every metadata frontier and
        page transfer, the exact hot path the batching optimizes.
        """
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._parallel_io,
                        thread_name_prefix="blobstore-io",
                    )
        return self._pool

    def close(self) -> None:
        """Release the thread pool (optional; also reclaimed at exit)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
