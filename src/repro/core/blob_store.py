"""The synchronous BlobSeer client: CREATE, WRITE, APPEND, READ, GET_RECENT,
GET_SIZE, SYNC and BRANCH (paper, Section 2.1).

A :class:`BlobStore` is what a threaded application links against.  Several
``BlobStore`` instances (one per thread, or one shared — the class is
thread-safe) can operate concurrently against the same :class:`Cluster`,
which is how the concurrency tests model the paper's "arbitrarily large
number of concurrent clients".

Since the asyncio redesign this class is a *bridge*, not an implementation:
every operation delegates to the one async client core,
:class:`~repro.core.async_store.AsyncBlobStore`, executed on a
:class:`~repro.aio.SyncRuntime` whose awaitables never suspend — so
:func:`~repro.aio.run_sync` drives each call to completion without an event
loop, a task, or a parked thread.  Planning, caching, replication, retry and
trip accounting exist exactly once, in the async core; this module only
supplies the synchronous calling convention (plus the legacy ``parallel_io``
thread pool, which lives on the runtime).  Under the sync runtime the core
keeps the strict level-by-level metadata traversal and the
store-then-publish write order, so behaviour, timing and every ``*_ex``
counter are bit-for-bit what they were before the redesign; the pipelined
traversal and the store/publish overlap switch on only under
:class:`~repro.aio.AsyncRuntime` (see :mod:`repro.core.async_store`).

Write path (Algorithm 2): pages are stored on data providers chosen by the
provider manager, the version manager assigns the snapshot version and
returns the border-node hints, the client weaves the new metadata tree into
the old one, and finally notifies the version manager, which publishes
versions in total order.

Read path (Algorithms 1 and 3): the client checks publication with the
version manager, walks the segment tree of the requested snapshot through
the metadata DHT, then fetches the needed (parts of) pages from the data
providers.

Metadata I/O is *frontier-parallel*: the sans-IO planners
(:func:`repro.metadata.read_plan.read_plan`,
:func:`repro.metadata.build.border_plan`) yield one
:class:`~repro.metadata.node.Frontier` of independent node fetches per tree
level, and the store resolves each frontier with one batched DHT multi-get
(grouped by bucket, one bucket-lock acquisition per batch; concurrent bucket
groups go through the ``parallel_io`` thread pool).  Likewise, an update
publishes all of its new tree nodes in one batched multi-put — Algorithm 4
line 34's "in parallel", for real.  Metadata round trips per READ/WRITE are
therefore O(tree depth) = O(log pages), not O(nodes touched); the ``*_ex``
stats report both ``metadata_nodes_fetched`` (nodes that actually travelled
from the DHT) and ``metadata_round_trips``.

Metadata caching, page-payload caching and version leases are *shared
subsystems* (see the async core's docstring and :mod:`repro.cache` /
:mod:`repro.vm`): published tree nodes, stored pages and published-snapshot
facts are immutable, so every store on a :class:`Cluster` reads and writes
the same sharded LRU caches, frontier resolution filters cached keys before
the DHT multi-get, page fetches are served zero-copy from the page cache,
and a warm repeated READ costs zero metadata, data AND version-manager
round trips.  Per-operation deltas are reported on
``ReadStats``/``WriteResult``; cache-wide totals via :meth:`cache_stats`,
:meth:`page_cache_stats` and :meth:`lease_stats`.

API note: the ``*_ex`` methods (:meth:`write_ex`, :meth:`append_ex`,
:meth:`read_ex`) are the *canonical* operations — they do the work and
return the full result objects.  Bare :meth:`write` / :meth:`append` /
:meth:`read` are thin convenience wrappers that discard the stats; they are
not deprecated and behave identically to their ``*_ex`` counterparts.
"""

from __future__ import annotations

from ..aio import SyncRuntime, run_sync
from ..cache import CacheStats, CacheTally, NodeCache, PageCache
from ..metadata.read_plan import ReadPlanResult
from ..version.records import BlobRecord
from ..vm import LeaseCache
from .async_store import AsyncBlobStore, ReadStats, WriteResult
from .cluster import Cluster

__all__ = ["BlobStore", "ReadStats", "WriteResult"]


class BlobStore:
    """Synchronous client front-end to a BlobSeer :class:`Cluster`.

    A loop-free bridge over :class:`~repro.core.async_store.AsyncBlobStore`
    — see the module docstring for the execution model.

    Parameters
    ----------
    cluster:
        The deployment to operate against.
    parallel_io:
        When > 1, per-provider page batches and per-bucket metadata batches
        run on a thread pool of that many workers, mirroring the paper's
        parallel page transfers.  The default (sequential) is usually faster
        in-process because of the GIL.  (Event-loop concurrency without any
        threads is what :class:`~repro.core.async_store.AsyncBlobStore`
        provides instead.)
    strict_unaligned:
        When True, unaligned WRITEs register their version first and wait for
        the previous snapshot before filling boundary pages, giving exact
        read-modify-write semantics at page boundaries even under concurrent
        overlapping writers (at the cost of serializing those writers).  The
        default fills boundaries from the most recently *published* snapshot,
        which matches the paper's lock-free spirit.
    cache_metadata:
        When True (the default), fetched metadata tree nodes are cached in
        the cluster's shared :class:`~repro.cache.NodeCache`.  Nodes are
        immutable once written (the paper's key design choice), so the
        cache never needs invalidation; it is LRU-bounded by the cluster
        config's ``metadata_cache_*`` budgets, and all stores on a cluster
        warm one another.  Pass False for cold-cache determinism (exact
        trip-count assertions, failure-injection tests).
    node_cache:
        Override the cache instance (a private cold
        :class:`~repro.cache.NodeCache` isolates tests from the shared
        one).  Ignored when ``cache_metadata`` is False.
    cache_pages:
        When True (the default), fetched page payload ranges are cached in
        the cluster's shared :class:`~repro.cache.PageCache` and served
        from it on repeat — stored pages are immutable, so the cache never
        needs invalidation (except for GC, which discards exactly the
        pages it deletes).  Pass False for cold-path determinism (exact
        data-trip assertions, failure-injection tests).  Also off when the
        cluster's config disables page caching (``page_cache_entries=None``).
    page_cache:
        Override the page cache instance (a private
        :class:`~repro.cache.PageCache` isolates tests from the shared
        one).  Ignored when ``cache_pages`` is False.
    lease_versions:
        When True (the default), GET_RECENT and the READ publication check
        are served from the cluster's shared :class:`~repro.vm.LeaseCache`
        when possible — publish notifications keep leases coherent, so
        results are identical to unleased calls while warm repeated reads
        issue zero version-manager round trips.  Pass False to hit the
        version manager on every call (the pre-PR-4 behaviour, with the
        old ``is_published`` + ``get_size`` pair fused into one
        ``check_read`` trip).  Also off when the cluster's config disables
        leasing (``vm_lease_ttl=None``).
    version_leases:
        Override the lease cache instance (a private
        :class:`~repro.vm.LeaseCache` isolates tests from the shared one).
        Ignored when ``lease_versions`` is False.

    Use as a context manager (``with BlobStore(c) as s: ...``) or call
    :meth:`close` explicitly (idempotent); a closed store raises
    :class:`~repro.errors.StoreClosedError` on further operations.
    """

    def __init__(
        self,
        cluster: Cluster,
        parallel_io: int = 0,
        strict_unaligned: bool = False,
        cache_metadata: bool = True,
        node_cache: NodeCache | None = None,
        cache_pages: bool = True,
        page_cache: PageCache | None = None,
        lease_versions: bool = True,
        version_leases: LeaseCache | None = None,
        peer_group=None,
    ):
        self._runtime = SyncRuntime(parallel_io=parallel_io)
        self._engine = AsyncBlobStore(
            cluster,
            strict_unaligned=strict_unaligned,
            cache_metadata=cache_metadata,
            node_cache=node_cache,
            cache_pages=cache_pages,
            page_cache=page_cache,
            lease_versions=lease_versions,
            version_leases=version_leases,
            runtime=self._runtime,
            peer_group=peer_group,
        )
        self._engine._display_name = type(self).__name__
        # Component handles mirrored for introspection/debugging parity with
        # the pre-bridge class; the engine owns the logic.
        self._cluster = cluster
        self._vm = self._engine._vm
        self._pm = self._engine._pm
        self._meta = self._engine._meta
        self._cache = self._engine._cache
        self._page_cache = self._engine._page_cache
        self._lease = self._engine._lease

    # ------------------------------------------------------------------ CREATE
    def create(self, page_size: int | None = None) -> str:
        """CREATE: make a new blob with an empty, published snapshot 0."""
        return run_sync(self._engine.create(page_size))

    # ------------------------------------------------------------------- WRITE
    def write(self, blob_id: str, data: bytes, offset: int) -> int:
        """WRITE: replace ``len(data)`` bytes at ``offset``; return the new
        snapshot version (which may not be published yet — use SYNC).

        Thin wrapper over the canonical :meth:`write_ex`.
        """
        return run_sync(self._engine.write(blob_id, data, offset))

    def write_ex(self, blob_id: str, data: bytes, offset: int) -> WriteResult:
        return run_sync(self._engine.write_ex(blob_id, data, offset))

    # ------------------------------------------------------------------ APPEND
    def append(self, blob_id: str, data: bytes) -> int:
        """APPEND: WRITE at the end of the previous snapshot; the offset is
        chosen by the version manager.

        Thin wrapper over the canonical :meth:`append_ex`.
        """
        return run_sync(self._engine.append(blob_id, data))

    def append_ex(self, blob_id: str, data: bytes) -> WriteResult:
        return run_sync(self._engine.append_ex(blob_id, data))

    # -------------------------------------------------------------------- READ
    def read(self, blob_id: str, version: int, offset: int, size: int) -> bytes:
        """READ: return ``size`` bytes at ``offset`` from snapshot ``version``.

        Fails when the version is not published or the range exceeds the
        snapshot size (paper, Section 2.1).  Thin wrapper over the canonical
        :meth:`read_ex`.
        """
        return run_sync(self._engine.read(blob_id, version, offset, size))

    def read_ex(
        self, blob_id: str, version: int, offset: int, size: int
    ) -> tuple[bytes, ReadStats]:
        return run_sync(self._engine.read_ex(blob_id, version, offset, size))

    def read_recent(self, blob_id: str, offset: int, size: int) -> tuple[int, bytes]:
        """Convenience: READ from the most recently published snapshot."""
        return run_sync(self._engine.read_recent(blob_id, offset, size))

    # ------------------------------------------------------- version primitives
    def get_recent(self, blob_id: str) -> int:
        """GET_RECENT: a recently published snapshot version.

        Served from the shared version lease when one is fresh — publish
        notifications renew leases synchronously, so the answer equals what
        the version manager itself would return.
        """
        return run_sync(self._engine.get_recent(blob_id))

    def get_size(self, blob_id: str, version: int) -> int:
        """GET_SIZE: size in bytes of a published snapshot.

        A published snapshot's size is immutable, so the answer is served
        from the lease cache's fact map once known.
        """
        return run_sync(self._engine.get_size(blob_id, version))

    def sync(self, blob_id: str, version: int, timeout: float | None = None) -> None:
        """SYNC: block until ``version`` is published ("read your writes")."""
        return run_sync(self._engine.sync(blob_id, version, timeout))

    def branch(self, blob_id: str, version: int) -> str:
        """BRANCH: virtually duplicate the blob up to ``version``; return the
        new blob id."""
        return run_sync(self._engine.branch(blob_id, version))

    # ------------------------------------------------------------- introspection
    def cache_stats(self) -> CacheStats:
        """Lifetime counters and occupancy of the metadata node cache.

        The cache is shared — by default across every store of this
        cluster, and (with default budgets) across all clusters of the
        process — so the numbers are cache-wide, not per-store.  Per-read
        and per-write deltas live on ``ReadStats.cache`` /
        ``WriteResult.cache``.  An uncached store reports all zeros.
        """
        return self._engine.cache_stats()

    def page_cache_stats(self) -> CacheStats:
        """Lifetime counters and occupancy of the page payload cache.

        Shared like the metadata cache (see :meth:`cache_stats`); per-read
        deltas live on ``ReadStats.page_cache``.  An uncached store reports
        all zeros.
        """
        return self._engine.page_cache_stats()

    def lease_stats(self):
        """Counters of the (possibly shared) version lease cache, or None
        when this store runs unleased — see
        :class:`~repro.vm.lease.LeaseStats`."""
        return self._engine.lease_stats()

    # ------------------------------------------------------------- compat seams
    def _run_read_plan(
        self,
        record: BlobRecord,
        version: int,
        span: int,
        page_offset: int,
        page_count: int,
        tally: CacheTally | None = None,
    ) -> ReadPlanResult:
        """Resolve a snapshot's read plan synchronously (test/tooling seam —
        identical to the traversal :meth:`read_ex` performs)."""
        return run_sync(
            self._engine._run_read_plan(
                record, version, span, page_offset, page_count, tally
            )
        )

    def _run_batches(self, jobs: list) -> list:
        """Execute per-backend batch jobs with this store's strategy (the
        legacy ``run_batches`` contract: zero-arg sync jobs)."""
        return self._runtime.execute_sync_jobs(jobs)

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the store and its thread pool (idempotent); further
        operations raise :class:`~repro.errors.StoreClosedError`.  The
        shared caches and the cluster stay untouched."""
        self._engine.close()

    def __enter__(self) -> "BlobStore":
        self._engine._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
