"""Object-style handle over one blob.

:class:`Blob` is a small convenience wrapper over :class:`BlobStore` for
applications that work with a single blob at a time (the quickstart example
uses it).  All methods delegate to the store, so the paper's semantics —
versions, publication, branching — are unchanged.
"""

from __future__ import annotations

from .blob_store import BlobStore


class Blob:
    """A handle to one blob managed by a :class:`BlobStore`."""

    def __init__(self, store: BlobStore, blob_id: str):
        self._store = store
        self._blob_id = blob_id

    # -- identity -------------------------------------------------------------
    @property
    def blob_id(self) -> str:
        return self._blob_id

    @property
    def store(self) -> BlobStore:
        return self._store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Blob({self._blob_id!r})"

    # -- creation --------------------------------------------------------------
    @classmethod
    def create(cls, store: BlobStore, page_size: int | None = None) -> "Blob":
        """CREATE a new blob and return its handle."""
        return cls(store, store.create(page_size))

    # -- primitives -------------------------------------------------------------
    def write(self, data: bytes, offset: int) -> int:
        """WRITE ``data`` at ``offset``; return the assigned snapshot version."""
        return self._store.write(self._blob_id, data, offset)

    def append(self, data: bytes) -> int:
        """APPEND ``data`` at the end of the blob; return the version."""
        return self._store.append(self._blob_id, data)

    def read(self, version: int, offset: int, size: int) -> bytes:
        """READ ``size`` bytes at ``offset`` from snapshot ``version``."""
        return self._store.read(self._blob_id, version, offset, size)

    def read_recent(self, offset: int, size: int) -> tuple[int, bytes]:
        """READ from the most recently published snapshot; return (version, data)."""
        return self._store.read_recent(self._blob_id, offset, size)

    def get_recent(self) -> int:
        """GET_RECENT: a recently published snapshot version."""
        return self._store.get_recent(self._blob_id)

    def get_size(self, version: int | None = None) -> int:
        """GET_SIZE of ``version`` (default: the most recent published one)."""
        if version is None:
            version = self.get_recent()
        return self._store.get_size(self._blob_id, version)

    def sync(self, version: int, timeout: float | None = None) -> None:
        """SYNC: block until ``version`` is published."""
        self._store.sync(self._blob_id, version, timeout)

    def branch(self, version: int | None = None) -> "Blob":
        """BRANCH the blob at ``version`` (default: most recent published)."""
        if version is None:
            version = self.get_recent()
        return Blob(self._store, self._store.branch(self._blob_id, version))

    # -- file-like adapters -------------------------------------------------------
    def open_reader(self, version: int | None = None):
        """Return a read-only, seekable file object over one snapshot.

        See :class:`repro.core.io.SnapshotReader`.
        """
        from .io import SnapshotReader

        return SnapshotReader(self._store, self._blob_id, version)

    def open_writer(self, flush_threshold: int = 1 << 20):
        """Return an append-only file object producing new snapshots.

        See :class:`repro.core.io.AppendWriter`.
        """
        from .io import AppendWriter

        return AppendWriter(self._store, self._blob_id, flush_threshold)

    # -- conveniences -----------------------------------------------------------
    def read_all(self, version: int | None = None) -> bytes:
        """Read the full contents of a snapshot."""
        if version is None:
            version = self.get_recent()
        return self.read(version, 0, self.get_size(version))

    def versions(self) -> list[int]:
        """Published versions of this blob, oldest first (0 = empty snapshot)."""
        return list(range(0, self.get_recent() + 1))
