"""Binary serialization of metadata tree nodes.

The in-process DHT stores node objects directly, but a networked deployment
(and the simulator's accounting of message sizes) needs a wire format.  The
format is deliberately simple and self-describing:

``NodeKey``  →  ``blob_id/version/offset/size`` (UTF-8, the DHT key string).

``TreeNode`` →  one tag byte followed by the payload:

* ``b"L"`` — single-replica leaf: big-endian ``u16`` page-id length, page id
  (UTF-8), ``u16`` provider-id length, provider id (UTF-8), ``u32`` valid
  length;
* ``b"R"`` — replicated leaf (``page_replication > 1``): ``u16`` page-id
  length, page id (UTF-8), ``u8`` replica count, then per replica a ``u16``
  provider-id length and provider id (UTF-8, primary first), and finally the
  ``u32`` valid length.  A leaf with exactly one replica always encodes with
  ``b"L"``, keeping ``page_replication=1`` deployments bit-identical to the
  pre-replication wire format;
* ``b"I"`` — inner node: two child slots, each a tag byte ``b"V"`` followed
  by a big-endian ``u64`` version, or ``b"N"`` for a dangling child.

Round-tripping every node through this format is covered by property tests,
and :class:`repro.metadata.metadata_provider.MetadataProvider` can be asked
to store encoded bytes instead of objects (``encode_values=True``), which is
also what gives the simulator's ``metadata_node_size`` a concrete meaning.
"""

from __future__ import annotations

import struct

from ..errors import MetadataNotFoundError
from .node import InnerNode, LeafNode, NodeKey, TreeNode

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

LEAF_TAG = b"L"
REPLICATED_LEAF_TAG = b"R"
INNER_TAG = b"I"
_VERSION_TAG = b"V"
_NONE_TAG = b"N"


def encode_key(key: NodeKey) -> bytes:
    """Encode a :class:`NodeKey` to bytes (the DHT key string, UTF-8)."""
    return key.to_string().encode("utf-8")


def decode_key(raw: bytes) -> NodeKey:
    """Decode a key produced by :func:`encode_key`."""
    return NodeKey.from_string(raw.decode("utf-8"))


def encode_node(node: TreeNode) -> bytes:
    """Encode a tree node to its wire representation."""
    if isinstance(node, LeafNode):
        page_id = node.page_id.encode("utf-8")
        if len(node.provider_ids) > 1:
            parts = [
                REPLICATED_LEAF_TAG,
                _U16.pack(len(page_id)),
                page_id,
                _U8.pack(len(node.provider_ids)),
            ]
            for replica in node.provider_ids:
                replica_bytes = replica.encode("utf-8")
                parts.append(_U16.pack(len(replica_bytes)))
                parts.append(replica_bytes)
            parts.append(_U32.pack(node.length))
            return b"".join(parts)
        provider_id = node.provider_id.encode("utf-8")
        return b"".join(
            (
                LEAF_TAG,
                _U16.pack(len(page_id)),
                page_id,
                _U16.pack(len(provider_id)),
                provider_id,
                _U32.pack(node.length),
            )
        )
    if isinstance(node, InnerNode):
        return INNER_TAG + _encode_child(node.left_version) + _encode_child(
            node.right_version
        )
    raise TypeError(f"not a tree node: {node!r}")


def decode_node(raw: bytes) -> TreeNode:
    """Decode a node produced by :func:`encode_node`."""
    if not raw:
        raise MetadataNotFoundError("empty node payload")
    tag, payload = raw[:1], raw[1:]
    if tag == LEAF_TAG:
        return _decode_leaf(payload)
    if tag == REPLICATED_LEAF_TAG:
        return _decode_replicated_leaf(payload)
    if tag == INNER_TAG:
        left, payload = _decode_child(payload)
        right, payload = _decode_child(payload)
        if payload:
            raise MetadataNotFoundError("trailing bytes in inner-node payload")
        return InnerNode(left, right)
    raise MetadataNotFoundError(f"unknown node tag: {tag!r}")


def encoded_size(node: TreeNode) -> int:
    """Size in bytes of a node's wire representation."""
    return len(encode_node(node))


def _encode_child(version: int | None) -> bytes:
    if version is None:
        return _NONE_TAG
    return _VERSION_TAG + _U64.pack(version)


def _decode_child(payload: bytes) -> tuple[int | None, bytes]:
    if not payload:
        raise MetadataNotFoundError("truncated inner-node payload")
    tag, rest = payload[:1], payload[1:]
    if tag == _NONE_TAG:
        return None, rest
    if tag == _VERSION_TAG:
        if len(rest) < _U64.size:
            raise MetadataNotFoundError("truncated child version")
        (version,) = _U64.unpack_from(rest)
        return version, rest[_U64.size:]
    raise MetadataNotFoundError(f"unknown child tag: {tag!r}")


def _decode_leaf(payload: bytes) -> LeafNode:
    try:
        position = 0
        (page_len,) = _U16.unpack_from(payload, position)
        position += _U16.size
        page_id = payload[position:position + page_len].decode("utf-8")
        position += page_len
        (provider_len,) = _U16.unpack_from(payload, position)
        position += _U16.size
        provider_id = payload[position:position + provider_len].decode("utf-8")
        position += provider_len
        (length,) = _U32.unpack_from(payload, position)
        position += _U32.size
    except (struct.error, UnicodeDecodeError) as error:
        raise MetadataNotFoundError(f"malformed leaf payload: {error}") from error
    if position != len(payload):
        raise MetadataNotFoundError("trailing bytes in leaf payload")
    return LeafNode(page_id=page_id, provider_id=provider_id, length=length)


def _decode_replicated_leaf(payload: bytes) -> LeafNode:
    try:
        position = 0
        (page_len,) = _U16.unpack_from(payload, position)
        position += _U16.size
        page_id = payload[position:position + page_len].decode("utf-8")
        position += page_len
        (replica_count,) = _U8.unpack_from(payload, position)
        position += _U8.size
        replicas: list[str] = []
        for _ in range(replica_count):
            (replica_len,) = _U16.unpack_from(payload, position)
            position += _U16.size
            replica = payload[position:position + replica_len].decode("utf-8")
            position += replica_len
            replicas.append(replica)
        (length,) = _U32.unpack_from(payload, position)
        position += _U32.size
    except (struct.error, UnicodeDecodeError) as error:
        raise MetadataNotFoundError(f"malformed leaf payload: {error}") from error
    if position != len(payload):
        raise MetadataNotFoundError("trailing bytes in leaf payload")
    if not replicas:
        raise MetadataNotFoundError("replicated leaf with zero replicas")
    return LeafNode(
        page_id=page_id,
        provider_id=replicas[0],
        length=length,
        provider_ids=tuple(replicas),
    )
