"""The metadata provider: tree nodes stored in the DHT.

The metadata provider "physically stores the metadata allowing clients to
find the pages corresponding to the blob snapshot version" (Section 3.1) and
is "implemented in a distributed way" over the custom DHT (Section 5).  This
class is a thin, typed façade over :class:`repro.dht.DHT`: it serializes
:class:`NodeKey` objects to DHT keys and validates node types.
"""

from __future__ import annotations

from ..aio import IORuntime
from ..dht.dht import DHT
from ..errors import MetadataNotFoundError
from .node import InnerNode, LeafNode, NodeKey, TreeNode
from .serialization import decode_node, encode_node


class MetadataProvider:
    """Stores and retrieves metadata tree nodes keyed by :class:`NodeKey`.

    With ``encode_values=True`` nodes are serialized to their wire format
    (see :mod:`repro.metadata.serialization`) before being handed to the
    DHT, exactly as a networked deployment would ship them.
    """

    def __init__(self, dht: DHT, encode_values: bool = False):
        self._dht = dht
        self._encode = encode_values

    @property
    def dht(self) -> DHT:
        return self._dht

    def put_node(self, key: NodeKey, node: TreeNode) -> None:
        """Store one tree node.  Nodes are immutable; re-puts are idempotent."""
        if not isinstance(node, (InnerNode, LeafNode)):
            raise TypeError(f"not a tree node: {node!r}")
        value = encode_node(node) if self._encode else node
        self._dht.put(key.to_string(), value)

    def put_nodes(
        self, items: list[tuple[NodeKey, TreeNode]], run_batches=None
    ) -> None:
        """Store a batch of tree nodes in one DHT multi-put.

        The paper writes all new nodes "in parallel" (Algorithm 4, line 34):
        the batch is grouped by bucket and each bucket lock is taken once,
        so an update publishes its whole tree in one round of bucket visits
        instead of one put per node.  ``run_batches`` is forwarded to
        :meth:`repro.dht.DHT.multi_put` to run the per-bucket sub-batches
        concurrently.
        """
        self._dht.multi_put(self._encode_items(items), run_batches=run_batches)

    async def put_nodes_async(
        self, items: list[tuple[NodeKey, TreeNode]], runtime: IORuntime
    ) -> None:
        """Awaitable :meth:`put_nodes`: the per-bucket sub-batches execute
        on *runtime* — the write path's event-loop mode starts this publish
        while the page stores are still in flight."""
        await self._dht.multi_put_async(self._encode_items(items), runtime)

    def _encode_items(
        self, items: list[tuple[NodeKey, TreeNode]]
    ) -> list[tuple[str, object]]:
        encoded: list[tuple[str, object]] = []
        for key, node in items:
            if not isinstance(node, (InnerNode, LeafNode)):
                raise TypeError(f"not a tree node: {node!r}")
            value = encode_node(node) if self._encode else node
            encoded.append((key.to_string(), value))
        return encoded

    def get_node(self, key: NodeKey) -> TreeNode:
        """Fetch one tree node; raises :class:`MetadataNotFoundError` if absent."""
        value = self._dht.get(key.to_string())
        return self._as_node(key, value)

    def get_nodes(self, keys: list[NodeKey], run_batches=None) -> list[TreeNode]:
        """Fetch a batch of tree nodes in one DHT multi-get.

        The values are returned aligned with ``keys``; a missing node raises
        :class:`MetadataNotFoundError` exactly like :meth:`get_node`.  This
        is the provider-side half of the frontier protocol: one call
        resolves a whole tree level.  ``run_batches`` is forwarded to
        :meth:`repro.dht.DHT.multi_get` to run the per-bucket sub-batches
        concurrently.
        """
        values = self._dht.multi_get(
            [key.to_string() for key in keys], run_batches=run_batches
        )
        return [self._as_node(key, value) for key, value in zip(keys, values)]

    async def get_nodes_async(
        self, keys: list[NodeKey], runtime: IORuntime
    ) -> list[TreeNode]:
        """Awaitable :meth:`get_nodes`; same alignment and error semantics."""
        values = await self._dht.multi_get_async(
            [key.to_string() for key in keys], runtime
        )
        return [self._as_node(key, value) for key, value in zip(keys, values)]

    def try_get_nodes(
        self, keys: list[NodeKey], run_batches=None
    ) -> list[TreeNode | None]:
        """Miss-tolerant :meth:`get_nodes`: absent nodes yield ``None``.

        The speculative-prefetch path (DESIGN.md §9) looks up *predicted*
        node keys that may not exist; a misprediction must surface as a
        ``None`` slot, never as an exception.  Unavailable replicas count
        as missing too — speculation never fails a read.
        """
        values = self._dht.try_multi_get(
            [key.to_string() for key in keys], run_batches=run_batches
        )
        return self._as_optional_nodes(keys, values)

    async def try_get_nodes_async(
        self, keys: list[NodeKey], runtime: IORuntime
    ) -> list[TreeNode | None]:
        """Awaitable :meth:`try_get_nodes`."""
        values = await self._dht.try_multi_get_async(
            [key.to_string() for key in keys], runtime
        )
        return self._as_optional_nodes(keys, values)

    def _as_optional_nodes(
        self, keys: list[NodeKey], values: list[object | None]
    ) -> list[TreeNode | None]:
        nodes: list[TreeNode | None] = []
        for key, value in zip(keys, values):
            if value is None:
                nodes.append(None)
                continue
            try:
                nodes.append(self._as_node(key, value))
            except MetadataNotFoundError:
                nodes.append(None)
        return nodes

    def bucket_groups(self, keys: list[NodeKey]) -> list[list[int]]:
        """Key positions grouped by primary DHT bucket (placement stays in
        the provider); the pipelined traversal fetches each group as its own
        task so one slow bucket never gates the others' subtree descent."""
        return self._dht.primary_groups([key.to_string() for key in keys])

    def _as_node(self, key: NodeKey, value: object) -> TreeNode:
        if isinstance(value, bytes):
            return decode_node(value)
        if not isinstance(value, (InnerNode, LeafNode)):
            raise MetadataNotFoundError(key)
        return value

    def has_node(self, key: NodeKey) -> bool:
        return self._dht.contains(key.to_string())

    def delete_node(self, key: NodeKey) -> bool:
        """Remove a node (used when garbage-collecting aborted updates)."""
        return self._dht.delete(key.to_string())

    def node_count(self) -> int:
        """Total number of stored tree nodes across all DHT buckets."""
        return self._dht.stats().keys
