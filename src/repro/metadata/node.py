"""Metadata tree node types.

A tree node is identified uniquely by its *version* and the page range
``(offset, size)`` it covers (paper, Section 4.1).  Inner nodes hold the
versions of their left and right children; leaves hold the page id and the
provider that stores the page.

All offsets and sizes in this module are expressed in **pages**, not bytes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class NodeKey:
    """Globally unique identity of a tree node in the metadata DHT.

    ``blob_id`` is the blob that *created* the node (for branched blobs this
    is resolved through the lineage), ``version`` the snapshot version whose
    update created it, and ``(offset, size)`` the page range it covers.
    """

    blob_id: str
    version: int
    offset: int
    size: int

    def to_string(self) -> str:
        """Serialize to the flat string used as the DHT key."""
        return f"{self.blob_id}/{self.version}/{self.offset}/{self.size}"

    @classmethod
    def from_string(cls, raw: str) -> "NodeKey":
        blob_id, version, offset, size = raw.rsplit("/", 3)
        return cls(blob_id, int(version), int(offset), int(size))


@dataclass(frozen=True)
class NodeRef:
    """A (version, offset, size) reference to a node, without the blob id.

    The sans-IO plans yield ``NodeRef`` requests; the driver resolves the
    owning blob id (branch lineage) and turns them into :class:`NodeKey`.
    """

    version: int
    offset: int
    size: int


@dataclass(frozen=True)
class Frontier:
    """A batch of independent node fetches, one tree level of a traversal.

    The sans-IO plans (:func:`repro.metadata.read_plan.read_plan`,
    :func:`repro.metadata.build.border_plan`) yield one ``Frontier`` per tree
    level instead of one :class:`NodeRef` per node: every ref in a frontier
    can be resolved concurrently, so a driver needs only one (batched)
    round trip per frontier — O(tree depth) trips instead of O(nodes).

    The plan must be sent back a list of :class:`TreeNode` values aligned
    with :attr:`refs`.
    """

    refs: tuple[NodeRef, ...]

    def __len__(self) -> int:
        return len(self.refs)

    def __iter__(self):
        return iter(self.refs)


@dataclass(frozen=True)
class LeafNode:
    """A leaf covers exactly one page and records where it is stored.

    ``length`` is the number of valid bytes in the page — equal to the page
    size except possibly for the last page of a snapshot.

    ``provider_ids`` is the full replica set of the page, primary first:
    ``provider_ids[0] == provider_id`` always holds, and a single-replica
    leaf (``page_replication=1``, the paper's layout) has exactly
    ``(provider_id,)`` so its wire encoding stays bit-identical to the
    pre-replication format.  Constructing with ``provider_ids=()`` (the
    default) normalizes to the single-replica tuple.
    """

    page_id: str
    provider_id: str
    length: int
    provider_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        replicas = tuple(self.provider_ids)
        if not replicas:
            replicas = (self.provider_id,)
        if replicas[0] != self.provider_id:
            raise ValueError(
                f"provider_ids must list the primary first: "
                f"{replicas[0]!r} != {self.provider_id!r}"
            )
        if len(set(replicas)) != len(replicas):
            raise ValueError(f"duplicate replica in provider_ids: {replicas}")
        object.__setattr__(self, "provider_ids", replicas)

    @property
    def is_leaf(self) -> bool:
        return True


@dataclass(frozen=True)
class InnerNode:
    """An inner node holds the versions of its left and right children.

    A child version of ``None`` means the child subtree contains no pages of
    any snapshot up to the node's version (the "incomplete binary tree" of
    the paper's BUILD_META): readers never descend into it because their
    range is bounded by the snapshot size.
    """

    left_version: int | None
    right_version: int | None

    @property
    def is_leaf(self) -> bool:
        return False


TreeNode = LeafNode | InnerNode


@dataclass(frozen=True)
class PageDescriptor:
    """Information needed to fetch one page during a READ (paper's ``PD`` set).

    ``page_index`` is the absolute page index within the blob; ``page_id``
    and ``provider_id`` locate the stored page; ``length`` is the number of
    valid bytes in it.  ``provider_ids`` carries the page's full replica
    set (primary first, mirroring :class:`LeafNode`) so the read path can
    fail over to the next live replica when the primary is dead.
    """

    page_index: int
    page_id: str
    provider_id: str
    length: int
    provider_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        replicas = tuple(self.provider_ids)
        if not replicas:
            replicas = (self.provider_id,)
        if replicas[0] != self.provider_id:
            raise ValueError(
                f"provider_ids must list the primary first: "
                f"{replicas[0]!r} != {self.provider_id!r}"
            )
        object.__setattr__(self, "provider_ids", replicas)
