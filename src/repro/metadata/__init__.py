"""Distributed segment-tree metadata (Section 4 of the paper).

Metadata is organized as a segment tree per snapshot version; nodes are
shared between versions ("weaving") and stored in a DHT.  The algorithms are
implemented *sans-IO*: tree traversal and border-node discovery are
generators that yield batched node-fetch requests (:class:`Frontier` — one
batch per tree level), and tree construction is a pure function.  The
threaded client (:mod:`repro.core`) and the discrete-event simulator
(:mod:`repro.sim`) drive the exact same code.
"""

from .node import (
    Frontier,
    InnerNode,
    LeafNode,
    NodeKey,
    NodeRef,
    PageDescriptor,
    TreeNode,
)
from .geometry import (
    children_of,
    is_leaf_range,
    node_ranges_covering,
    pages_for_size,
    parent_of,
    span_for_pages,
    validate_node_range,
)
from .read_plan import (
    ReadPlanResult,
    drive_plan,
    multi_range_read_plan,
    read_plan,
)
from .build import (
    BorderSpec,
    BuildResult,
    border_plan,
    border_targets,
    build_nodes,
)
from .metadata_provider import MetadataProvider

__all__ = [
    "Frontier",
    "InnerNode",
    "LeafNode",
    "NodeKey",
    "NodeRef",
    "PageDescriptor",
    "TreeNode",
    "children_of",
    "is_leaf_range",
    "node_ranges_covering",
    "pages_for_size",
    "parent_of",
    "span_for_pages",
    "validate_node_range",
    "ReadPlanResult",
    "drive_plan",
    "multi_range_read_plan",
    "read_plan",
    "BorderSpec",
    "BuildResult",
    "border_plan",
    "border_targets",
    "build_nodes",
    "MetadataProvider",
]
