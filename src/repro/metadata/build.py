"""Sans-IO implementation of BUILD_META and border-node discovery
(paper, Section 4.2, Algorithm 4).

An update that produces snapshot version ``vw`` creates the smallest
(possibly incomplete) tree whose leaves are exactly the pages it wrote.  The
new inner nodes may have children that fall outside the update range — the
*border nodes* — which must point at the most recent older version of the
corresponding subtree.  Concurrent updates are handled without waiting: the
version manager hands the writer the ranges of in-flight (assigned but
unpublished) updates, and the writer resolves the remaining border versions
by descending the most recently *published* tree (paper, "Why WRITEs and
APPENDs may proceed in parallel").

The three pieces are:

* :func:`border_targets` — which border child ranges need a version, and
  which are dangling (no older pages underneath);
* :func:`border_plan` — a generator resolving the needed versions: in-flight
  ranges first, then a descent of the published tree (yields one
  :class:`~repro.metadata.node.Frontier` of batched node fetches per tree
  level, like :func:`repro.metadata.read_plan.read_plan`);
* :func:`build_nodes` — a pure function materializing every new tree node
  bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator, Sequence

from ..errors import ConcurrencyError, InvalidRangeError, MetadataNotFoundError
from ..util.ranges import intersects
from .geometry import children_of, node_ranges_covering, span_for_pages
from .node import Frontier, InnerNode, LeafNode, NodeRef, PageDescriptor, TreeNode


@dataclass
class BorderSpec:
    """Resolved border information for one update.

    ``versions`` maps a border child range ``(offset, size)`` to the snapshot
    version owning that subtree, or ``None`` when the subtree holds no pages
    of any earlier snapshot (a dangling pointer in the incomplete tree).
    """

    versions: dict[tuple[int, int], int | None] = field(default_factory=dict)
    nodes_fetched: int = 0
    round_trips: int = 0

    def version_for(self, offset: int, size: int) -> int | None:
        try:
            return self.versions[(offset, size)]
        except KeyError:
            raise ConcurrencyError(
                f"border version for subtree ({offset}, {size}) was never resolved"
            ) from None


@dataclass
class BuildResult:
    """All new tree nodes produced for one update, bottom-up (leaves first)."""

    version: int
    nodes: list[tuple[NodeRef, TreeNode]] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def root_ref(self) -> NodeRef:
        if not self.nodes:
            raise InvalidRangeError("empty build result has no root")
        return self.nodes[-1][0]


def border_targets(
    update_offset: int,
    update_size: int,
    span: int,
    prev_num_pages: int,
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Return (needed, dangling) border child ranges for an update.

    ``needed`` ranges hold at least one page of the previous snapshot and
    must be resolved to an older version; ``dangling`` ranges hold none and
    become ``None`` child pointers.
    """
    if update_size <= 0:
        raise InvalidRangeError("update size must be >= 1 page")
    needed: list[tuple[int, int]] = []
    dangling: list[tuple[int, int]] = []
    for offset, size in node_ranges_covering(update_offset, update_size, span):
        if size == 1:
            continue
        for child_offset, child_size in children_of(offset, size):
            if intersects(child_offset, child_size, update_offset, update_size):
                continue  # covered by a node this update creates itself
            if child_offset < prev_num_pages:
                needed.append((child_offset, child_size))
            else:
                dangling.append((child_offset, child_size))
    return needed, dangling


def border_plan(
    targets: Sequence[tuple[int, int]],
    dangling: Sequence[tuple[int, int]],
    published_version: int | None,
    published_num_pages: int,
    inflight: Sequence[tuple[int, int, int]],
) -> Generator[NodeRef, TreeNode, BorderSpec]:
    """Resolve the versions of all border child ranges.

    Parameters
    ----------
    targets, dangling:
        Output of :func:`border_targets`.
    published_version, published_num_pages:
        The most recently *published* snapshot at the time the update was
        assigned its version (``None`` / 0 when nothing is published yet).
    inflight:
        ``(version, page_offset, page_count)`` of every update that was
        assigned a lower version than ours but has not been published yet.
        These are the "problematic tree nodes" the version manager supplies
        (paper, Section 4.2): their metadata may not be readable yet, but
        their version numbers and ranges are known.

    The generator yields node fetches against the *published* tree only.
    """
    spec = BorderSpec()
    for child in dangling:
        spec.versions[child] = None

    unresolved: list[tuple[int, int]] = []
    for child in targets:
        child_offset, child_size = child
        candidates = [
            version
            for version, upd_offset, upd_count in inflight
            if intersects(upd_offset, upd_count, child_offset, child_size)
        ]
        if candidates:
            spec.versions[child] = max(candidates)
        else:
            unresolved.append(child)

    if not unresolved:
        return spec
    if published_version is None or published_num_pages <= 0:
        raise ConcurrencyError(
            "border subtrees need an older version but no snapshot is published "
            f"and no in-flight update covers them: {unresolved!r}"
        )

    published_span = span_for_pages(published_num_pages)
    remaining = set(unresolved)
    # Descend the published tree level by level, only entering subtrees that
    # still contain an unresolved target.  A target equal to a node's range
    # is resolved by the version recorded in the parent pointer we followed,
    # so only nodes with a strictly-smaller unresolved target need fetching —
    # and all fetches of one level are batched into a single frontier.
    level: list[NodeRef] = [NodeRef(published_version, 0, published_span)]
    while level and remaining:
        for ref in level:
            current = (ref.offset, ref.size)
            if current in remaining:
                spec.versions[current] = ref.version
                remaining.discard(current)
        to_fetch = [
            ref
            for ref in level
            if ref.size > 1
            and any(
                _strictly_inside(target, (ref.offset, ref.size))
                for target in remaining
            )
        ]
        if not to_fetch:
            break
        nodes = yield Frontier(tuple(to_fetch))
        spec.round_trips += 1
        spec.nodes_fetched += len(to_fetch)
        next_level: list[NodeRef] = []
        for ref, node in zip(to_fetch, nodes):
            if not isinstance(node, InnerNode):
                raise MetadataNotFoundError(
                    f"expected an inner node at ({ref.offset}, {ref.size}) "
                    "while resolving border nodes"
                )
            (left_offset, left_size), (right_offset, right_size) = children_of(
                ref.offset, ref.size
            )
            if node.left_version is not None and any(
                _inside(target, (left_offset, left_size)) for target in remaining
            ):
                next_level.append(NodeRef(node.left_version, left_offset, left_size))
            if node.right_version is not None and any(
                _inside(target, (right_offset, right_size)) for target in remaining
            ):
                next_level.append(NodeRef(node.right_version, right_offset, right_size))
        level = next_level

    if remaining:
        raise ConcurrencyError(
            f"could not resolve border versions for subtrees: {sorted(remaining)!r}"
        )
    return spec


def _inside(target: tuple[int, int], container: tuple[int, int]) -> bool:
    """True when *target* lies within *container* (possibly equal)."""
    t_offset, t_size = target
    c_offset, c_size = container
    return c_offset <= t_offset and t_offset + t_size <= c_offset + c_size


def _strictly_inside(target: tuple[int, int], container: tuple[int, int]) -> bool:
    return _inside(target, container) and target != container


def build_nodes(
    version: int,
    update_offset: int,
    update_size: int,
    span: int,
    descriptors: Sequence[PageDescriptor],
    borders: BorderSpec,
) -> BuildResult:
    """Materialize every tree node created by one update (Algorithm 4).

    Parameters
    ----------
    version:
        The snapshot version assigned to the update.
    update_offset, update_size:
        The updated page range.
    span:
        Span (in pages) of the *new* snapshot's tree — i.e.
        ``span_for_pages(new_num_pages)``.
    descriptors:
        One :class:`PageDescriptor` per written page; must cover the update
        range exactly.
    borders:
        Resolved border versions (see :func:`border_plan`).

    Returns the new nodes bottom-up; the last entry is always the new root.
    """
    if update_size <= 0:
        raise InvalidRangeError("update size must be >= 1 page")
    if span < span_for_pages(update_offset + update_size):
        raise InvalidRangeError(
            f"span {span} cannot contain the update range "
            f"({update_offset}, {update_size})"
        )
    expected_pages = set(range(update_offset, update_offset + update_size))
    provided_pages = {descriptor.page_index for descriptor in descriptors}
    if provided_pages != expected_pages:
        raise InvalidRangeError(
            "page descriptors do not cover the update range exactly: "
            f"missing={sorted(expected_pages - provided_pages)} "
            f"extra={sorted(provided_pages - expected_pages)}"
        )

    result = BuildResult(version=version)

    # Leaves, in page order.
    for descriptor in sorted(descriptors, key=lambda d: d.page_index):
        ref = NodeRef(version, descriptor.page_index, 1)
        leaf = LeafNode(
            page_id=descriptor.page_id,
            provider_id=descriptor.provider_id,
            length=descriptor.length,
            provider_ids=descriptor.provider_ids,
        )
        result.nodes.append((ref, leaf))

    # Inner levels, bottom-up until the root (size == span).
    size = 1
    current_offsets = sorted(provided_pages)
    while size < span:
        parent_size = size * 2
        parent_offsets = sorted(
            {(offset // parent_size) * parent_size for offset in current_offsets}
        )
        for parent_offset in parent_offsets:
            left = (parent_offset, size)
            right = (parent_offset + size, size)
            left_version = (
                version
                if intersects(left[0], left[1], update_offset, update_size)
                else borders.version_for(*left)
            )
            right_version = (
                version
                if intersects(right[0], right[1], update_offset, update_size)
                else borders.version_for(*right)
            )
            ref = NodeRef(version, parent_offset, parent_size)
            result.nodes.append((ref, InnerNode(left_version, right_version)))
        current_offsets = parent_offsets
        size = parent_size

    return result
