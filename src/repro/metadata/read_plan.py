"""Sans-IO implementation of READ_META (paper, Algorithm 3) using the
*frontier protocol*.

:func:`read_plan` descends the segment tree of a snapshot to find the page
descriptors covering a requested page range.  Instead of yielding one
:class:`~repro.metadata.node.NodeRef` fetch at a time, it traverses the tree
level by level and *yields* :class:`~repro.metadata.node.Frontier` batches —
all the independent node fetches of one tree level — and is *sent* the list
of corresponding :class:`TreeNode` values (aligned with ``Frontier.refs``).
It finally returns a :class:`ReadPlanResult`.

The frontier protocol is what makes metadata access scale the way the paper
argues it should: tree nodes live in a DHT precisely so that concurrent
fetches can proceed in parallel, so a traversal needs only one *batched*
round trip per tree level — O(log pages) trips — rather than one synchronous
round trip per node.  ``ReadPlanResult.round_trips`` counts the frontiers so
callers can report the metadata round-trip cost of a READ.

:func:`multi_range_read_plan` generalizes the traversal to several disjoint
page ranges in a *single* tree walk (used for the boundary pages of
unaligned writes, which need old bytes from the first and last page of the
update without traversing the metadata in between).

Drivers:

* the threaded client calls :func:`drive_plan` with a batched ``fetch_many``
  function that performs one grouped DHT multi-get per frontier;
* the discrete-event simulator advances the same generator, charging one
  (parallel) network round trip per frontier.

``drive_plan`` also accepts a per-node ``fetch`` function and plans that
yield bare :class:`NodeRef` requests, so ad-hoc plans and reference models
keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Generator, Sequence

from ..errors import InvalidRangeError, MetadataNotFoundError
from ..util.ranges import intersects
from .geometry import children_of, is_leaf_range, validate_node_range
from .node import Frontier, InnerNode, LeafNode, NodeRef, PageDescriptor, TreeNode


@dataclass
class ReadPlanResult:
    """Outcome of a metadata read: the page descriptors plus traversal stats.

    ``nodes_fetched`` counts individual tree nodes (unchanged by batching);
    ``round_trips`` counts the frontiers the traversal yielded — the number
    of batched metadata round trips a driver needed.
    """

    descriptors: list[PageDescriptor] = field(default_factory=list)
    nodes_fetched: int = 0
    leaves_visited: int = 0
    inner_visited: int = 0
    round_trips: int = 0

    def sorted_descriptors(self) -> list[PageDescriptor]:
        return sorted(self.descriptors, key=lambda d: d.page_index)


def read_plan(
    root_version: int,
    span: int,
    page_offset: int,
    page_count: int,
) -> Generator[Frontier, Sequence[TreeNode], ReadPlanResult]:
    """Plan the metadata traversal for reading ``page_count`` pages starting
    at ``page_offset`` from the snapshot whose root node has version
    ``root_version`` and spans ``span`` pages.

    The traversal explores a node only when its range intersects the
    requested range (Algorithm 3, lines 8–13) and batches each tree level
    into one :class:`Frontier`.  Dangling child pointers (``None``) are never
    followed: a read bounded by the snapshot size never needs them.
    """
    if page_count > 0 and span <= 0:
        raise InvalidRangeError("cannot read from an empty snapshot")
    if page_count > 0 and (page_offset < 0 or page_offset + page_count > span):
        raise InvalidRangeError(
            f"page range ({page_offset}, {page_count}) outside tree span {span}"
        )
    result = yield from _frontier_walk(
        root_version, span, [(page_offset, page_count)]
    )
    return result


def multi_range_read_plan(
    root_version: int,
    span: int,
    ranges: Sequence[tuple[int, int]],
) -> Generator[Frontier, Sequence[TreeNode], ReadPlanResult]:
    """Plan one combined traversal covering several disjoint page ranges.

    Equivalent to running :func:`read_plan` once per range, but nodes shared
    between the ranges' root-to-leaf paths are fetched once and every tree
    level is still resolved in a single frontier, keeping the round-trip
    count at O(tree depth) regardless of how many ranges are requested.
    """
    active = [(offset, count) for offset, count in ranges if count > 0]
    if active:
        if span <= 0:
            raise InvalidRangeError("cannot read from an empty snapshot")
        for page_offset, page_count in active:
            if page_offset < 0 or page_offset + page_count > span:
                raise InvalidRangeError(
                    f"page range ({page_offset}, {page_count}) outside tree "
                    f"span {span}"
                )
    result = yield from _frontier_walk(root_version, span, active)
    return result


def _frontier_walk(
    root_version: int,
    span: int,
    ranges: list[tuple[int, int]],
) -> Generator[Frontier, Sequence[TreeNode], ReadPlanResult]:
    """Level-order traversal shared by the single- and multi-range plans."""
    result = ReadPlanResult()
    if not any(count > 0 for _, count in ranges):
        return result

    def wanted(offset: int, size: int) -> bool:
        return any(
            intersects(offset, size, page_offset, page_count)
            for page_offset, page_count in ranges
        )

    frontier: list[NodeRef] = [NodeRef(root_version, 0, span)]
    while frontier:
        for ref in frontier:
            validate_node_range(ref.offset, ref.size)
        nodes = yield Frontier(tuple(frontier))
        result.round_trips += 1
        result.nodes_fetched += len(frontier)
        next_frontier: list[NodeRef] = []
        for ref, node in zip(frontier, nodes):
            if is_leaf_range(ref.offset, ref.size):
                if not isinstance(node, LeafNode):
                    raise MetadataNotFoundError(
                        f"expected a leaf at ({ref.offset}, {ref.size}), "
                        f"got {node!r}"
                    )
                result.leaves_visited += 1
                result.descriptors.append(
                    PageDescriptor(
                        page_index=ref.offset,
                        page_id=node.page_id,
                        provider_id=node.provider_id,
                        length=node.length,
                        provider_ids=node.provider_ids,
                    )
                )
                continue
            if not isinstance(node, InnerNode):
                raise MetadataNotFoundError(
                    f"expected an inner node at ({ref.offset}, {ref.size}), "
                    f"got {node!r}"
                )
            result.inner_visited += 1
            (left_offset, left_size), (right_offset, right_size) = children_of(
                ref.offset, ref.size
            )
            if node.left_version is not None and wanted(left_offset, left_size):
                next_frontier.append(
                    NodeRef(node.left_version, left_offset, left_size)
                )
            if node.right_version is not None and wanted(right_offset, right_size):
                next_frontier.append(
                    NodeRef(node.right_version, right_offset, right_size)
                )
        frontier = next_frontier
    return result


def drive_plan(
    plan: Generator,
    fetch: Callable[[NodeRef], TreeNode] | None = None,
    fetch_many: Callable[[list[NodeRef]], Sequence[TreeNode]] | None = None,
):
    """Run a sans-IO plan to completion with a synchronous fetch function.

    Works for any generator following the "yield a request, receive a value,
    return a result" protocol (both :func:`read_plan` and
    :func:`repro.metadata.build.border_plan`).  Requests may be single
    :class:`NodeRef` objects or :class:`Frontier` batches:

    * a :class:`Frontier` is resolved with ``fetch_many(refs)`` when given —
      one batched round trip per tree level — or by mapping ``fetch`` over
      its refs otherwise;
    * a bare :class:`NodeRef` is resolved with ``fetch`` (or a one-element
      ``fetch_many`` call).
    """
    if fetch is None and fetch_many is None:
        raise TypeError("drive_plan needs a fetch or fetch_many function")
    try:
        request = next(plan)
        while True:
            if isinstance(request, Frontier):
                refs = list(request.refs)
                if fetch_many is not None:
                    value = list(fetch_many(refs))
                else:
                    value = [fetch(ref) for ref in refs]
                if len(value) != len(refs):
                    raise MetadataNotFoundError(
                        f"frontier fetch returned {len(value)} nodes "
                        f"for {len(refs)} refs"
                    )
            elif fetch is not None:
                value = fetch(request)
            else:
                value = fetch_many([request])[0]
            request = plan.send(value)
    except StopIteration as stop:
        return stop.value
