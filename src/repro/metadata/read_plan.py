"""Sans-IO implementation of READ_META (paper, Algorithm 3).

:func:`read_plan` is a generator that descends the segment tree of a
snapshot to find the page descriptors covering a requested page range.  It
*yields* :class:`~repro.metadata.node.NodeRef` fetch requests and is *sent*
the corresponding :class:`TreeNode` values; it finally returns a
:class:`ReadPlanResult`.

Drivers:

* the threaded client calls :func:`drive_plan` with a fetch function that
  performs synchronous DHT lookups;
* the discrete-event simulator advances the same generator, charging network
  latency for each fetch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Generator

from ..errors import InvalidRangeError, MetadataNotFoundError
from ..util.ranges import intersects
from .geometry import children_of, is_leaf_range, validate_node_range
from .node import InnerNode, LeafNode, NodeRef, PageDescriptor, TreeNode


@dataclass
class ReadPlanResult:
    """Outcome of a metadata read: the page descriptors plus traversal stats."""

    descriptors: list[PageDescriptor] = field(default_factory=list)
    nodes_fetched: int = 0
    leaves_visited: int = 0
    inner_visited: int = 0

    def sorted_descriptors(self) -> list[PageDescriptor]:
        return sorted(self.descriptors, key=lambda d: d.page_index)


def read_plan(
    root_version: int,
    span: int,
    page_offset: int,
    page_count: int,
) -> Generator[NodeRef, TreeNode, ReadPlanResult]:
    """Plan the metadata traversal for reading ``page_count`` pages starting
    at ``page_offset`` from the snapshot whose root node has version
    ``root_version`` and spans ``span`` pages.

    The traversal explores a node only when its range intersects the
    requested range (Algorithm 3, lines 8–13).  Dangling child pointers
    (``None``) are never followed: a read bounded by the snapshot size never
    needs them.
    """
    result = ReadPlanResult()
    if page_count <= 0:
        return result
    if span <= 0:
        raise InvalidRangeError("cannot read from an empty snapshot")
    if page_offset < 0 or page_offset + page_count > span:
        raise InvalidRangeError(
            f"page range ({page_offset}, {page_count}) outside tree span {span}"
        )

    # Stack of (version, offset, size) node references still to explore.
    stack: list[NodeRef] = [NodeRef(root_version, 0, span)]
    while stack:
        ref = stack.pop()
        validate_node_range(ref.offset, ref.size)
        node = yield ref
        result.nodes_fetched += 1
        if is_leaf_range(ref.offset, ref.size):
            if not isinstance(node, LeafNode):
                raise MetadataNotFoundError(
                    f"expected a leaf at ({ref.offset}, {ref.size}), got {node!r}"
                )
            result.leaves_visited += 1
            result.descriptors.append(
                PageDescriptor(
                    page_index=ref.offset,
                    page_id=node.page_id,
                    provider_id=node.provider_id,
                    length=node.length,
                )
            )
            continue
        if not isinstance(node, InnerNode):
            raise MetadataNotFoundError(
                f"expected an inner node at ({ref.offset}, {ref.size}), got {node!r}"
            )
        result.inner_visited += 1
        (left_offset, left_size), (right_offset, right_size) = children_of(
            ref.offset, ref.size
        )
        if node.right_version is not None and intersects(
            right_offset, right_size, page_offset, page_count
        ):
            stack.append(NodeRef(node.right_version, right_offset, right_size))
        if node.left_version is not None and intersects(
            left_offset, left_size, page_offset, page_count
        ):
            stack.append(NodeRef(node.left_version, left_offset, left_size))
    return result


def drive_plan(
    plan: Generator[NodeRef, TreeNode, "ReadPlanResult"],
    fetch: Callable[[NodeRef], TreeNode],
):
    """Run a sans-IO plan to completion with a synchronous fetch function.

    Works for any generator following the "yield a request, receive a value,
    return a result" protocol (both :func:`read_plan` and
    :func:`repro.metadata.build.border_plan`).
    """
    try:
        request = next(plan)
        while True:
            value = fetch(request)
            request = plan.send(value)
    except StopIteration as stop:
        return stop.value
