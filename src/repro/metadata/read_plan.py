"""Sans-IO implementation of READ_META (paper, Algorithm 3) using the
*frontier protocol*.

:func:`read_plan` descends the segment tree of a snapshot to find the page
descriptors covering a requested page range.  Instead of yielding one
:class:`~repro.metadata.node.NodeRef` fetch at a time, it traverses the tree
level by level and *yields* :class:`~repro.metadata.node.Frontier` batches —
all the independent node fetches of one tree level — and is *sent* the list
of corresponding :class:`TreeNode` values (aligned with ``Frontier.refs``).
It finally returns a :class:`ReadPlanResult`.

The frontier protocol is what makes metadata access scale the way the paper
argues it should: tree nodes live in a DHT precisely so that concurrent
fetches can proceed in parallel, so a traversal needs only one *batched*
round trip per tree level — O(log pages) trips — rather than one synchronous
round trip per node.  ``ReadPlanResult.round_trips`` counts the frontiers so
callers can report the metadata round-trip cost of a READ.

:func:`multi_range_read_plan` generalizes the traversal to several disjoint
page ranges in a *single* tree walk (used for the boundary pages of
unaligned writes, which need old bytes from the first and last page of the
update without traversing the metadata in between).

Drivers:

* the threaded client calls :func:`drive_plan` with a batched ``fetch_many``
  function that performs one grouped DHT multi-get per frontier;
* the discrete-event simulator advances the same generator, charging one
  (parallel) network round trip per frontier.

``drive_plan`` also accepts a per-node ``fetch`` function and plans that
yield bare :class:`NodeRef` requests, so ad-hoc plans and reference models
keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Generator, Sequence

from ..errors import InvalidRangeError, MetadataNotFoundError
from ..util.ranges import intersects
from .geometry import children_of, is_leaf_range, validate_node_range
from .node import Frontier, InnerNode, LeafNode, NodeRef, PageDescriptor, TreeNode


@dataclass
class ReadPlanResult:
    """Outcome of a metadata read: the page descriptors plus traversal stats.

    ``nodes_fetched`` counts individual tree nodes (unchanged by batching);
    ``round_trips`` counts the frontiers the traversal yielded — the number
    of batched metadata round trips a driver needed.
    """

    descriptors: list[PageDescriptor] = field(default_factory=list)
    nodes_fetched: int = 0
    leaves_visited: int = 0
    inner_visited: int = 0
    round_trips: int = 0

    def sorted_descriptors(self) -> list[PageDescriptor]:
        return sorted(self.descriptors, key=lambda d: d.page_index)


def read_plan(
    root_version: int,
    span: int,
    page_offset: int,
    page_count: int,
) -> Generator[Frontier, Sequence[TreeNode], ReadPlanResult]:
    """Plan the metadata traversal for reading ``page_count`` pages starting
    at ``page_offset`` from the snapshot whose root node has version
    ``root_version`` and spans ``span`` pages.

    The traversal explores a node only when its range intersects the
    requested range (Algorithm 3, lines 8–13) and batches each tree level
    into one :class:`Frontier`.  Dangling child pointers (``None``) are never
    followed: a read bounded by the snapshot size never needs them.
    """
    if page_count > 0 and span <= 0:
        raise InvalidRangeError("cannot read from an empty snapshot")
    if page_count > 0 and (page_offset < 0 or page_offset + page_count > span):
        raise InvalidRangeError(
            f"page range ({page_offset}, {page_count}) outside tree span {span}"
        )
    result = yield from _frontier_walk(
        root_version, span, [(page_offset, page_count)]
    )
    return result


def multi_range_read_plan(
    root_version: int,
    span: int,
    ranges: Sequence[tuple[int, int]],
) -> Generator[Frontier, Sequence[TreeNode], ReadPlanResult]:
    """Plan one combined traversal covering several disjoint page ranges.

    Equivalent to running :func:`read_plan` once per range, but nodes shared
    between the ranges' root-to-leaf paths are fetched once and every tree
    level is still resolved in a single frontier, keeping the round-trip
    count at O(tree depth) regardless of how many ranges are requested.
    """
    active = [(offset, count) for offset, count in ranges if count > 0]
    if active:
        if span <= 0:
            raise InvalidRangeError("cannot read from an empty snapshot")
        for page_offset, page_count in active:
            if page_offset < 0 or page_offset + page_count > span:
                raise InvalidRangeError(
                    f"page range ({page_offset}, {page_count}) outside tree "
                    f"span {span}"
                )
    result = yield from _frontier_walk(root_version, span, active)
    return result


class FrontierWalker:
    """Incremental expansion core shared by the level-order generator and
    the event-loop pipelined traversal.

    Holds the pure decision logic of Algorithm 3 — which children of a
    fetched node the requested ranges still want, leaf-descriptor
    collection, traversal accounting — WITHOUT any notion of when fetches
    happen.  The generator (:func:`_frontier_walk`) expands one whole level
    at a time; the pipelined driver in
    :class:`~repro.core.async_store.AsyncBlobStore` expands each
    bucket-group of nodes the moment its fetch lands, while sibling groups
    of the same level are still in flight.  Both observe the same node set,
    because expansion depends only on the node's own content, never on the
    order siblings resolve in.
    """

    def __init__(
        self, root_version: int, span: int, ranges: Sequence[tuple[int, int]]
    ):
        self.result = ReadPlanResult()
        self._root_version = root_version
        self._span = span
        self._ranges = [(o, c) for o, c in ranges if c > 0]

    def root_refs(self) -> list[NodeRef]:
        """The traversal's first frontier: the root, or nothing to do."""
        if not self._ranges:
            return []
        return [NodeRef(self._root_version, 0, self._span)]

    def _wanted(self, offset: int, size: int) -> bool:
        return any(
            intersects(offset, size, page_offset, page_count)
            for page_offset, page_count in self._ranges
        )

    def note_fetched(self, count: int) -> None:
        """Account *count* nodes that arrived from a resolved fetch."""
        self.result.nodes_fetched += count

    def expand(self, ref: NodeRef, node: TreeNode) -> list[NodeRef]:
        """Consume one fetched node: collect its descriptor (leaf) or
        return the wanted, validated child refs (inner node)."""
        result = self.result
        if is_leaf_range(ref.offset, ref.size):
            if not isinstance(node, LeafNode):
                raise MetadataNotFoundError(
                    f"expected a leaf at ({ref.offset}, {ref.size}), "
                    f"got {node!r}"
                )
            result.leaves_visited += 1
            result.descriptors.append(
                PageDescriptor(
                    page_index=ref.offset,
                    page_id=node.page_id,
                    provider_id=node.provider_id,
                    length=node.length,
                    provider_ids=node.provider_ids,
                )
            )
            return []
        if not isinstance(node, InnerNode):
            raise MetadataNotFoundError(
                f"expected an inner node at ({ref.offset}, {ref.size}), "
                f"got {node!r}"
            )
        result.inner_visited += 1
        (left_offset, left_size), (right_offset, right_size) = children_of(
            ref.offset, ref.size
        )
        children: list[NodeRef] = []
        if node.left_version is not None and self._wanted(left_offset, left_size):
            children.append(NodeRef(node.left_version, left_offset, left_size))
        if node.right_version is not None and self._wanted(
            right_offset, right_size
        ):
            children.append(NodeRef(node.right_version, right_offset, right_size))
        return children

    def predicted_children(self, ref: NodeRef) -> list[NodeRef]:
        """Guess the child refs of an *unresolved* inner ref (speculation).

        The speculative-prefetch path (DESIGN.md §9) wants to fetch level
        N+1 before level N has resolved, so it cannot consult the parent's
        child-version pointers.  The geometry of the child spans is fully
        determined by ``ref`` alone, and inside the subtree of a single
        update every node carries the update's version — so predicting
        ``child.version == ref.version`` is exact whenever the requested
        window does not cross an update boundary at this level.  Wrong
        guesses surface as DHT misses and are simply discarded; the
        authoritative :meth:`expand` of the fetched parent always decides
        the real frontier.
        """
        if is_leaf_range(ref.offset, ref.size):
            return []
        (left_offset, left_size), (right_offset, right_size) = children_of(
            ref.offset, ref.size
        )
        children: list[NodeRef] = []
        if self._wanted(left_offset, left_size):
            children.append(NodeRef(ref.version, left_offset, left_size))
        if self._wanted(right_offset, right_size):
            children.append(NodeRef(ref.version, right_offset, right_size))
        return children


def plan_walker(
    root_version: int, span: int, ranges: Sequence[tuple[int, int]]
) -> FrontierWalker:
    """A validated :class:`FrontierWalker` for *ranges* — the entry point of
    the pipelined traversal, enforcing exactly the range checks
    :func:`multi_range_read_plan` applies before its first frontier."""
    active = [(offset, count) for offset, count in ranges if count > 0]
    if active:
        if span <= 0:
            raise InvalidRangeError("cannot read from an empty snapshot")
        for page_offset, page_count in active:
            if page_offset < 0 or page_offset + page_count > span:
                raise InvalidRangeError(
                    f"page range ({page_offset}, {page_count}) outside tree "
                    f"span {span}"
                )
    return FrontierWalker(root_version, span, active)


def _frontier_walk(
    root_version: int,
    span: int,
    ranges: list[tuple[int, int]],
) -> Generator[Frontier, Sequence[TreeNode], ReadPlanResult]:
    """Level-order traversal shared by the single- and multi-range plans."""
    walker = FrontierWalker(root_version, span, ranges)
    frontier = walker.root_refs()
    while frontier:
        for ref in frontier:
            validate_node_range(ref.offset, ref.size)
        nodes = yield Frontier(tuple(frontier))
        walker.result.round_trips += 1
        walker.note_fetched(len(frontier))
        next_frontier: list[NodeRef] = []
        for ref, node in zip(frontier, nodes):
            next_frontier.extend(walker.expand(ref, node))
        frontier = next_frontier
    return walker.result


def drive_plan(
    plan: Generator,
    fetch: Callable[[NodeRef], TreeNode] | None = None,
    fetch_many: Callable[[list[NodeRef]], Sequence[TreeNode]] | None = None,
):
    """Run a sans-IO plan to completion with a synchronous fetch function.

    Works for any generator following the "yield a request, receive a value,
    return a result" protocol (both :func:`read_plan` and
    :func:`repro.metadata.build.border_plan`).  Requests may be single
    :class:`NodeRef` objects or :class:`Frontier` batches:

    * a :class:`Frontier` is resolved with ``fetch_many(refs)`` when given —
      one batched round trip per tree level — or by mapping ``fetch`` over
      its refs otherwise;
    * a bare :class:`NodeRef` is resolved with ``fetch`` (or a one-element
      ``fetch_many`` call).
    """
    if fetch is None and fetch_many is None:
        raise TypeError("drive_plan needs a fetch or fetch_many function")
    try:
        request = next(plan)
        while True:
            if isinstance(request, Frontier):
                refs = list(request.refs)
                if fetch_many is not None:
                    value = list(fetch_many(refs))
                else:
                    value = [fetch(ref) for ref in refs]
                if len(value) != len(refs):
                    raise MetadataNotFoundError(
                        f"frontier fetch returned {len(value)} nodes "
                        f"for {len(refs)} refs"
                    )
            elif fetch is not None:
                value = fetch(request)
            else:
                value = fetch_many([request])[0]
            request = plan.send(value)
    except StopIteration as stop:
        return stop.value


async def adrive_plan(plan: Generator, fetch_many):
    """Awaitable :func:`drive_plan` over a batched async ``fetch_many``.

    Resolves the plan strictly level by level (one awaited fetch per
    frontier) — the traversal order, node set and round-trip accounting are
    identical to the sync driver's, which is what the sync bridge relies on
    for bit-identical trip counters.  The pipelined event-loop traversal
    lives in the client (it needs placement grouping), not here.
    """
    try:
        request = next(plan)
        while True:
            if isinstance(request, Frontier):
                refs = list(request.refs)
                value = list(await fetch_many(refs))
                if len(value) != len(refs):
                    raise MetadataNotFoundError(
                        f"frontier fetch returned {len(value)} nodes "
                        f"for {len(refs)} refs"
                    )
            else:
                value = (await fetch_many([request]))[0]
            request = plan.send(value)
    except StopIteration as stop:
        return stop.value
