"""Segment-tree geometry: spans, parents, children, node enumeration.

The tree covering a snapshot with ``p`` pages spans ``next_power_of_two(p)``
pages.  Node ranges are always aligned: a node covering ``(offset, size)``
satisfies ``offset % size == 0`` and ``size`` is a power of two.  Leaves have
``size == 1`` (one page).
"""

from __future__ import annotations

from ..errors import InvalidRangeError
from ..util.ranges import ceil_div, intersects, next_power_of_two


def pages_for_size(size_bytes: int, page_size: int) -> int:
    """Number of pages needed to hold ``size_bytes`` bytes."""
    if size_bytes < 0:
        raise InvalidRangeError(f"negative blob size: {size_bytes}")
    return ceil_div(size_bytes, page_size)


def span_for_pages(num_pages: int) -> int:
    """Span (in pages) of the tree covering a snapshot with ``num_pages`` pages.

    An empty snapshot has no tree; by convention its span is 0.
    """
    if num_pages <= 0:
        return 0
    return next_power_of_two(num_pages)


def validate_node_range(offset: int, size: int) -> None:
    """Raise :class:`InvalidRangeError` unless (offset, size) is a legal node range."""
    if size <= 0 or (size & (size - 1)) != 0:
        raise InvalidRangeError(f"node size must be a positive power of two: {size}")
    if offset < 0 or offset % size != 0:
        raise InvalidRangeError(
            "node offset must be a non-negative multiple of its size: "
            f"({offset}, {size})"
        )


def is_leaf_range(offset: int, size: int) -> bool:
    """A node is a leaf when it covers exactly one page."""
    return size == 1


def children_of(offset: int, size: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """Return the ranges of the left and right children of an inner node."""
    validate_node_range(offset, size)
    if size == 1:
        raise InvalidRangeError("a leaf node has no children")
    half = size // 2
    return (offset, half), (offset + half, half)


def parent_of(offset: int, size: int) -> tuple[int, int, str]:
    """Return the parent range of a node and whether the node is its LEFT or
    RIGHT child.

    Mirrors lines 13–19 of the paper's Algorithm 4: a node at ``offset`` with
    ``offset % (2 * size) == 0`` is the left child of ``(offset, 2 * size)``,
    otherwise the right child of ``(offset - size, 2 * size)``.
    """
    validate_node_range(offset, size)
    if offset % (2 * size) == 0:
        return offset, 2 * size, "LEFT"
    return offset - size, 2 * size, "RIGHT"


def node_ranges_covering(
    update_offset: int, update_size: int, span: int
) -> list[tuple[int, int]]:
    """Enumerate every node range of a tree of ``span`` pages that intersects
    the update page range ``(update_offset, update_size)``.

    These are exactly the nodes a WRITE/APPEND creates (its new, partially
    shared tree).  The list is ordered bottom-up (leaves first, root last),
    which is the order BUILD_META materializes them.
    """
    if span <= 0 or update_size <= 0:
        return []
    ranges: list[tuple[int, int]] = []
    size = 1
    while size <= span:
        first = (update_offset // size) * size
        last = ((update_offset + update_size - 1) // size) * size
        offset = first
        while offset <= last and offset < span:
            if intersects(offset, size, update_offset, update_size):
                ranges.append((offset, size))
            offset += size
        size *= 2
    return ranges


def tree_depth(span: int) -> int:
    """Number of levels of a tree spanning ``span`` pages (0 for an empty tree)."""
    if span <= 0:
        return 0
    return span.bit_length()  # span is a power of two: log2(span) + 1 levels
