"""Client-side version leases: serve GET_RECENT and READ preconditions
without a version-manager round trip.

After the PR 3 node cache, a warm repeated READ fetched zero metadata nodes
from the DHT but still paid one version-manager RPC (publication check +
size).  This module removes that last fixed cost the same way the node
cache removed the DHT traffic, split into two regimes by mutability:

* **Immutable facts.**  A published snapshot's size never changes and a
  blob's :class:`~repro.version.records.BlobRecord` is frozen at creation
  (total-order versioning again), so ``(blob, version) -> size`` and
  ``blob -> record`` are cached forever, LRU-bounded, with no invalidation
  protocol at all — exactly like metadata tree nodes.
* **Recency leases.**  ``GET_RECENT`` is the one mutable answer.  A
  :class:`VersionLease` caches ``(version, size)`` together with the blob's
  publication *epoch* and is kept coherent two ways: the version manager
  pushes a fresh lease to every subscribed cache on publication
  (:meth:`~repro.version.version_manager.VersionManager.subscribe_publications`),
  and a TTL (``BlobSeerConfig.vm_lease_ttl``) bounds staleness for
  deployments where the push notification can be lost.  Epochs make
  fill/notify races safe: a cache only ever replaces a lease with one of a
  strictly newer epoch, so a slow fill can never overwrite a pushed update.
  (Fragmented ARES serves reads from cached configuration state the same
  way — see PAPERS.md.)

The cache is shared per cluster (mirroring the PR 3 node cache: co-located
clients warm one another) and budgeted by ``BlobSeerConfig.vm_lease_entries``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from ..version.records import BlobRecord, RecencyLease


@dataclass(frozen=True)
class VersionLease:
    """One blob's leased GET_RECENT answer.

    ``epoch`` is the blob's published watermark when the lease was taken;
    ``acquired_at`` is the cache clock's timestamp, compared against the
    TTL on every hit.
    """

    blob_id: str
    version: int
    size: int
    epoch: int
    acquired_at: float

    def fresh(self, now: float, ttl: float) -> bool:
        """True while the lease is within its TTL.

        A clock that moved backwards (the simulator's virtual clock resets
        between measurement passes) never expires a lease — only forward
        age does.
        """
        return now - self.acquired_at <= ttl


@dataclass(frozen=True)
class LeaseStats:
    """Lifetime counters of one :class:`LeaseCache`."""

    #: GET_RECENT answers served from a live lease (no VM round trip).
    hits: int = 0
    #: Lease lookups that had to pay a version-manager round trip.
    misses: int = 0
    #: Publish notifications applied (each renews or installs a lease).
    renewals: int = 0
    #: Entries dropped to stay within the ``max_entries`` budget.
    evictions: int = 0
    #: Current number of recency leases held.
    leases: int = 0
    #: Current number of immutable facts held (records + published sizes).
    facts: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LeaseCache:
    """Shared, LRU-bounded cache of version leases and immutable VM facts.

    Parameters
    ----------
    service:
        The version-manager front-end to fall back to on a miss and to
        subscribe to for publish notifications.  Anything exposing
        ``recent_lease``, ``check_read``, ``get_record`` and
        ``subscribe_publications`` works (both the raw
        :class:`~repro.version.version_manager.VersionManager` and the
        :class:`~repro.vm.service.VersionManagerService`).
    ttl:
        Maximum age of a recency lease before a hit must revalidate.  The
        push notifications keep leases current in-process; the TTL is the
        bound on staleness when a notification is lost.
    max_entries:
        Budget for the recency-lease map and for the fact map (each).
    clock:
        Time source (``time.monotonic`` by default; the simulator injects
        its virtual clock).

    Every public lookup returns ``(value, round_trips)`` where
    ``round_trips`` is 0 on a lease/fact hit and 1 when the version manager
    had to be asked — the unit the ``vm_round_trips`` stats are counted in.
    """

    def __init__(
        self,
        service,
        ttl: float = 5.0,
        max_entries: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._service = service
        self._ttl = ttl
        self._max_entries = max(1, int(max_entries))
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: OrderedDict[str, VersionLease] = OrderedDict()
        self._facts: OrderedDict[tuple, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._renewals = 0
        self._evictions = 0
        service.subscribe_publications(self._on_publish)

    # ----------------------------------------------------------- recency lease
    def recent(self, blob_id: str) -> tuple[int, int]:
        """Leased GET_RECENT: ``(version, vm_round_trips)``."""
        lease, trips = self.recent_lease(blob_id)
        return lease.version, trips

    def recent_lease(self, blob_id: str) -> tuple[VersionLease, int]:
        """The blob's current lease, revalidating on miss/expiry."""
        now = self._clock()
        with self._lock:
            lease = self._leases.get(blob_id)
            if lease is not None and lease.fresh(now, self._ttl):
                self._leases.move_to_end(blob_id)
                self._hits += 1
                return lease, 0
            self._misses += 1
        snapshot = self._service.recent_lease(blob_id)
        lease = self._install(snapshot)
        return lease, 1

    def _install(self, snapshot: RecencyLease) -> VersionLease:
        """Store a VM answer unless a strictly newer epoch already landed."""
        lease = VersionLease(
            blob_id=snapshot.blob_id,
            version=snapshot.version,
            size=snapshot.size,
            epoch=snapshot.epoch,
            acquired_at=self._clock(),
        )
        with self._lock:
            existing = self._leases.get(snapshot.blob_id)
            if existing is not None and existing.epoch > snapshot.epoch:
                # A publish notification (or a concurrent fill) beat us to
                # it; its answer is newer than ours.
                return existing
            self._leases[snapshot.blob_id] = lease
            self._leases.move_to_end(snapshot.blob_id)
            self._evict_locked(self._leases)
            # A recency answer is also an immutable fact about that version.
            self._store_fact_locked(
                ("size", snapshot.blob_id, snapshot.version), snapshot.size
            )
        return lease

    def _on_publish(self, snapshot: RecencyLease) -> None:
        """Publish notification: renew (or install) the blob's lease."""
        with self._lock:
            existing = self._leases.get(snapshot.blob_id)
            if existing is not None and existing.epoch >= snapshot.epoch:
                return  # stale or duplicate delivery: nothing applied
            self._renewals += 1
            self._leases[snapshot.blob_id] = VersionLease(
                blob_id=snapshot.blob_id,
                version=snapshot.version,
                size=snapshot.size,
                epoch=snapshot.epoch,
                acquired_at=self._clock(),
            )
            self._leases.move_to_end(snapshot.blob_id)
            self._evict_locked(self._leases)
            self._store_fact_locked(
                ("size", snapshot.blob_id, snapshot.version), snapshot.size
            )

    # -------------------------------------------------------- immutable facts
    def published_size(self, blob_id: str, version: int) -> tuple[int, int]:
        """Size of a published snapshot: ``(size, vm_round_trips)``.

        Raises :class:`~repro.errors.VersionNotPublishedError` (from the
        version manager) when the version is not published; the *negative*
        answer is never cached — the version may be published later.
        """
        key = ("size", blob_id, version)
        hit = self._fact(key)
        if hit is not None:
            return hit, 0
        size = self._service.check_read(blob_id, version)
        with self._lock:
            self._store_fact_locked(key, size)
        return size, 1

    def record(self, blob_id: str) -> tuple[BlobRecord, int]:
        """The blob's immutable record: ``(record, vm_round_trips)``."""
        key = ("record", blob_id)
        hit = self._fact(key)
        if hit is not None:
            return hit, 0
        record = self._service.get_record(blob_id)
        with self._lock:
            self._store_fact_locked(key, record)
        return record, 1

    def _fact(self, key: tuple) -> object | None:
        with self._lock:
            value = self._facts.get(key)
            if value is None:
                self._misses += 1
                return None
            self._facts.move_to_end(key)
            self._hits += 1
            return value

    def _store_fact_locked(self, key: tuple, value: object) -> None:
        if key not in self._facts:
            self._facts[key] = value
        self._facts.move_to_end(key)
        self._evict_locked(self._facts)

    def _evict_locked(self, mapping: OrderedDict) -> None:
        while len(mapping) > self._max_entries:
            mapping.popitem(last=False)
            self._evictions += 1

    # ---------------------------------------------------------- introspection
    def clear(self) -> None:
        """Drop every lease and fact (cold-start measurements)."""
        with self._lock:
            self._leases.clear()
            self._facts.clear()

    def stats(self) -> LeaseStats:
        with self._lock:
            return LeaseStats(
                hits=self._hits,
                misses=self._misses,
                renewals=self._renewals,
                evictions=self._evictions,
                leases=len(self._leases),
                facts=len(self._facts),
            )

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def ttl(self) -> float:
        return self._ttl

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"LeaseCache(leases={stats.leases}, facts={stats.facts}, "
            f"hit_rate={stats.hit_rate:.2f}, ttl={self._ttl})"
        )
