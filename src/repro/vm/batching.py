"""Group-commit coalescing for version-manager traffic.

The version manager is the paper's single mandatory serialization point
(Section 4.3).  PRs 1-3 removed O(n) round trips from the metadata and data
paths; what remains is one lock acquisition (one RPC, in a networked
deployment) per ``register_update`` and per ``complete_update``.  Under N
concurrent writers that is 2N serialized lock rounds — the classic
group-commit situation, and the fix is the classic group-commit protocol
(ForkBase batches version bookkeeping the same way, see PAPERS.md):

* a caller enqueues its request and becomes the **leader** if nobody is
  currently draining; everybody else is a **follower** that just waits;
* the leader swaps the whole pending queue and executes it as ONE batch
  (``multi_register`` / ``multi_complete`` — one lock acquisition per blob
  per batch on the version-manager side), distributes per-request results,
  then loops to pick up the requests that piled up meanwhile;
* when the queue is empty the leader retires, leaving the window idle.

N concurrent submissions therefore cost O(batches) lock rounds, not O(N),
while per-blob ticket order is preserved: the pending queue is
append-ordered under the window lock and batches execute it in order.

Two thin subclasses name the two traffic classes of the ISSUE:
:class:`TicketWindow` (registrations → tickets) and :class:`PublishQueue`
(completion/abort notices → publication advances).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..version.records import CompletionNotice, RegisterRequest, UpdateTicket


@dataclass(frozen=True)
class BatchStats:
    """Lifetime counters of one group-commit window."""

    #: Individual requests submitted through the window.
    requests: int = 0
    #: Batches actually executed — the number of serialized lock rounds the
    #: backend paid.  ``requests - batches`` is the number of lock rounds
    #: group commit saved.
    batches: int = 0
    #: Size of the largest batch executed so far.
    max_batch: int = 0
    #: Requests currently queued behind the leader (instantaneous).
    pending: int = 0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class _Waiter:
    """One submitted request waiting for its batch to execute."""

    __slots__ = ("request", "done", "result")

    def __init__(self, request: object):
        self.request = request
        self.done = threading.Event()
        self.result: object = None


class _GroupCommit:
    """Leader/follower batching around one ``execute(batch) -> results``.

    ``execute`` receives the requests of one batch in submission order and
    must return a result list aligned with it; per-request failures travel
    as exception *instances* in that list (raised at the submitter), so one
    bad request never poisons its batchmates.  If ``execute`` itself raises,
    the whole batch fails with that error.
    """

    def __init__(self, execute: Callable[[list], list]):
        self._execute = execute
        self._lock = threading.Lock()
        self._pending: list[_Waiter] = []
        self._draining = False
        self._requests = 0
        self._batches = 0
        self._max_batch = 0

    def submit(self, request: object) -> object:
        """Enqueue ``request`` and return its result (or raise its error).

        The calling thread either leads the drain (executing its own and
        any piled-up requests) or blocks until a leader serves it.
        """
        waiter = _Waiter(request)
        with self._lock:
            self._pending.append(waiter)
            lead = not self._draining
            if lead:
                self._draining = True
        if lead:
            self._drain()
        else:
            waiter.done.wait()
        if isinstance(waiter.result, BaseException):
            raise waiter.result
        return waiter.result

    def _drain(self) -> None:
        while True:
            with self._lock:
                batch = self._pending
                if not batch:
                    self._draining = False
                    return
                self._pending = []
                self._requests += len(batch)
                self._batches += 1
                self._max_batch = max(self._max_batch, len(batch))
            try:
                results = self._execute([waiter.request for waiter in batch])
            except BaseException as error:  # noqa: BLE001 - delivered per waiter
                results = [error] * len(batch)
            for waiter, result in zip(batch, results):
                waiter.result = result
                waiter.done.set()

    def submit_batch(self, requests: Sequence) -> list:
        """Execute an already-assembled batch as one drain round.

        For callers that did their own coalescing (the simulator's ticket
        office collects requests in virtual time): counted exactly like a
        leader-drained batch, returning the per-request results — exception
        instances included — without raising.
        """
        requests = list(requests)
        if not requests:
            return []
        with self._lock:
            self._requests += len(requests)
            self._batches += 1
            self._max_batch = max(self._max_batch, len(requests))
        return self._execute(requests)

    def stats(self) -> BatchStats:
        with self._lock:
            return BatchStats(
                requests=self._requests,
                batches=self._batches,
                max_batch=self._max_batch,
                pending=len(self._pending),
            )


class TicketWindow(_GroupCommit):
    """Coalesces concurrent ``register_update`` calls into ``multi_register``
    batches, preserving per-blob ticket order (submission order)."""

    def __init__(
        self,
        multi_register: Callable[
            [Sequence[RegisterRequest]], list[UpdateTicket | BaseException]
        ],
    ):
        super().__init__(multi_register)

    def register(self, request: RegisterRequest) -> UpdateTicket:
        """Submit one registration; returns its ticket or raises its error."""
        return self.submit(request)


class PublishQueue(_GroupCommit):
    """Coalesces completion/abort notices into ``multi_complete`` batches.

    Notices drain strictly in submission order, so publication advances once
    per batch instead of once per notification — and an ``abort`` filed
    between two completions lands exactly where it was filed (the
    "mid-batch abort" case of the tests).
    """

    def __init__(
        self,
        multi_complete: Callable[
            [Sequence[CompletionNotice]], list[None | BaseException]
        ],
    ):
        super().__init__(multi_complete)

    def notify(self, notice: CompletionNotice) -> None:
        """Submit one notice; raises the per-notice error, if any."""
        self.submit(notice)
