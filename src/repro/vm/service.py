"""The version-manager service front-end: batched, pipelined RPC semantics.

:class:`VersionManagerService` wraps the core
:class:`~repro.version.version_manager.VersionManager` state machine with
the client-facing service behaviour of this PR:

* ``register_update`` goes through a :class:`~repro.vm.batching.TicketWindow`
  — concurrent registrations coalesce into one ``multi_register`` batch per
  drain round (one lock acquisition per blob per batch);
* ``complete_update`` / ``abort_update`` go through a
  :class:`~repro.vm.batching.PublishQueue` — notifications drain in order
  batches of ``multi_complete``, advancing publication once per blob per
  batch;
* every call is counted in :class:`VMStats`, so benchmarks and tests can
  see both sides of the amortization: per-operation ``vm_round_trips`` on
  the client and requests-vs-batches on the service.

The service exposes the complete VersionManager API (queries forward
unchanged), so a :class:`~repro.core.cluster.Cluster` can hand it out as
``cluster.version_manager`` and every existing caller — the threaded
client, the simulator, the tools — keeps working.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass

from ..version.records import (
    BlobRecord,
    CompletionNotice,
    RecencyLease,
    RegisterRequest,
    UpdateTicket,
)
from ..version.version_manager import PublishListener, VersionManager
from .batching import BatchStats, PublishQueue, TicketWindow


@dataclass(frozen=True)
class VMStats:
    """Service-side counters of version-manager traffic.

    ``register_requests`` vs ``register_batches`` (and the ``publish_*``
    pair) quantify the group-commit amortization: N concurrent appends that
    needed N ticket-issuance lock rounds before this PR now show
    ``register_batches < register_requests``.  The query counters cover the
    read-side calls the client leases exist to avoid.
    """

    #: Ticket registrations requested by clients.
    register_requests: int = 0
    #: Group-committed registration batches sent to the core VM.
    register_batches: int = 0
    #: Largest registration batch group-committed so far.
    register_max_batch: int = 0
    #: Completion/abort notices requested by clients.
    publish_requests: int = 0
    #: Group-committed completion batches sent to the core VM.
    publish_batches: int = 0
    #: Largest completion batch group-committed so far.
    publish_max_batch: int = 0
    #: GET_RECENT queries answered by the service.
    recent_calls: int = 0
    #: Combined IS_PUBLISHED+GET_SIZE read preconditions answered.
    check_read_calls: int = 0
    #: Batched check_read condition acquisitions (one per blob per batch).
    check_read_batches: int = 0
    #: GET_SIZE queries answered by the service.
    size_calls: int = 0
    #: Blob-record fetches answered by the service.
    record_calls: int = 0
    #: Blocking SYNC waits served by the service.
    sync_calls: int = 0

    @property
    def lock_rounds_saved(self) -> int:
        """Serialized VM rounds group commit removed."""
        return (self.register_requests - self.register_batches) + (
            self.publish_requests - self.publish_batches
        )


class VersionManagerService:
    """Group-commit + lease-aware front-end over a :class:`VersionManager`."""

    def __init__(self, core: VersionManager):
        self.core = core
        self._window = TicketWindow(core.multi_register)
        self._queue = PublishQueue(core.multi_complete)
        self._counter_lock = threading.Lock()
        self._recent_calls = 0
        self._check_read_calls = 0
        self._check_read_batches = 0
        self._size_calls = 0
        self._record_calls = 0
        self._sync_calls = 0

    # ------------------------------------------------------------- lifecycle
    def create_blob(self, page_size: int | None = None) -> BlobRecord:
        return self.core.create_blob(page_size)

    def branch(self, blob_id: str, version: int) -> BlobRecord:
        return self.core.branch(blob_id, version)

    def blob_ids(self) -> list[str]:
        return self.core.blob_ids()

    # ------------------------------------------------------------ update path
    def register_update(
        self,
        blob_id: str,
        size: int,
        offset: int | None = None,
        is_append: bool = False,
    ) -> UpdateTicket:
        """Assign a version through the group-commit ticket window."""
        return self._window.register(
            RegisterRequest(
                blob_id=blob_id, size=size, offset=offset, is_append=is_append
            )
        )

    def multi_register(
        self, requests: Sequence[RegisterRequest]
    ) -> list[UpdateTicket | BaseException]:
        """Pre-batched registration (the simulator's ticket office uses
        this); counted as one window batch."""
        return self._window.submit_batch(requests)

    def complete_update(self, blob_id: str, version: int) -> None:
        """Notify success through the pipelined publish queue."""
        self._queue.notify(CompletionNotice(blob_id=blob_id, version=version))

    def abort_update(self, blob_id: str, version: int, reason: str = "") -> None:
        """Notify failure through the same ordered queue, so an abort lands
        exactly where it was filed relative to concurrent completions."""
        self._queue.notify(
            CompletionNotice(
                blob_id=blob_id, version=version, kind="abort", reason=reason
            )
        )

    def multi_complete(
        self, notices: Sequence[CompletionNotice]
    ) -> list[None | BaseException]:
        """Pre-batched completion notices; counted as one queue batch."""
        return self._queue.submit_batch(notices)

    # --------------------------------------------------------------- queries
    def get_record(self, blob_id: str) -> BlobRecord:
        with self._counter_lock:
            self._record_calls += 1
        return self.core.get_record(blob_id)

    def get_recent(self, blob_id: str) -> int:
        with self._counter_lock:
            self._recent_calls += 1
        return self.core.get_recent(blob_id)

    def recent_lease(self, blob_id: str) -> RecencyLease:
        with self._counter_lock:
            self._recent_calls += 1
        return self.core.recent_lease(blob_id)

    def is_published(self, blob_id: str, version: int) -> bool:
        return self.core.is_published(blob_id, version)

    def get_size(self, blob_id: str, version: int) -> int:
        with self._counter_lock:
            self._size_calls += 1
        return self.core.get_size(blob_id, version)

    def check_read(self, blob_id: str, version: int) -> int:
        with self._counter_lock:
            self._check_read_calls += 1
            self._check_read_batches += 1
        return self.core.check_read(blob_id, version)

    def multi_check_read(
        self, queries: Sequence[tuple[str, int]]
    ) -> list[int | BaseException]:
        """Batched publication checks — one VM round for many snapshots."""
        with self._counter_lock:
            self._check_read_calls += len(queries)
            self._check_read_batches += 1
        return self.core.multi_check_read(queries)

    def sync(self, blob_id: str, version: int, timeout: float | None = None) -> None:
        with self._counter_lock:
            self._sync_calls += 1
        self.core.sync(blob_id, version, timeout)

    def poll_sync(self, blob_id: str, version: int) -> bool:
        """Non-blocking SYNC probe (see
        :meth:`repro.version.version_manager.VersionManager.poll_sync`);
        event-loop clients poll between publish notifications instead of
        parking a thread, so this does not count as a blocking sync call."""
        return self.core.poll_sync(blob_id, version)

    def inflight_count(self, blob_id: str) -> int:
        return self.core.inflight_count(blob_id)

    # --------------------------------------------------------- notifications
    def subscribe_publications(self, listener: PublishListener) -> None:
        self.core.subscribe_publications(listener)

    def unsubscribe_publications(self, listener: PublishListener) -> None:
        self.core.unsubscribe_publications(listener)

    # ---------------------------------------------------------- introspection
    def ticket_window_stats(self) -> BatchStats:
        return self._window.stats()

    def publish_queue_stats(self) -> BatchStats:
        return self._queue.stats()

    def vm_stats(self) -> VMStats:
        window = self._window.stats()
        queue = self._queue.stats()
        with self._counter_lock:
            return VMStats(
                register_requests=window.requests,
                register_batches=window.batches,
                register_max_batch=window.max_batch,
                publish_requests=queue.requests,
                publish_batches=queue.batches,
                publish_max_batch=queue.max_batch,
                recent_calls=self._recent_calls,
                check_read_calls=self._check_read_calls,
                check_read_batches=self._check_read_batches,
                size_calls=self._size_calls,
                record_calls=self._record_calls,
                sync_calls=self._sync_calls,
            )
