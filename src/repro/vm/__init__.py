"""The version-manager service subsystem: group-commit ticketing, pipelined
publication and client version leases.

The version manager is the only mandatory serialization point of the design
(paper, Section 4.3).  This package keeps the total order it provides while
taking it off the hot path:

* :mod:`repro.vm.batching` — :class:`TicketWindow` and :class:`PublishQueue`
  coalesce concurrent ``register_update`` / ``complete_update`` traffic into
  ``multi_register`` / ``multi_complete`` batches (group commit);
* :mod:`repro.vm.service` — :class:`VersionManagerService`, the front-end a
  :class:`~repro.core.cluster.Cluster` hands out as ``version_manager``,
  with :class:`VMStats` counting requests vs batches;
* :mod:`repro.vm.lease` — :class:`LeaseCache` / :class:`VersionLease`,
  client-side caching of GET_RECENT (publish-invalidated, TTL-bounded) and
  of immutable facts (blob records, published snapshot sizes), so warm
  repeated reads issue zero version-manager round trips.
"""

from .batching import BatchStats, PublishQueue, TicketWindow
from .lease import LeaseCache, LeaseStats, VersionLease
from .service import VersionManagerService, VMStats

__all__ = [
    "BatchStats",
    "LeaseCache",
    "LeaseStats",
    "PublishQueue",
    "TicketWindow",
    "VersionLease",
    "VersionManagerService",
    "VMStats",
]
