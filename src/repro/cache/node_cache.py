"""A sharded, thread-safe, LRU-bounded cache for immutable metadata nodes.

The paper's total-order versioning makes every published tree node
*immutable*: a ``(blob, version, offset, size)`` key is written exactly once
and never changes afterwards (Section 4.1).  That is what makes aggressive
client-side caching safe — a cached node can never be stale — and what this
module turns into an architectural layer instead of the ad-hoc per-client
``dict`` it used to be:

* **Sharded.**  Keys are striped over ``shards`` independent segments, each
  with its own lock, ordered map and counters, so concurrent readers on
  different shards never contend — the same striping idea the DHT uses for
  its buckets.  The batched :meth:`NodeCache.get_many` /
  :meth:`NodeCache.put_many` take each touched shard's lock once per batch,
  mirroring the DHT multi-op discipline.
* **LRU-bounded.**  Every shard enforces its slice of the global entry and
  byte budgets; inserting past a budget evicts the shard's least recently
  used entries.  Budgets are split evenly, so the cache as a whole never
  exceeds ``max_entries`` entries or ``max_bytes`` estimated bytes.
* **Shared.**  :func:`shared_node_cache` returns the process-wide default
  instance that every :class:`~repro.core.cluster.Cluster` (with default
  cache configuration) hands to its clients, so all ``BlobStore`` instances
  of a process warm one another.  Keys are namespaced per cluster (see
  :attr:`repro.core.cluster.Cluster.cache_namespace`) so two in-process
  deployments can never serve each other's nodes.

The sharding/budget/stats skeleton is the shared
:class:`~repro.cache.sharded_lru.ShardedLRUCache` core (the page cache of
:mod:`repro.cache.page_cache` is the other instantiation); this module adds
only the node weight function, the frontier helpers and the process-wide
default instance.
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Hashable, Sequence

from ..config import (
    DEFAULT_METADATA_CACHE_BYTES,
    DEFAULT_METADATA_CACHE_ENTRIES,
    DEFAULT_METADATA_CACHE_SHARDS,
)
from ..metadata.node import LeafNode, NodeKey
from .sharded_lru import (
    ENTRY_OVERHEAD,
    MIN_SHARD_BYTES,
    CacheStats,
    CacheTally,
    ShardedLRUCache,
    key_weight,
)

__all__ = [
    "ENTRY_OVERHEAD",
    "MIN_SHARD_BYTES",
    "CacheStats",
    "CacheTally",
    "NodeCache",
    "complete_frontier",
    "next_cache_namespace",
    "node_weight",
    "reset_shared_node_cache",
    "set_shared_node_cache",
    "shared_node_cache",
    "split_frontier",
]

#: Estimated footprint of an inner node (two optional child versions).
INNER_NODE_WEIGHT = 48
#: Estimated fixed footprint of a leaf node, excluding its id strings.
LEAF_NODE_WEIGHT = 72


def node_weight(key: Hashable, node: object) -> int:
    """Deterministic byte-footprint estimate of one cache entry."""
    weight = ENTRY_OVERHEAD + _key_weight(key)
    if isinstance(node, LeafNode):
        weight += LEAF_NODE_WEIGHT + len(node.page_id) + len(node.provider_id)
    else:
        weight += INNER_NODE_WEIGHT
    return weight


def _key_weight(key: Hashable) -> int:
    if isinstance(key, NodeKey):
        return len(key.blob_id) + 24
    if isinstance(key, tuple):
        return sum(_key_weight(part) for part in key)
    return key_weight(key)


class NodeCache(ShardedLRUCache):
    """Process-wide sharded LRU cache for immutable metadata tree nodes.

    Parameters
    ----------
    max_entries:
        Maximum number of cached nodes across all shards.
    max_bytes:
        Maximum estimated footprint in bytes across all shards (see
        :func:`node_weight`).
    shards:
        Number of lock-striped segments.  Budgets are split evenly across
        shards, so each shard holds at most ``max_entries // shards``
        entries — the cache as a whole never exceeds the global budgets.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_METADATA_CACHE_ENTRIES,
        max_bytes: int = DEFAULT_METADATA_CACHE_BYTES,
        shards: int = DEFAULT_METADATA_CACHE_SHARDS,
    ):
        super().__init__(
            max_entries=max_entries,
            max_bytes=max_bytes,
            shards=shards,
            weight_of=node_weight,
        )


def split_frontier(
    cache: NodeCache | None,
    cache_keys: Sequence[Hashable],
    tally: CacheTally | None = None,
) -> tuple[list[object | None], list[int]]:
    """Serve one frontier of lookups from ``cache``.

    Returns ``(values, miss_indices)``: ``values`` aligned with
    ``cache_keys`` (None for misses), ``miss_indices`` the positions the
    caller must fetch from the DHT.  Hits are tallied.  With ``cache=None``
    everything is a miss — the caller's uncached path needs no branching.
    """
    if cache is None:
        return [None] * len(cache_keys), list(range(len(cache_keys)))
    values = cache.get_many(cache_keys)
    miss_indices = [index for index, value in enumerate(values) if value is None]
    if tally is not None:
        tally.hits += len(cache_keys) - len(miss_indices)
    return values, miss_indices


def complete_frontier(
    cache: NodeCache | None,
    cache_keys: Sequence[Hashable],
    miss_indices: Sequence[int],
    fetched: Sequence[object],
    values: list[object | None],
    tally: CacheTally | None = None,
) -> None:
    """Fold DHT-fetched nodes back into a :func:`split_frontier` result:
    fill the miss slots of ``values``, write the nodes through to ``cache``,
    and tally the fetch as one round trip."""
    if cache is not None:
        cache.put_many(
            [
                (cache_keys[index], node)
                for index, node in zip(miss_indices, fetched)
            ]
        )
    for index, node in zip(miss_indices, fetched):
        values[index] = node
    if tally is not None:
        tally.fetched += len(miss_indices)
        tally.trips += 1


# -- the process-wide default instance ---------------------------------------
_shared_lock = threading.Lock()
_shared_cache: NodeCache | None = None

#: Monotonic source of cache namespaces (one per Cluster) so deployments
#: sharing the process-wide caches can never collide on blob or page ids.
_namespace_counter = itertools.count(1)


def next_cache_namespace(prefix: str = "ns") -> str:
    """Return a process-unique namespace token for cache keys."""
    return f"{prefix}-{next(_namespace_counter):06d}"


def shared_node_cache() -> NodeCache:
    """The process-wide default :class:`NodeCache`, created on first use."""
    global _shared_cache
    if _shared_cache is None:
        with _shared_lock:
            if _shared_cache is None:
                _shared_cache = NodeCache()
    return _shared_cache


def set_shared_node_cache(cache: NodeCache | None) -> NodeCache | None:
    """Replace the process-wide default cache.

    Returns the previous instance — None when none had been created yet, so
    ``set_shared_node_cache(set_shared_node_cache(mine))`` always restores
    the prior state (passing None restores create-on-first-use).
    """
    global _shared_cache
    with _shared_lock:
        previous = _shared_cache
        _shared_cache = cache
    return previous


def reset_shared_node_cache() -> None:
    """Forget the process-wide default cache (tests use this for isolation)."""
    global _shared_cache
    with _shared_lock:
        _shared_cache = None
