"""A sharded, thread-safe, LRU-bounded cache for immutable metadata nodes.

The paper's total-order versioning makes every published tree node
*immutable*: a ``(blob, version, offset, size)`` key is written exactly once
and never changes afterwards (Section 4.1).  That is what makes aggressive
client-side caching safe — a cached node can never be stale — and what this
module turns into an architectural layer instead of the ad-hoc per-client
``dict`` it used to be:

* **Sharded.**  Keys are striped over ``shards`` independent segments, each
  with its own lock, ordered map and counters, so concurrent readers on
  different shards never contend — the same striping idea the DHT uses for
  its buckets.  The batched :meth:`NodeCache.get_many` /
  :meth:`NodeCache.put_many` take each touched shard's lock once per batch,
  mirroring the DHT multi-op discipline.
* **LRU-bounded.**  Every shard enforces its slice of the global entry and
  byte budgets; inserting past a budget evicts the shard's least recently
  used entries.  Budgets are split evenly, so the cache as a whole never
  exceeds ``max_entries`` entries or ``max_bytes`` estimated bytes.
* **Shared.**  :func:`shared_node_cache` returns the process-wide default
  instance that every :class:`~repro.core.cluster.Cluster` (with default
  cache configuration) hands to its clients, so all ``BlobStore`` instances
  of a process warm one another.  Keys are namespaced per cluster (see
  :attr:`repro.core.cluster.Cluster.cache_namespace`) so two in-process
  deployments can never serve each other's nodes.

Byte accounting uses a deterministic *estimate* of an entry's footprint
(key strings + a fixed per-entry overhead + the node payload), not
``sys.getsizeof`` traversal — cheap, stable across interpreter versions,
and close enough to steer eviction.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from ..config import (
    DEFAULT_METADATA_CACHE_BYTES,
    DEFAULT_METADATA_CACHE_ENTRIES,
    DEFAULT_METADATA_CACHE_SHARDS,
)
from ..errors import ConfigurationError
from ..metadata.node import LeafNode, NodeKey

#: Estimated fixed footprint of one cache entry (map slot, key tuple,
#: bookkeeping) in bytes, on top of the key strings and the node itself.
ENTRY_OVERHEAD = 96
#: Smallest byte budget a single shard is allowed to manage — below roughly
#: one entry's worth of bytes a shard would evict everything it inserts.
MIN_SHARD_BYTES = 512
#: Estimated footprint of an inner node (two optional child versions).
INNER_NODE_WEIGHT = 48
#: Estimated fixed footprint of a leaf node, excluding its id strings.
LEAF_NODE_WEIGHT = 72


def node_weight(key: Hashable, node: object) -> int:
    """Deterministic byte-footprint estimate of one cache entry."""
    weight = ENTRY_OVERHEAD + _key_weight(key)
    if isinstance(node, LeafNode):
        weight += LEAF_NODE_WEIGHT + len(node.page_id) + len(node.provider_id)
    else:
        weight += INNER_NODE_WEIGHT
    return weight


def _key_weight(key: Hashable) -> int:
    if isinstance(key, str):
        return len(key)
    if isinstance(key, NodeKey):
        return len(key.blob_id) + 24
    if isinstance(key, tuple):
        return sum(_key_weight(part) for part in key)
    return 8


@dataclass(frozen=True)
class CacheStats:
    """Structured cache counters (replaces the old positional 3-tuple).

    ``hits``/``misses``/``evictions`` are lifetime counters of the cache the
    stats were read from; ``entries``/``bytes`` are its current occupancy.
    When attached to a per-operation result (``ReadStats.cache``,
    ``WriteResult.cache``), ``hits``/``misses`` are that operation's exact
    deltas (counted by the operation itself) while ``entries``/``bytes``/
    ``evictions`` snapshot the — possibly shared — cache right after the
    operation.
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0
    bytes: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when nothing was looked up."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_tuple(self) -> tuple[int, int, int]:
        """The legacy positional ``(hits, misses, entries)`` shape."""
        return (self.hits, self.misses, self.entries)


@dataclass
class CacheTally:
    """Per-operation accumulator threaded through frontier resolution.

    The threaded client and the simulator both use it to report, per READ or
    WRITE: how many node lookups the cache served (``hits``), how many nodes
    actually travelled from the DHT (``fetched`` — the misses, or everything
    when caching is off), and how many frontiers needed a DHT round trip
    (``trips`` — an all-hit frontier is free).
    """

    hits: int = 0
    fetched: int = 0
    trips: int = 0

    @property
    def nodes_resolved(self) -> int:
        return self.hits + self.fetched

    @property
    def hit_rate(self) -> float:
        total = self.nodes_resolved
        return self.hits / total if total else 0.0


class _Shard:
    """One lock-striped segment of the cache."""

    __slots__ = (
        "lock", "entries", "bytes", "max_entries", "max_bytes",
        "hits", "misses", "evictions",
    )

    def __init__(self, max_entries: int, max_bytes: int):
        self.lock = threading.Lock()
        #: key -> (node, weight); insertion/refresh order is LRU order.
        self.entries: OrderedDict[Hashable, tuple[object, int]] = OrderedDict()
        self.bytes = 0
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, keys: Sequence[Hashable], out: list, indices: Sequence[int]) -> None:
        """Resolve ``keys`` into ``out`` at ``indices`` under one lock."""
        with self.lock:
            for key, index in zip(keys, indices):
                entry = self.entries.get(key)
                if entry is None:
                    self.misses += 1
                else:
                    self.entries.move_to_end(key)
                    self.hits += 1
                    out[index] = entry[0]

    def insert(self, items: Iterable[tuple[Hashable, object]]) -> None:
        """Insert ``items`` under one lock, evicting LRU past the budgets."""
        with self.lock:
            for key, node in items:
                existing = self.entries.get(key)
                if existing is not None:
                    # Nodes are immutable: same key means same value, so a
                    # re-insert is just a recency refresh.
                    self.entries.move_to_end(key)
                    continue
                weight = node_weight(key, node)
                self.entries[key] = (node, weight)
                self.bytes += weight
                while self.entries and (
                    len(self.entries) > self.max_entries
                    or self.bytes > self.max_bytes
                ):
                    _evicted_key, (_node, evicted_weight) = self.entries.popitem(
                        last=False
                    )
                    self.bytes -= evicted_weight
                    self.evictions += 1

    def discard(self, key: Hashable) -> bool:
        with self.lock:
            entry = self.entries.pop(key, None)
            if entry is None:
                return False
            self.bytes -= entry[1]
            return True

    def clear(self) -> None:
        with self.lock:
            self.entries.clear()
            self.bytes = 0


class NodeCache:
    """Process-wide sharded LRU cache for immutable metadata tree nodes.

    Parameters
    ----------
    max_entries:
        Maximum number of cached nodes across all shards.
    max_bytes:
        Maximum estimated footprint in bytes across all shards (see
        :func:`node_weight`).
    shards:
        Number of lock-striped segments.  Budgets are split evenly across
        shards, so each shard holds at most ``max_entries // shards``
        entries — the cache as a whole never exceeds the global budgets.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_METADATA_CACHE_ENTRIES,
        max_bytes: int = DEFAULT_METADATA_CACHE_BYTES,
        shards: int = DEFAULT_METADATA_CACHE_SHARDS,
    ):
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        if max_bytes < MIN_SHARD_BYTES:
            # A budget that cannot hold even one node entry would evict
            # every insert immediately — caching silently off while looking
            # on.  Surface the misconfiguration instead.
            raise ConfigurationError(
                f"max_bytes must be >= {MIN_SHARD_BYTES} "
                "(smaller budgets cannot hold a single tree node)"
            )
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        # Budgets are split evenly, so cap the stripe count at what the
        # budgets can feed: every shard must be able to hold at least one
        # typical entry.
        shards = min(shards, max_entries, max(1, max_bytes // MIN_SHARD_BYTES))
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._shards = [
            _Shard(
                max(1, max_entries // shards),
                max(MIN_SHARD_BYTES, max_bytes // shards),
            )
            for _ in range(shards)
        ]

    # -- placement -----------------------------------------------------------
    def _shard_for(self, key: Hashable) -> _Shard:
        return self._shards[hash(key) % len(self._shards)]

    # -- single-key operations ----------------------------------------------
    def get(self, key: Hashable) -> object | None:
        """Return the cached node for ``key`` (refreshing recency) or None."""
        out: list[object | None] = [None]
        self._shard_for(key).lookup([key], out, [0])
        return out[0]

    def put(self, key: Hashable, node: object) -> None:
        """Insert one node, evicting LRU entries past the shard budget."""
        self._shard_for(key).insert([(key, node)])

    def discard(self, key: Hashable) -> bool:
        """Drop one entry (used by GC after it deletes nodes from the DHT)."""
        return self._shard_for(key).discard(key)

    # -- batched operations --------------------------------------------------
    def get_many(self, keys: Sequence[Hashable]) -> list[object | None]:
        """Resolve a batch of keys, one lock acquisition per touched shard.

        Returns values aligned with ``keys`` (None for misses) — the
        cache-side half of the frontier protocol: the caller sends only the
        None slots to the DHT multi-get.
        """
        out: list[object | None] = [None] * len(keys)
        by_shard: dict[int, tuple[list[Hashable], list[int]]] = {}
        for index, key in enumerate(keys):
            slot = hash(key) % len(self._shards)
            shard_keys, shard_indices = by_shard.setdefault(slot, ([], []))
            shard_keys.append(key)
            shard_indices.append(index)
        for slot, (shard_keys, shard_indices) in by_shard.items():
            self._shards[slot].lookup(shard_keys, out, shard_indices)
        return out

    def put_many(self, items: Sequence[tuple[Hashable, object]]) -> None:
        """Insert a batch, one lock acquisition per touched shard."""
        by_shard: dict[int, list[tuple[Hashable, object]]] = {}
        for key, node in items:
            by_shard.setdefault(hash(key) % len(self._shards), []).append(
                (key, node)
            )
        for slot, shard_items in by_shard.items():
            self._shards[slot].insert(shard_items)

    # -- maintenance / introspection -----------------------------------------
    def clear(self) -> None:
        """Drop every entry (counters are kept; they are lifetime totals)."""
        for shard in self._shards:
            shard.clear()

    def stats(self) -> CacheStats:
        """Aggregate counters and occupancy across all shards."""
        hits = misses = entries = total_bytes = evictions = 0
        for shard in self._shards:
            with shard.lock:
                hits += shard.hits
                misses += shard.misses
                entries += len(shard.entries)
                total_bytes += shard.bytes
                evictions += shard.evictions
        return CacheStats(
            hits=hits,
            misses=misses,
            entries=entries,
            bytes=total_bytes,
            evictions=evictions,
        )

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def bytes_used(self) -> int:
        return sum(shard.bytes for shard in self._shards)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeCache(entries={len(self)}/{self._max_entries}, "
            f"bytes={self.bytes_used()}/{self._max_bytes}, "
            f"shards={len(self._shards)})"
        )


def split_frontier(
    cache: NodeCache | None,
    cache_keys: Sequence[Hashable],
    tally: CacheTally | None = None,
) -> tuple[list[object | None], list[int]]:
    """Serve one frontier of lookups from ``cache``.

    Returns ``(values, miss_indices)``: ``values`` aligned with
    ``cache_keys`` (None for misses), ``miss_indices`` the positions the
    caller must fetch from the DHT.  Hits are tallied.  With ``cache=None``
    everything is a miss — the caller's uncached path needs no branching.
    """
    if cache is None:
        return [None] * len(cache_keys), list(range(len(cache_keys)))
    values = cache.get_many(cache_keys)
    miss_indices = [index for index, value in enumerate(values) if value is None]
    if tally is not None:
        tally.hits += len(cache_keys) - len(miss_indices)
    return values, miss_indices


def complete_frontier(
    cache: NodeCache | None,
    cache_keys: Sequence[Hashable],
    miss_indices: Sequence[int],
    fetched: Sequence[object],
    values: list[object | None],
    tally: CacheTally | None = None,
) -> None:
    """Fold DHT-fetched nodes back into a :func:`split_frontier` result:
    fill the miss slots of ``values``, write the nodes through to ``cache``,
    and tally the fetch as one round trip."""
    if cache is not None:
        cache.put_many(
            [
                (cache_keys[index], node)
                for index, node in zip(miss_indices, fetched)
            ]
        )
    for index, node in zip(miss_indices, fetched):
        values[index] = node
    if tally is not None:
        tally.fetched += len(miss_indices)
        tally.trips += 1


# -- the process-wide default instance ---------------------------------------
_shared_lock = threading.Lock()
_shared_cache: NodeCache | None = None

#: Monotonic source of cache namespaces (one per Cluster) so deployments
#: sharing the process-wide cache can never collide on blob ids.
_namespace_counter = itertools.count(1)


def next_cache_namespace(prefix: str = "ns") -> str:
    """Return a process-unique namespace token for cache keys."""
    return f"{prefix}-{next(_namespace_counter):06d}"


def shared_node_cache() -> NodeCache:
    """The process-wide default :class:`NodeCache`, created on first use."""
    global _shared_cache
    if _shared_cache is None:
        with _shared_lock:
            if _shared_cache is None:
                _shared_cache = NodeCache()
    return _shared_cache


def set_shared_node_cache(cache: NodeCache | None) -> NodeCache | None:
    """Replace the process-wide default cache.

    Returns the previous instance — None when none had been created yet, so
    ``set_shared_node_cache(set_shared_node_cache(mine))`` always restores
    the prior state (passing None restores create-on-first-use).
    """
    global _shared_cache
    with _shared_lock:
        previous = _shared_cache
        _shared_cache = cache
    return previous


def reset_shared_node_cache() -> None:
    """Forget the process-wide default cache (tests use this for isolation)."""
    global _shared_cache
    with _shared_lock:
        _shared_cache = None
