"""Cooperative peer caching: co-located clients probe each other's caches.

BlobSeer's data and metadata are immutable once published, which makes
cross-client cache sharing trivially safe: any cached copy of a tree node or
page range is the *only* value that key can ever have, so a peer's cache can
serve it with no invalidation protocol at all (DESIGN.md §9).  A
:class:`PeerCacheGroup` models a set of clients on the same machine (or
rack) whose caches are one cheap hop away — much closer than a data
provider or DHT bucket round trip.

Members :meth:`~PeerCacheGroup.join` with their own node/page caches and
get back a :class:`PeerCacheMember` token.  A probe through the token
consults every OTHER member's cache (never the prober's own — the read
path has already checked it, and a deployment where every store shares one
process-wide cache has nothing to gain from peers, so identical cache
objects are skipped too).  A peer hit legitimately refreshes the serving
cache's LRU recency and hit counters: the entry just served a request.

Probing order is load-bearing for the client: **own cache → peers →
network**.  Probing peers before the own cache would steal warm own-cache
hits and silently change the warm-read counters the benchmarks pin.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class PeerCacheStats:
    """Lifetime probe counters of one :class:`PeerCacheGroup`.

    ``node_probes``/``page_probes`` count lookups that went to the peers
    (i.e. own-cache misses in a peer-enabled store); the ``*_hits`` twins
    count how many a peer served.
    """

    #: Metadata-node lookups sent to the peers (own-cache misses).
    node_probes: int = 0
    #: Metadata-node probes a peer's cache answered.
    node_hits: int = 0
    #: Page-range lookups sent to the peers (own-cache misses).
    page_probes: int = 0
    #: Page-range probes a peer's cache answered.
    page_hits: int = 0

    @property
    def hit_rate(self) -> float:
        probes = self.node_probes + self.page_probes
        hits = self.node_hits + self.page_hits
        return hits / probes if probes else 0.0


class PeerCacheMember:
    """One member's handle into a :class:`PeerCacheGroup`.

    Holds the member's own caches so probes can exclude them; all lookup
    traffic goes through :meth:`probe_node` / :meth:`probe_page`.
    """

    __slots__ = ("_group", "node_cache", "page_cache")

    def __init__(self, group: "PeerCacheGroup", node_cache, page_cache):
        self._group = group
        self.node_cache = node_cache
        self.page_cache = page_cache

    def probe_node(self, cache_key):
        """A peer's cached tree node for ``cache_key``, or None."""
        return self._group._probe(self, "node", cache_key)

    def probe_page(self, cache_key):
        """A peer's cached page-range bytes for ``cache_key``, or None."""
        return self._group._probe(self, "page", cache_key)

    def leave(self) -> None:
        """Remove this member from the group (idempotent)."""
        self._group._leave(self)


class PeerCacheGroup:
    """A set of co-located clients that serve each other's cache lookups.

    Thread-safe: membership changes take the group lock; probes iterate a
    snapshot, so a member joining or leaving mid-probe is simply included
    or skipped, never an error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._members: list[PeerCacheMember] = []
        self._node_probes = 0
        self._node_hits = 0
        self._page_probes = 0
        self._page_hits = 0

    def join(self, node_cache=None, page_cache=None) -> PeerCacheMember:
        """Add a member with its caches; returns its probe token.

        Either cache may be None (a store with page caching disabled still
        shares its node cache, and vice versa).
        """
        member = PeerCacheMember(self, node_cache, page_cache)
        with self._lock:
            self._members.append(member)
        return member

    def _leave(self, member: PeerCacheMember) -> None:
        with self._lock:
            if member in self._members:
                self._members.remove(member)

    def _probe(self, prober: PeerCacheMember, kind: str, cache_key):
        with self._lock:
            members = list(self._members)
            if kind == "node":
                self._node_probes += 1
            else:
                self._page_probes += 1
        own = prober.node_cache if kind == "node" else prober.page_cache
        for member in members:
            if member is prober:
                continue
            cache = member.node_cache if kind == "node" else member.page_cache
            if cache is None or cache is own:
                continue
            value = cache.get(cache_key)
            if value is not None:
                with self._lock:
                    if kind == "node":
                        self._node_hits += 1
                    else:
                        self._page_hits += 1
                return value
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def stats(self) -> PeerCacheStats:
        with self._lock:
            return PeerCacheStats(
                node_probes=self._node_probes,
                node_hits=self._node_hits,
                page_probes=self._page_probes,
                page_hits=self._page_hits,
            )
