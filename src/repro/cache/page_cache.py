"""A sharded, thread-safe, byte-budgeted LRU cache for immutable page data.

The same total-order-versioning argument that justifies the metadata
:class:`~repro.cache.NodeCache` applies verbatim to page payloads: BlobSeer
never overwrites a stored page — an update always writes *new* pages and
weaves a new tree over them — so the bytes behind a page id are immutable
from the moment they are published, and a cached copy can never be stale.
With metadata and version-manager round trips already at zero for warm
repeated reads (PR 3 / PR 4), provider page fetches are 100 % of such a
read's cost; this cache takes them off the wire too.

Key protocol
------------
Entries are keyed ``(namespace, page_id, offset, length)`` — one entry per
*fetched sub-range*, not per page.  A READ only ever requests the byte
window of a page that intersects its range, and caching exactly what was
fetched keeps the cold path bit-identical (a miss never triggers a larger
"fetch the whole page" request) while any repeated read of the same range
is a pure hit.  Sub-ranges of one page are immutable like the page itself.

All sub-ranges of one page form a *group* (``(namespace, page_id)``): the
shared :class:`~repro.cache.sharded_lru.ShardedLRUCache` core places a
whole group on one shard, so :meth:`PageCache.discard_page` — called by GC
for each page it deletes from the providers — drops every cached sub-range
of that page under a single lock acquisition.

Like the node cache, the process-wide default instance
(:func:`shared_page_cache`) is shared by every cluster that keeps the
default ``page_cache_*`` budgets, namespaced per cluster so two in-process
deployments can never serve each other's pages.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable

from ..config import (
    DEFAULT_PAGE_CACHE_BYTES,
    DEFAULT_PAGE_CACHE_ENTRIES,
    DEFAULT_PAGE_CACHE_SHARDS,
)
from .sharded_lru import ENTRY_OVERHEAD, ShardedLRUCache, key_weight

__all__ = [
    "PageCache",
    "VirtualPagePayload",
    "page_weight",
    "reset_shared_page_cache",
    "set_shared_page_cache",
    "shared_page_cache",
]


class VirtualPagePayload:
    """A size-only stand-in for cached page bytes.

    The discrete-event simulator models *which* page ranges a machine holds
    locally without materializing payloads (its page stores are
    :class:`~repro.providers.page_store.NullPageStore` instances), so it
    caches these instead of real ``bytes`` — ``len()`` reports the modelled
    size, which keeps the byte-budget accounting as honest as the threaded
    client's.
    """

    __slots__ = ("size",)

    def __init__(self, size: int):
        self.size = size

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualPagePayload({self.size})"


def page_weight(key: Hashable, payload: object) -> int:
    """Deterministic byte-footprint estimate of one cached page range:
    the payload bytes dominate; key strings and the fixed per-entry
    overhead are added so even empty payloads cost something."""
    return ENTRY_OVERHEAD + key_weight(key) + len(payload)


def _page_group(key: Hashable) -> Hashable:
    """The stored page behind a sub-range key: ``(namespace, page_id)``."""
    return key[:-2] if isinstance(key, tuple) and len(key) > 2 else key


class PageCache(ShardedLRUCache):
    """Process-wide sharded LRU cache for immutable page payload ranges.

    Parameters
    ----------
    max_entries:
        Maximum number of cached page ranges across all shards.
    max_bytes:
        Maximum estimated footprint in bytes across all shards (see
        :func:`page_weight` — payload bytes dominate, so this is the knob
        that bounds client memory).
    shards:
        Number of lock-striped segments.  Placement hashes the page group,
        so all sub-ranges of one page share a shard (see
        :meth:`discard_page`).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_PAGE_CACHE_ENTRIES,
        max_bytes: int = DEFAULT_PAGE_CACHE_BYTES,
        shards: int = DEFAULT_PAGE_CACHE_SHARDS,
    ):
        super().__init__(
            max_entries=max_entries,
            max_bytes=max_bytes,
            shards=shards,
            weight_of=page_weight,
            group_of=_page_group,
        )

    def discard_page(self, namespace: str, page_id: str) -> int:
        """Drop every cached sub-range of one stored page (ONE lock
        acquisition — the group index keeps them together).  Called by GC
        for each page it deletes; returns the number of entries dropped."""
        return self.discard_group((namespace, page_id))


# -- the process-wide default instance ---------------------------------------
_shared_lock = threading.Lock()
_shared_cache: PageCache | None = None


def shared_page_cache() -> PageCache:
    """The process-wide default :class:`PageCache`, created on first use."""
    global _shared_cache
    if _shared_cache is None:
        with _shared_lock:
            if _shared_cache is None:
                _shared_cache = PageCache()
    return _shared_cache


def set_shared_page_cache(cache: PageCache | None) -> PageCache | None:
    """Replace the process-wide default page cache (returns the previous
    instance; passing None restores create-on-first-use)."""
    global _shared_cache
    with _shared_lock:
        previous = _shared_cache
        _shared_cache = cache
    return previous


def reset_shared_page_cache() -> None:
    """Forget the process-wide default page cache (test isolation)."""
    global _shared_cache
    with _shared_lock:
        _shared_cache = None
