"""The shared sharded/striped LRU core behind the client-side caches.

Two caches ride on this machinery: :class:`~repro.cache.NodeCache` (immutable
metadata tree nodes, PR 3) and :class:`~repro.cache.PageCache` (immutable
page payloads, PR 5).  Both need exactly the same skeleton — keys striped
over independently locked segments, per-shard LRU order, entry and byte
budgets split evenly across shards, lifetime hit/miss/eviction counters,
batched lookups and inserts that take each touched shard's lock once — so
the skeleton lives here and the caches are thin instantiations that differ
only in their *weight function* (how many bytes one entry is estimated to
occupy) and, for the page cache, a *group function* (which entries belong to
the same stored page, so GC can discard them together).

Grouping: when ``group_of`` is given, shard placement hashes the group
instead of the full key, so every entry of one group lands in the same
shard and :meth:`ShardedLRUCache.discard_group` drops all of them under ONE
lock acquisition — the page cache keys sub-ranges of a page separately
(``(namespace, page_id, offset, length)``) yet GC must discard *pages*.

Byte accounting uses a deterministic *estimate* of an entry's footprint
(key strings + a fixed per-entry overhead + the payload weight), not
``sys.getsizeof`` traversal — cheap, stable across interpreter versions,
and close enough to steer eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Estimated fixed footprint of one cache entry (map slot, key tuple,
#: bookkeeping) in bytes, on top of the key strings and the value itself.
ENTRY_OVERHEAD = 96
#: Smallest byte budget a single shard is allowed to manage — below roughly
#: one entry's worth of bytes a shard would evict everything it inserts.
MIN_SHARD_BYTES = 512


def key_weight(key: Hashable) -> int:
    """Deterministic byte-footprint estimate of one cache key."""
    if isinstance(key, str):
        return len(key)
    if isinstance(key, tuple):
        return sum(key_weight(part) for part in key)
    return 8


@dataclass(frozen=True)
class CacheStats:
    """Structured cache counters (replaces the old positional 3-tuple).

    ``hits``/``misses``/``evictions`` are lifetime counters of the cache the
    stats were read from; ``entries``/``bytes`` are its current occupancy.
    When attached to a per-operation result (``ReadStats.cache``,
    ``WriteResult.cache``), ``hits``/``misses`` are that operation's exact
    deltas (counted by the operation itself) while ``entries``/``bytes``/
    ``evictions`` snapshot the — possibly shared — cache right after the
    operation.
    """

    #: Lookups served from the cache (operation-exact on result structs).
    hits: int = 0
    #: Lookups that fell through to the backend.
    misses: int = 0
    #: Entries currently resident (snapshot, cache-wide).
    entries: int = 0
    #: Weighted bytes currently resident (snapshot, cache-wide).
    bytes: int = 0
    #: Entries evicted to enforce the entry/byte budgets (lifetime).
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when nothing was looked up."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_tuple(self) -> tuple[int, int, int]:
        """The legacy positional ``(hits, misses, entries)`` shape."""
        return (self.hits, self.misses, self.entries)

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum — aggregating stats over many caches is
        ``sum(stats_list, CacheStats())``."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            entries=self.entries + other.entries,
            bytes=self.bytes + other.bytes,
            evictions=self.evictions + other.evictions,
        )


@dataclass
class CacheTally:
    """Per-operation accumulator threaded through cache-aware fetch paths.

    The threaded client and the simulator both use it to report, per READ or
    WRITE: how many lookups the cache served (``hits``), how many items
    actually travelled over the network (``fetched`` — the misses, or
    everything when caching is off), and how many batched round trips the
    misses cost (``trips`` — an all-hit batch is free).
    """

    hits: int = 0
    fetched: int = 0
    trips: int = 0

    @property
    def nodes_resolved(self) -> int:
        return self.hits + self.fetched

    @property
    def hit_rate(self) -> float:
        total = self.nodes_resolved
        return self.hits / total if total else 0.0


class _Shard:
    """One lock-striped segment of a sharded LRU cache."""

    __slots__ = (
        "lock", "entries", "bytes", "max_entries", "max_bytes",
        "hits", "misses", "evictions", "groups",
    )

    def __init__(self, max_entries: int, max_bytes: int, track_groups: bool):
        self.lock = threading.Lock()
        #: key -> (value, weight, group); insertion/refresh order is LRU order.
        self.entries: OrderedDict[
            Hashable, tuple[object, int, Hashable | None]
        ] = OrderedDict()
        self.bytes = 0
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: group -> set of keys, maintained only when the cache groups keys.
        self.groups: dict[Hashable, set[Hashable]] | None = (
            {} if track_groups else None
        )

    def lookup(self, keys: Sequence[Hashable], out: list, indices: Sequence[int]) -> None:
        """Resolve ``keys`` into ``out`` at ``indices`` under one lock."""
        with self.lock:
            for key, index in zip(keys, indices):
                entry = self.entries.get(key)
                if entry is None:
                    self.misses += 1
                else:
                    self.entries.move_to_end(key)
                    self.hits += 1
                    out[index] = entry[0]

    def insert(
        self, items: Iterable[tuple[Hashable, object, int, Hashable | None]]
    ) -> None:
        """Insert ``(key, value, weight, group)`` items under one lock,
        evicting LRU entries past the budgets."""
        with self.lock:
            for key, value, weight, group in items:
                existing = self.entries.get(key)
                if existing is not None:
                    # Values are immutable: same key means same value, so a
                    # re-insert is just a recency refresh.
                    self.entries.move_to_end(key)
                    continue
                self.entries[key] = (value, weight, group)
                self.bytes += weight
                if self.groups is not None and group is not None:
                    self.groups.setdefault(group, set()).add(key)
                while self.entries and (
                    len(self.entries) > self.max_entries
                    or self.bytes > self.max_bytes
                ):
                    evicted_key, (_value, evicted_weight, evicted_group) = (
                        self.entries.popitem(last=False)
                    )
                    self.bytes -= evicted_weight
                    self.evictions += 1
                    self._forget_group(evicted_key, evicted_group)

    def _forget_group(self, key: Hashable, group: Hashable | None) -> None:
        if self.groups is None or group is None:
            return
        members = self.groups.get(group)
        if members is not None:
            members.discard(key)
            if not members:
                del self.groups[group]

    def discard(self, key: Hashable) -> bool:
        with self.lock:
            entry = self.entries.pop(key, None)
            if entry is None:
                return False
            self.bytes -= entry[1]
            self._forget_group(key, entry[2])
            return True

    def discard_group(self, group: Hashable) -> int:
        """Drop every entry of ``group`` under one lock; return the count."""
        if self.groups is None:
            return 0
        with self.lock:
            members = self.groups.pop(group, None)
            if not members:
                return 0
            for key in members:
                entry = self.entries.pop(key, None)
                if entry is not None:
                    self.bytes -= entry[1]
            return len(members)

    def clear(self) -> None:
        with self.lock:
            self.entries.clear()
            self.bytes = 0
            if self.groups is not None:
                self.groups.clear()


class ShardedLRUCache:
    """Sharded, thread-safe, LRU-bounded cache for immutable values.

    Parameters
    ----------
    max_entries:
        Maximum number of cached entries across all shards.
    max_bytes:
        Maximum estimated footprint in bytes across all shards.
    shards:
        Number of lock-striped segments.  Budgets are split evenly across
        shards, so each shard holds at most its slice — the cache as a
        whole never exceeds the global budgets.
    weight_of:
        ``weight_of(key, value) -> int`` — the deterministic byte estimate
        of one entry, charged against ``max_bytes``.
    group_of:
        Optional ``group_of(key) -> Hashable`` — when given, shard placement
        hashes the group (so one group never spans shards) and
        :meth:`discard_group` can drop a whole group under one lock.
    """

    def __init__(
        self,
        max_entries: int,
        max_bytes: int,
        shards: int,
        weight_of: Callable[[Hashable, object], int],
        group_of: Callable[[Hashable], Hashable] | None = None,
    ):
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        if max_bytes < MIN_SHARD_BYTES:
            # A budget that cannot hold even one entry would evict every
            # insert immediately — caching silently off while looking on.
            # Surface the misconfiguration instead.
            raise ConfigurationError(
                f"max_bytes must be >= {MIN_SHARD_BYTES} "
                "(smaller budgets cannot hold a single entry)"
            )
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        # Budgets are split evenly, so cap the stripe count at what the
        # budgets can feed: every shard must be able to hold at least one
        # typical entry.
        shards = min(shards, max_entries, max(1, max_bytes // MIN_SHARD_BYTES))
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._weight_of = weight_of
        self._group_of = group_of
        self._shards = [
            _Shard(
                max(1, max_entries // shards),
                max(MIN_SHARD_BYTES, max_bytes // shards),
                track_groups=group_of is not None,
            )
            for _ in range(shards)
        ]

    # -- placement -----------------------------------------------------------
    def _slot(self, key: Hashable) -> int:
        place = self._group_of(key) if self._group_of is not None else key
        return hash(place) % len(self._shards)

    # -- single-key operations ----------------------------------------------
    def get(self, key: Hashable) -> object | None:
        """Return the cached value for ``key`` (refreshing recency) or None."""
        out: list[object | None] = [None]
        self._shards[self._slot(key)].lookup([key], out, [0])
        return out[0]

    def put(self, key: Hashable, value: object) -> None:
        """Insert one value, evicting LRU entries past the shard budget."""
        group = self._group_of(key) if self._group_of is not None else None
        self._shards[self._slot(key)].insert(
            [(key, value, self._weight_of(key, value), group)]
        )

    def discard(self, key: Hashable) -> bool:
        """Drop one entry (used by GC after it deletes the backing item)."""
        return self._shards[self._slot(key)].discard(key)

    def discard_group(self, group: Hashable) -> int:
        """Drop every entry of ``group`` (one lock acquisition); return how
        many entries were dropped.  Only meaningful with ``group_of``."""
        if self._group_of is None:
            return 0
        return self._shards[hash(group) % len(self._shards)].discard_group(group)

    # -- batched operations --------------------------------------------------
    def get_many(self, keys: Sequence[Hashable]) -> list[object | None]:
        """Resolve a batch of keys, one lock acquisition per touched shard.

        Returns values aligned with ``keys`` (None for misses) — the
        cache-side half of the batched fetch protocol: the caller sends only
        the None slots over the network.
        """
        out: list[object | None] = [None] * len(keys)
        by_shard: dict[int, tuple[list[Hashable], list[int]]] = {}
        for index, key in enumerate(keys):
            slot = self._slot(key)
            shard_keys, shard_indices = by_shard.setdefault(slot, ([], []))
            shard_keys.append(key)
            shard_indices.append(index)
        for slot, (shard_keys, shard_indices) in by_shard.items():
            self._shards[slot].lookup(shard_keys, out, shard_indices)
        return out

    def put_many(self, items: Sequence[tuple[Hashable, object]]) -> None:
        """Insert a batch, one lock acquisition per touched shard."""
        by_shard: dict[int, list[tuple[Hashable, object, int, Hashable | None]]] = {}
        for key, value in items:
            group = self._group_of(key) if self._group_of is not None else None
            by_shard.setdefault(self._slot(key), []).append(
                (key, value, self._weight_of(key, value), group)
            )
        for slot, shard_items in by_shard.items():
            self._shards[slot].insert(shard_items)

    # -- maintenance / introspection -----------------------------------------
    def clear(self) -> None:
        """Drop every entry (counters are kept; they are lifetime totals)."""
        for shard in self._shards:
            shard.clear()

    def stats(self) -> CacheStats:
        """Aggregate counters and occupancy across all shards."""
        hits = misses = entries = total_bytes = evictions = 0
        for shard in self._shards:
            with shard.lock:
                hits += shard.hits
                misses += shard.misses
                entries += len(shard.entries)
                total_bytes += shard.bytes
                evictions += shard.evictions
        return CacheStats(
            hits=hits,
            misses=misses,
            entries=entries,
            bytes=total_bytes,
            evictions=evictions,
        )

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def bytes_used(self) -> int:
        return sum(shard.bytes for shard in self._shards)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(entries={len(self)}/{self._max_entries}, "
            f"bytes={self.bytes_used()}/{self._max_bytes}, "
            f"shards={len(self._shards)})"
        )
