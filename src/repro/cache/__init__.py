"""Client-side caching of immutable data.

Two thin instantiations of one shared sharded-LRU core
(:mod:`repro.cache.sharded_lru`):

* :class:`NodeCache` — immutable metadata tree nodes, consulted by every
  frontier resolution (see :mod:`repro.cache.node_cache`);
* :class:`PageCache` — immutable page payload ranges, consulted before any
  provider fetch (see :mod:`repro.cache.page_cache`).

:class:`PeerCacheGroup` (:mod:`repro.cache.peer_group`) additionally lets
co-located clients probe each OTHER's caches before paying a network round
trip — safe with zero invalidation because everything cached is immutable.
"""

from .node_cache import (
    CacheStats,
    CacheTally,
    NodeCache,
    complete_frontier,
    next_cache_namespace,
    node_weight,
    reset_shared_node_cache,
    set_shared_node_cache,
    shared_node_cache,
    split_frontier,
)
from .page_cache import (
    PageCache,
    VirtualPagePayload,
    page_weight,
    reset_shared_page_cache,
    set_shared_page_cache,
    shared_page_cache,
)
from .peer_group import PeerCacheGroup, PeerCacheMember, PeerCacheStats
from .sharded_lru import ShardedLRUCache

__all__ = [
    "CacheStats",
    "CacheTally",
    "NodeCache",
    "PageCache",
    "PeerCacheGroup",
    "PeerCacheMember",
    "PeerCacheStats",
    "ShardedLRUCache",
    "VirtualPagePayload",
    "complete_frontier",
    "next_cache_namespace",
    "node_weight",
    "page_weight",
    "reset_shared_node_cache",
    "reset_shared_page_cache",
    "set_shared_node_cache",
    "set_shared_page_cache",
    "shared_node_cache",
    "shared_page_cache",
    "split_frontier",
]
