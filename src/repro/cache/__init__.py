"""Client-side caching of immutable metadata (see :mod:`repro.cache.node_cache`)."""

from .node_cache import (
    CacheStats,
    CacheTally,
    NodeCache,
    complete_frontier,
    next_cache_namespace,
    node_weight,
    reset_shared_node_cache,
    set_shared_node_cache,
    shared_node_cache,
    split_frontier,
)

__all__ = [
    "CacheStats",
    "CacheTally",
    "NodeCache",
    "complete_frontier",
    "next_cache_namespace",
    "node_weight",
    "reset_shared_node_cache",
    "set_shared_node_cache",
    "shared_node_cache",
    "split_frontier",
]
