"""Custom DHT used as the metadata-provider substrate.

The paper implements its distributed metadata provider as "a custom DHT
(Distributed Hash Table) based on a simple static distribution scheme"
(Section 5).  This package provides:

* :mod:`repro.dht.hashing` — key-to-bucket placement strategies: the paper's
  static (modulo) scheme and a consistent-hashing ring.
* :mod:`repro.dht.storage` — the per-node bucket store (a thread-safe
  key/value map with statistics and failure injection).
* :mod:`repro.dht.dht` — the client-facing DHT combining placement,
  replication and bucket stores.
"""

from .hashing import ConsistentHashRing, HashPlacement, StaticPlacement, stable_hash
from .storage import BucketStats, BucketStore
from .dht import DHT, DHTStats

__all__ = [
    "ConsistentHashRing",
    "HashPlacement",
    "StaticPlacement",
    "stable_hash",
    "BucketStats",
    "BucketStore",
    "DHT",
    "DHTStats",
]
