"""Key placement strategies for the metadata DHT.

Two strategies are provided:

* :class:`StaticPlacement` — the paper's "simple static distribution scheme":
  a key is hashed and mapped to ``hash(key) % num_buckets``.  Replicas go to
  the following buckets in index order.
* :class:`ConsistentHashRing` — a classic consistent-hashing ring with
  virtual nodes, provided as an extension so that bucket membership changes
  only relocate a fraction of the keys.

Both use a *stable* hash (SHA-1 based) rather than Python's builtin ``hash``
so that placement is reproducible across processes and runs.
"""

from __future__ import annotations

import bisect
import hashlib
from abc import ABC, abstractmethod
from collections.abc import Sequence


def stable_hash(key: str, salt: str = "") -> int:
    """Return a stable 64-bit hash of *key* (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha1((salt + key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashPlacement(ABC):
    """Maps a string key to an ordered list of bucket identifiers."""

    @abstractmethod
    def buckets_for(self, key: str, replicas: int = 1) -> list[str]:
        """Return *replicas* distinct bucket ids responsible for *key*.

        The first entry is the primary bucket.  If fewer buckets exist than
        requested replicas, all buckets are returned.
        """

    @abstractmethod
    def all_buckets(self) -> list[str]:
        """Return every known bucket id."""


class StaticPlacement(HashPlacement):
    """Modulo placement over a fixed, ordered list of buckets.

    This mirrors the custom DHT of the paper: the bucket set is fixed at
    deployment time and a key always lands on ``hash(key) % len(buckets)``.
    """

    def __init__(self, bucket_ids: Sequence[str]):
        if not bucket_ids:
            raise ValueError("StaticPlacement requires at least one bucket")
        self._buckets = list(bucket_ids)

    def buckets_for(self, key: str, replicas: int = 1) -> list[str]:
        count = min(max(replicas, 1), len(self._buckets))
        primary = stable_hash(key) % len(self._buckets)
        return [self._buckets[(primary + i) % len(self._buckets)]
                for i in range(count)]

    def all_buckets(self) -> list[str]:
        return list(self._buckets)


class ConsistentHashRing(HashPlacement):
    """Consistent hashing with virtual nodes.

    Each bucket is mapped to ``virtual_nodes`` points on a 64-bit ring; a key
    is served by the first bucket clockwise from its hash.  Replicas are the
    next *distinct* buckets along the ring.
    """

    def __init__(self, bucket_ids: Sequence[str], virtual_nodes: int = 64):
        if not bucket_ids:
            raise ValueError("ConsistentHashRing requires at least one bucket")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self._virtual_nodes = virtual_nodes
        self._buckets: list[str] = []
        self._ring: list[tuple[int, str]] = []
        for bucket_id in bucket_ids:
            self.add_bucket(bucket_id)

    def add_bucket(self, bucket_id: str) -> None:
        """Add a bucket (and its virtual nodes) to the ring."""
        if bucket_id in self._buckets:
            return
        self._buckets.append(bucket_id)
        for index in range(self._virtual_nodes):
            point = stable_hash(bucket_id, salt=f"vn{index}:")
            bisect.insort(self._ring, (point, bucket_id))

    def remove_bucket(self, bucket_id: str) -> None:
        """Remove a bucket and all its virtual nodes from the ring."""
        if bucket_id not in self._buckets:
            return
        self._buckets.remove(bucket_id)
        self._ring = [(p, b) for (p, b) in self._ring if b != bucket_id]

    def buckets_for(self, key: str, replicas: int = 1) -> list[str]:
        if not self._ring:
            raise ValueError("hash ring is empty")
        count = min(max(replicas, 1), len(self._buckets))
        point = stable_hash(key)
        start = bisect.bisect_right(self._ring, (point, "￿")) % len(self._ring)
        chosen: list[str] = []
        index = start
        while len(chosen) < count:
            bucket = self._ring[index][1]
            if bucket not in chosen:
                chosen.append(bucket)
            index = (index + 1) % len(self._ring)
        return chosen

    def all_buckets(self) -> list[str]:
        return list(self._buckets)


def make_placement(strategy: str, bucket_ids: Sequence[str]) -> HashPlacement:
    """Factory mapping a configuration string to a placement object."""
    if strategy == "static":
        return StaticPlacement(bucket_ids)
    if strategy == "consistent":
        return ConsistentHashRing(bucket_ids)
    raise ValueError(f"unknown dht strategy: {strategy!r}")
