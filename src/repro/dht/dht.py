"""Client-facing DHT combining placement, replication and bucket stores.

The DHT stores metadata tree nodes for the metadata provider (Section 4.1 of
the paper: "Tree nodes are stored on the metadata provider in a distributed
way, using a simple DHT").  Values are written to ``replication`` buckets and
read from the first replica that holds them — a live replica missing a key
falls through to the next one, because a write only guarantees ONE replica
accepted it.  This is the minimal fault-tolerance hook the paper defers to
future work.

Besides the per-key ``get``/``put``, the DHT exposes true multi-ops
(:meth:`DHT.multi_get` / :meth:`DHT.multi_put`): keys are grouped by bucket
and each :class:`~repro.dht.storage.BucketStore` lock is taken once per
batch instead of once per key, which is what lets the client resolve a whole
metadata-tree frontier in one round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aio import IORuntime, dispatch_jobs, ensure_runtime, run_sync
from ..errors import MetadataNotFoundError, ProviderUnavailableError
from ..fault.routing import rank_replicas
from ..obs.trace import span
from .hashing import HashPlacement, make_placement
from .storage import BucketStore


@dataclass
class DHTStats:
    """Aggregate access statistics across all buckets.

    ``batch_gets`` / ``batch_puts`` count bucket-lock acquisitions made by
    the batched multi-key operations (see :class:`~repro.dht.storage.BucketStats`).
    """

    #: Individual keys written, summed over all buckets.
    puts: int = 0
    #: Individual keys looked up, summed over all buckets.
    gets: int = 0
    #: Lookups that found their key.
    hits: int = 0
    #: Lookups that missed.
    misses: int = 0
    #: Keys currently stored across the DHT (replicas counted per bucket).
    keys: int = 0
    #: Number of bucket stores in the ring.
    buckets: int = 0
    #: Bucket-lock acquisitions made by batched multi-key gets.
    batch_gets: int = 0
    #: Bucket-lock acquisitions made by batched multi-key puts.
    batch_puts: int = 0
    #: Largest per-bucket key count — the load-balance figure of merit.
    max_keys_per_bucket: int = 0


class DHT:
    """A replicated key/value store spread over :class:`BucketStore` nodes."""

    def __init__(
        self,
        num_buckets: int,
        strategy: str = "static",
        replication: int = 1,
        bucket_id_prefix: str = "meta",
        retry_policy=None,
        routing: bool = False,
    ):
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        bucket_ids = [f"{bucket_id_prefix}-{index:04d}" for index in range(num_buckets)]
        self._buckets: dict[str, BucketStore] = {
            bucket_id: BucketStore(bucket_id) for bucket_id in bucket_ids
        }
        self._placement: HashPlacement = make_placement(strategy, bucket_ids)
        self._replication = min(replication, num_buckets)
        # Optional :class:`repro.fault.RetryPolicy` wrapped around every
        # bucket call (transient errors only); None / a no-op policy keeps
        # the pre-fault-tolerance behaviour and timing.
        self._retry = retry_policy
        # Replica routing (DESIGN.md §9): when enabled, lookups rank each
        # key's replica buckets with buckets recently observed unavailable
        # last, instead of always starting at replica 0.  Suspicion is
        # learned from the lookups themselves (an unavailable outcome marks
        # the bucket, a served batch clears it), so no external health
        # registry is needed.  With no suspects the ranking is a stable
        # no-op and the wave order is bit-identical to routing off.
        self._routing = routing
        self._suspect_buckets: set[str] = set()

    def _bucket_call(self, fn):
        if self._retry is not None and not self._retry.is_noop:
            return self._retry.run(fn)
        return fn()

    # -- topology ----------------------------------------------------------
    @property
    def replication(self) -> int:
        return self._replication

    def bucket_ids(self) -> list[str]:
        return list(self._buckets)

    def bucket(self, bucket_id: str) -> BucketStore:
        return self._buckets[bucket_id]

    def buckets_for(self, key: str) -> list[str]:
        """Return the replica bucket ids responsible for *key*."""
        return self._placement.buckets_for(key, self._replication)

    def kill_bucket(self, bucket_id: str) -> None:
        self._buckets[bucket_id].kill()

    def revive_bucket(self, bucket_id: str) -> None:
        self._buckets[bucket_id].revive()

    # -- key/value API -----------------------------------------------------
    def put(self, key: str, value: object) -> None:
        """Store *value* on every live replica bucket of *key*.

        The write succeeds when at least one replica accepted it; it raises
        :class:`ProviderUnavailableError` only if every replica is down.
        """
        stored = 0
        last_error: ProviderUnavailableError | None = None
        for bucket_id in self.buckets_for(key):
            bucket = self._buckets[bucket_id]
            try:
                self._bucket_call(lambda: bucket.put(key, value))
                stored += 1
            except ProviderUnavailableError as error:
                last_error = error
        if stored == 0 and last_error is not None:
            raise last_error

    def get(self, key: str) -> object:
        """Return the value stored under *key* from the first replica that
        holds it.

        A replica that is live but *misses* the key is not authoritative:
        a write succeeds as soon as one replica stores the value, so a
        replica that was down during the put legitimately lacks the key
        after rejoining.  The lookup therefore falls through remaining
        replicas on a missing key, and raises
        :class:`MetadataNotFoundError` only when every replica was probed
        live and none held it.  If ANY replica was unavailable, the result
        is :class:`ProviderUnavailableError` — the value may well exist on
        the dead replica, so "not found" would wrongly report durable loss.
        """
        unavailable: ProviderUnavailableError | None = None
        for bucket_id in self._ranked_buckets_for(key):
            bucket = self._buckets[bucket_id]
            try:
                value = self._bucket_call(lambda: bucket.get(key))
            except ProviderUnavailableError as error:
                unavailable = error
                self._note_bucket_unavailable(bucket_id)
                continue
            except MetadataNotFoundError:
                self._note_bucket_served(bucket_id)
                continue
            self._note_bucket_served(bucket_id)
            return value
        if unavailable is not None:
            raise unavailable
        raise MetadataNotFoundError(key)

    def _ranked_buckets_for(self, key: str) -> tuple[str, ...]:
        """Replica buckets of *key* in routing order (suspects last)."""
        replicas = self.buckets_for(key)
        if not self._routing or not self._suspect_buckets:
            return tuple(replicas)
        return rank_replicas(replicas, suspects=frozenset(self._suspect_buckets))

    def _note_bucket_unavailable(self, bucket_id: str) -> None:
        if self._routing:
            self._suspect_buckets.add(bucket_id)

    def _note_bucket_served(self, bucket_id: str) -> None:
        if self._routing:
            self._suspect_buckets.discard(bucket_id)

    def multi_put(self, items: list[tuple[str, object]], run_batches=None) -> None:
        """Store a batch of key/value pairs, grouping keys by replica bucket.

        Each live bucket receives all of its keys in one
        :meth:`~repro.dht.storage.BucketStore.multi_put` call — one lock
        acquisition per bucket per batch instead of one per key.  Like
        :meth:`put`, every key must reach at least one live replica; the
        batch raises :class:`ProviderUnavailableError` when some key could
        not be stored anywhere.

        ``run_batches`` optionally executes the per-bucket jobs (zero-arg
        callables, one per touched bucket) concurrently; it must return
        their results in order.  Grouping stays in the DHT either way, so
        callers never re-derive placement.  This is the loop-free bridge
        over :meth:`multi_put_async` — the async form is the ONLY
        implementation (see :mod:`repro.aio`).
        """
        run_sync(self.multi_put_async(items, ensure_runtime(run_batches)))

    async def multi_put_async(
        self, items: list[tuple[str, object]], runtime: IORuntime
    ) -> None:
        """Awaitable :meth:`multi_put`: the per-bucket jobs execute on
        *runtime* (inline, pooled, or interleaved on the event loop)."""
        if not items:
            return
        by_bucket: dict[str, list[int]] = {}
        for index, (key, _value) in enumerate(items):
            for bucket_id in self.buckets_for(key):
                by_bucket.setdefault(bucket_id, []).append(index)

        def make_attempt(bucket_id: str, indices: list[int]):
            bucket = self._buckets[bucket_id]
            return lambda: bucket.multi_put([items[index] for index in indices])

        groups = list(by_bucket.items())
        outcomes = await dispatch_jobs(
            runtime,
            groups,
            make_attempt,
            retry=self._retry,
            capture=(ProviderUnavailableError,),
        )
        replicas_stored = [0] * len(items)
        last_error: ProviderUnavailableError | None = None
        for (_bucket_id, indices), outcome in zip(groups, outcomes):
            if isinstance(outcome, ProviderUnavailableError):
                last_error = outcome
                continue
            for index in indices:
                replicas_stored[index] += 1
        if last_error is not None and any(
            stored == 0 for stored in replicas_stored
        ):
            raise last_error

    def multi_get(self, keys: list[str], run_batches=None) -> list[object]:
        """Fetch a batch of keys; returns values aligned with ``keys``.

        Keys are grouped by bucket and resolved replica wave by replica
        wave: every key is first looked up on its primary replica (one
        :meth:`~repro.dht.storage.BucketStore.multi_get` per bucket — one
        lock acquisition per bucket per batch), and only keys whose replica
        was dead or missing move on to the next replica.  Like :meth:`get`,
        a key raises :class:`ProviderUnavailableError` when ANY of its
        replicas was dead and no live replica served it (the dead replica
        may hold the value), and :class:`MetadataNotFoundError` only when
        every replica was probed live and lacked it.

        ``run_batches`` optionally executes the per-bucket lookup jobs of
        one replica wave concurrently (see :meth:`multi_put`).  Loop-free
        bridge over :meth:`multi_get_async`.
        """
        return run_sync(self.multi_get_async(keys, ensure_runtime(run_batches)))

    async def multi_get_async(
        self, keys: list[str], runtime: IORuntime
    ) -> list[object]:
        """Awaitable :meth:`multi_get` (see there for replica semantics)."""
        values, unavailable = await self._resolve_replica_waves(keys, runtime)
        for key in keys:
            if key not in values:
                if key in unavailable:
                    raise unavailable[key]
                raise MetadataNotFoundError(key)
        return [values[key] for key in keys]

    def try_multi_get(
        self, keys: list[str], run_batches=None
    ) -> list[object | None]:
        """Miss-tolerant :meth:`multi_get`: absent keys yield ``None``.

        Used by speculative prefetch (DESIGN.md §9), where most looked-up
        keys may legitimately not exist: a missing key — including one
        whose replicas were all unavailable — produces a ``None`` slot
        instead of an exception, so a misprediction costs nothing but the
        wasted lookup.  Never raises for per-key outcomes.
        """
        return run_sync(
            self.try_multi_get_async(keys, ensure_runtime(run_batches))
        )

    async def try_multi_get_async(
        self, keys: list[str], runtime: IORuntime
    ) -> list[object | None]:
        """Awaitable :meth:`try_multi_get`."""
        values, _unavailable = await self._resolve_replica_waves(keys, runtime)
        return [values.get(key) for key in keys]

    async def _resolve_replica_waves(
        self, keys: list[str], runtime: IORuntime
    ) -> tuple[dict[str, object], dict[str, ProviderUnavailableError]]:
        """Resolve *keys* replica wave by replica wave.

        Returns ``(values, unavailable)``: the served values and, for keys
        no live replica served, the sticky unavailability observed on the
        way (see :meth:`multi_get` for why a live miss does not erase it).
        With replica routing enabled each key walks its replicas in ranked
        order (suspect buckets last) instead of placement order.
        """
        values: dict[str, object] = {}
        unavailable: dict[str, ProviderUnavailableError] = {}
        pending = list(dict.fromkeys(keys))
        ranked = {key: self._ranked_buckets_for(key) for key in pending}
        for attempt in range(self._replication):
            if not pending:
                break
            by_bucket: dict[str, list[str]] = {}
            for key in pending:
                replicas = ranked[key]
                if attempt < len(replicas):
                    by_bucket.setdefault(replicas[attempt], []).append(key)

            def make_attempt(bucket_id: str, bucket_keys: list[str]):
                bucket = self._buckets[bucket_id]
                return lambda: bucket.multi_get(bucket_keys)

            groups = list(by_bucket.items())
            with span("dht.wave", attempt=attempt, buckets=len(groups)):
                outcomes = await dispatch_jobs(
                    runtime,
                    groups,
                    make_attempt,
                    retry=self._retry,
                    capture=(ProviderUnavailableError,),
                )
            retry: list[str] = []
            for (bucket_id, bucket_keys), outcome in zip(groups, outcomes):
                if isinstance(outcome, ProviderUnavailableError):
                    self._note_bucket_unavailable(bucket_id)
                    for key in bucket_keys:
                        unavailable[key] = outcome
                    retry.extend(bucket_keys)
                    continue
                self._note_bucket_served(bucket_id)
                found, missing = outcome
                values.update(found)
                for key in found:
                    unavailable.pop(key, None)
                # A live replica missing the key is NOT authoritative (the
                # key may live only on a replica that was down during the
                # put), so an earlier replica's recorded unavailability must
                # survive the miss: if no replica ends up serving the key,
                # the caller gets ProviderUnavailableError, not a wrong
                # "not found".
                retry.extend(missing)
            pending = retry
        return values, unavailable

    def primary_groups(self, keys: list[str]) -> list[list[int]]:
        """Group key positions by primary replica bucket, preserving order.

        The pipelined metadata traversal uses this to fan one frontier out
        as one independent fetch task per bucket, so a slow bucket no
        longer gates the expansion of every other bucket's children.
        """
        by_bucket: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            by_bucket.setdefault(self.buckets_for(key)[0], []).append(index)
        return list(by_bucket.values())

    def contains(self, key: str) -> bool:
        for bucket_id in self.buckets_for(key):
            try:
                if self._buckets[bucket_id].contains(key):
                    return True
            except ProviderUnavailableError:
                continue
        return False

    def delete(self, key: str) -> bool:
        deleted = False
        for bucket_id in self.buckets_for(key):
            try:
                deleted = self._buckets[bucket_id].delete(key) or deleted
            except ProviderUnavailableError:
                continue
        return deleted

    # -- introspection -----------------------------------------------------
    def stats(self) -> DHTStats:
        """Aggregate statistics across buckets (used by benchmarks/tests)."""
        total = DHTStats(buckets=len(self._buckets))
        for store in self._buckets.values():
            snap = store.stats
            total.puts += snap.puts
            total.gets += snap.gets
            total.hits += snap.hits
            total.misses += snap.misses
            total.keys += snap.keys
            total.batch_gets += snap.batch_gets
            total.batch_puts += snap.batch_puts
            total.max_keys_per_bucket = max(total.max_keys_per_bucket, snap.keys)
        return total

    def load_distribution(self) -> dict[str, int]:
        """Return the number of keys stored per bucket."""
        return {bucket_id: len(store) for bucket_id, store in self._buckets.items()}
