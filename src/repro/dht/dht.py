"""Client-facing DHT combining placement, replication and bucket stores.

The DHT stores metadata tree nodes for the metadata provider (Section 4.1 of
the paper: "Tree nodes are stored on the metadata provider in a distributed
way, using a simple DHT").  Values are written to ``replication`` buckets and
read from the first live replica, which is the minimal fault-tolerance hook
the paper defers to future work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import MetadataNotFoundError, ProviderUnavailableError
from .hashing import HashPlacement, make_placement
from .storage import BucketStore


@dataclass
class DHTStats:
    """Aggregate access statistics across all buckets."""

    puts: int = 0
    gets: int = 0
    hits: int = 0
    misses: int = 0
    keys: int = 0
    buckets: int = 0

    @property
    def max_keys_per_bucket(self) -> int:  # populated by DHT.stats()
        return getattr(self, "_max_keys_per_bucket", 0)


class DHT:
    """A replicated key/value store spread over :class:`BucketStore` nodes."""

    def __init__(
        self,
        num_buckets: int,
        strategy: str = "static",
        replication: int = 1,
        bucket_id_prefix: str = "meta",
    ):
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        bucket_ids = [f"{bucket_id_prefix}-{index:04d}" for index in range(num_buckets)]
        self._buckets: dict[str, BucketStore] = {
            bucket_id: BucketStore(bucket_id) for bucket_id in bucket_ids
        }
        self._placement: HashPlacement = make_placement(strategy, bucket_ids)
        self._replication = min(replication, num_buckets)
        self._lock = threading.Lock()

    # -- topology ----------------------------------------------------------
    @property
    def replication(self) -> int:
        return self._replication

    def bucket_ids(self) -> list[str]:
        return list(self._buckets)

    def bucket(self, bucket_id: str) -> BucketStore:
        return self._buckets[bucket_id]

    def buckets_for(self, key: str) -> list[str]:
        """Return the replica bucket ids responsible for *key*."""
        return self._placement.buckets_for(key, self._replication)

    def kill_bucket(self, bucket_id: str) -> None:
        self._buckets[bucket_id].kill()

    def revive_bucket(self, bucket_id: str) -> None:
        self._buckets[bucket_id].revive()

    # -- key/value API -----------------------------------------------------
    def put(self, key: str, value: object) -> None:
        """Store *value* on every live replica bucket of *key*.

        The write succeeds when at least one replica accepted it; it raises
        :class:`ProviderUnavailableError` only if every replica is down.
        """
        stored = 0
        last_error: ProviderUnavailableError | None = None
        for bucket_id in self.buckets_for(key):
            try:
                self._buckets[bucket_id].put(key, value)
                stored += 1
            except ProviderUnavailableError as error:
                last_error = error
        if stored == 0 and last_error is not None:
            raise last_error

    def get(self, key: str) -> object:
        """Return the value stored under *key* from the first live replica."""
        last_error: Exception | None = None
        for bucket_id in self.buckets_for(key):
            try:
                return self._buckets[bucket_id].get(key)
            except ProviderUnavailableError as error:
                last_error = error
            except MetadataNotFoundError as error:
                last_error = error
        if isinstance(last_error, ProviderUnavailableError):
            raise last_error
        raise MetadataNotFoundError(key)

    def contains(self, key: str) -> bool:
        for bucket_id in self.buckets_for(key):
            try:
                if self._buckets[bucket_id].contains(key):
                    return True
            except ProviderUnavailableError:
                continue
        return False

    def delete(self, key: str) -> bool:
        deleted = False
        for bucket_id in self.buckets_for(key):
            try:
                deleted = self._buckets[bucket_id].delete(key) or deleted
            except ProviderUnavailableError:
                continue
        return deleted

    # -- introspection -----------------------------------------------------
    def stats(self) -> DHTStats:
        """Aggregate statistics across buckets (used by benchmarks/tests)."""
        total = DHTStats(buckets=len(self._buckets))
        max_keys = 0
        for store in self._buckets.values():
            snap = store.stats
            total.puts += snap.puts
            total.gets += snap.gets
            total.hits += snap.hits
            total.misses += snap.misses
            total.keys += snap.keys
            max_keys = max(max_keys, snap.keys)
        total._max_keys_per_bucket = max_keys  # type: ignore[attr-defined]
        return total

    def load_distribution(self) -> dict[str, int]:
        """Return the number of keys stored per bucket."""
        return {bucket_id: len(store) for bucket_id, store in self._buckets.items()}
