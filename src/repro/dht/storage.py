"""Per-node bucket store backing the metadata DHT.

A :class:`BucketStore` is the state held by one metadata provider process in
the paper: a key/value map guarded by a lock.  It tracks access statistics
(used by the benchmarks to show how load spreads over metadata providers) and
supports failure injection (``kill`` / ``revive``) for the fault-tolerance
tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import MetadataNotFoundError, ProviderUnavailableError


@dataclass
class BucketStats:
    """Access counters of a single bucket store.

    ``batch_gets`` / ``batch_puts`` count *lock acquisitions* made by the
    batched multi-key operations: one per :meth:`BucketStore.multi_get` /
    :meth:`BucketStore.multi_put` call, however many keys the batch holds.
    ``gets`` / ``puts`` keep counting individual keys, so the per-key
    counters are unchanged by batching.
    """

    #: Individual keys written into this bucket.
    puts: int = 0
    #: Individual keys looked up in this bucket.
    gets: int = 0
    #: Lookups that found their key.
    hits: int = 0
    #: Lookups that missed.
    misses: int = 0
    #: Keys currently stored in this bucket.
    keys: int = 0
    #: Lock acquisitions made by batched multi-key gets.
    batch_gets: int = 0
    #: Lock acquisitions made by batched multi-key puts.
    batch_puts: int = 0

    def snapshot(self) -> "BucketStats":
        return BucketStats(
            self.puts,
            self.gets,
            self.hits,
            self.misses,
            self.keys,
            self.batch_gets,
            self.batch_puts,
        )


class BucketStore:
    """Thread-safe key/value store held by one metadata provider node."""

    def __init__(self, bucket_id: str):
        self.bucket_id = bucket_id
        self._items: dict[str, object] = {}
        self._lock = threading.Lock()
        self._alive = True
        self._stats = BucketStats()

    # -- failure injection -------------------------------------------------
    def kill(self) -> None:
        """Simulate a crash: further accesses raise ProviderUnavailableError."""
        with self._lock:
            self._alive = False

    def revive(self) -> None:
        """Bring a killed bucket back (its contents survive, as a restart)."""
        with self._lock:
            self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    def _check_alive(self) -> None:
        if not self._alive:
            raise ProviderUnavailableError(self.bucket_id)

    # -- key/value API -----------------------------------------------------
    def put(self, key: str, value: object, overwrite: bool = True) -> None:
        """Store *value* under *key*.

        Metadata tree nodes are immutable once written, so callers normally
        leave ``overwrite`` True only because re-publishing the identical
        node is harmless (idempotent writes from retries).
        """
        with self._lock:
            self._check_alive()
            if not overwrite and key in self._items:
                return
            self._items[key] = value
            self._stats.puts += 1
            self._stats.keys = len(self._items)

    def get(self, key: str) -> object:
        """Return the value stored under *key*.

        Raises :class:`MetadataNotFoundError` when the key is absent.
        """
        with self._lock:
            self._check_alive()
            self._stats.gets += 1
            if key not in self._items:
                self._stats.misses += 1
                raise MetadataNotFoundError(key)
            self._stats.hits += 1
            return self._items[key]

    def multi_put(self, items: list[tuple[str, object]]) -> None:
        """Store a batch of key/value pairs under one lock acquisition.

        The batch is all-or-nothing with respect to liveness: a killed
        bucket rejects the whole batch with
        :class:`ProviderUnavailableError` before storing anything.
        """
        with self._lock:
            self._check_alive()
            for key, value in items:
                self._items[key] = value
                self._stats.puts += 1
            self._stats.batch_puts += 1
            self._stats.keys = len(self._items)

    def multi_get(
        self, keys: list[str]
    ) -> tuple[dict[str, object], list[str]]:
        """Look up a batch of keys under one lock acquisition.

        Returns ``(found, missing)``: the values of the keys present in this
        bucket, and the keys that are not — absence is *reported*, not
        raised, so a replicated caller can retry only the missing keys on the
        next replica.  A killed bucket raises
        :class:`ProviderUnavailableError` for the whole batch.
        """
        with self._lock:
            self._check_alive()
            found: dict[str, object] = {}
            missing: list[str] = []
            for key in keys:
                self._stats.gets += 1
                if key in self._items:
                    self._stats.hits += 1
                    found[key] = self._items[key]
                else:
                    self._stats.misses += 1
                    missing.append(key)
            self._stats.batch_gets += 1
            return found, missing

    def contains(self, key: str) -> bool:
        with self._lock:
            self._check_alive()
            return key in self._items

    def delete(self, key: str) -> bool:
        """Remove *key*; return True when it existed."""
        with self._lock:
            self._check_alive()
            existed = self._items.pop(key, None) is not None
            self._stats.keys = len(self._items)
            return existed

    def keys(self) -> list[str]:
        with self._lock:
            self._check_alive()
            return list(self._items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def stats(self) -> BucketStats:
        with self._lock:
            return self._stats.snapshot()
