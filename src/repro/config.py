"""Configuration objects for BlobSeer deployments and simulations.

Two dataclasses are exposed:

* :class:`BlobSeerConfig` — parameters of a storage deployment (page size,
  number of providers, allocation strategy, replication, timeouts).
* :class:`SimConfig` — parameters of the simulated Grid'5000-like testbed
  used by the benchmark harness (NIC bandwidth, latency, per-request
  overheads), mirroring the figures reported in Section 5 of the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from .errors import ConfigurationError

#: Kibibyte / mebibyte / gibibyte helpers used throughout the code base.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Default page size used by the paper's experiments (64 KiB).
DEFAULT_PAGE_SIZE = 64 * KiB

#: Defaults of the client-side metadata node cache (see :mod:`repro.cache`).
#: Tree nodes are immutable, so the cache never invalidates; the budgets only
#: bound memory.  128Ki entries ≈ the full tree of a 64 Ki-page blob; 64 MiB
#: comfortably holds that at the ~150-byte estimated per-entry footprint.
DEFAULT_METADATA_CACHE_ENTRIES = 128 * 1024
DEFAULT_METADATA_CACHE_BYTES = 64 * MiB
DEFAULT_METADATA_CACHE_SHARDS = 8

#: Defaults of the client-side page payload cache (see
#: :mod:`repro.cache.page_cache`).  Published pages are immutable, so the
#: cache never invalidates (except for GC); the byte budget is the knob that
#: bounds client memory because payload bytes dominate each entry's weight.
DEFAULT_PAGE_CACHE_ENTRIES = 64 * 1024
DEFAULT_PAGE_CACHE_BYTES = 256 * MiB
DEFAULT_PAGE_CACHE_SHARDS = 8

#: Feature knobs of :class:`BlobSeerConfig`: boolean fields that gate an
#: optional behaviour which must be a provable no-op when off (the
#: perf-gate's ``--exact-columns`` pins that guarantee).  Reading one of
#: these fields directly outside this module is a lint violation
#: (``RPR004 ungated-feature-knob``); every read goes through
#: :meth:`BlobSeerConfig.feature_enabled` so the gates stay auditable.
FEATURE_KNOBS: tuple[str, ...] = (
    "speculative_prefetch",
    "replica_routing",
    "peer_caching",
    "tracing",
)

#: Defaults of the client-side version-lease cache (see :mod:`repro.vm`).
#: Publish notifications keep leases coherent in-process; the TTL bounds
#: staleness when a notification is lost, and the entry budget bounds the
#: per-client memory for leases and immutable VM facts (records, sizes).
DEFAULT_VM_LEASE_TTL = 5.0
DEFAULT_VM_LEASE_ENTRIES = 4096


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def is_power_of_two(value: int) -> bool:
    """Return True when *value* is a strictly positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class BlobSeerConfig:
    """Static configuration of a BlobSeer deployment.

    Parameters
    ----------
    page_size:
        Size of a page in bytes.  Must be a power of two (the segment tree
        relies on halving ranges exactly).
    num_data_providers:
        Number of data provider processes in the deployment.
    num_metadata_providers:
        Number of DHT buckets / metadata provider processes.
    metadata_replication:
        Number of DHT buckets each metadata node is stored on.  Reads fall
        through dead buckets to the next replica (see
        :meth:`repro.dht.DHT.multi_get`), so a deployment survives up to
        ``metadata_replication - 1`` simultaneous bucket failures.
    page_replication:
        Number of distinct data providers each page is stored on.  Reads
        fail over to the next live replica when a provider is dead
        (reported via ``ReadStats.failovers``/``degraded``), and the
        background :class:`repro.fault.RepairService` re-replicates pages
        that lost copies.  ``1`` (the default) reproduces the paper's
        single-home layout bit-identically on the wire.
    replication:
        Deprecated alias for ``metadata_replication``, kept for backward
        compatibility.  Earlier revisions documented this knob as covering
        "each page and each metadata node" while only metadata was ever
        replicated; the knob is now split so the two legs are controlled
        (and validated) independently.  Setting both ``replication`` and
        ``metadata_replication`` to conflicting values is an error.
    retry_attempts:
        Maximum attempts (initial try + retries) a
        :class:`repro.fault.RetryPolicy` makes for one provider/DHT batch
        call that failed with a retryable error (see
        :func:`repro.errors.is_retryable`).  ``1`` (the default) disables
        retries entirely, matching pre-fault-tolerance behaviour.
    retry_backoff_base / retry_backoff_max:
        Exponential-backoff schedule between retry attempts: attempt *n*
        sleeps ``min(retry_backoff_base * 2**(n-1), retry_backoff_max)``
        seconds before jitter.
    retry_jitter:
        Fraction (0..1) of each backoff delay randomized away to avoid
        retry stampedes: the actual sleep is uniformly drawn from
        ``[delay * (1 - retry_jitter), delay]``.
    suspect_after:
        Consecutive failures after which :class:`repro.fault.ProviderHealth`
        marks a provider *suspect*; allocation steers new pages away from
        suspects (unless no other provider is available) until a successful
        call — or an explicit revival probe — clears the suspicion.
    allocation_strategy:
        Name of the page-to-provider allocation strategy registered with the
        provider manager (``"round_robin"``, ``"random"``, ``"least_loaded"``).
    dht_strategy:
        Key distribution scheme of the metadata DHT: ``"static"`` (modulo
        hashing, as in the paper's custom DHT) or ``"consistent"`` (hash
        ring).
    update_timeout:
        Seconds after which the version manager may abort an in-flight update
        that never completed, so publication of later versions is not stalled
        forever.  ``None`` disables the timeout (paper behaviour).
    verify_checksums:
        When True, page payloads are checksummed on write and verified on
        read.
    encode_metadata:
        When True, metadata tree nodes are serialized to their wire format
        (see :mod:`repro.metadata.serialization`) before being stored in the
        DHT, as a networked deployment would ship them.
    metadata_cache_entries / metadata_cache_bytes / metadata_cache_shards:
        Budgets of the client-side LRU cache for immutable metadata tree
        nodes (:class:`repro.cache.NodeCache`).  A cluster whose knobs equal
        the process defaults joins the process-wide shared cache
        (:func:`repro.cache.shared_node_cache`); custom budgets give the
        cluster a dedicated instance.
    page_cache_entries / page_cache_bytes / page_cache_shards:
        Budgets of the client-side LRU cache for immutable page payload
        ranges (:class:`repro.cache.PageCache`).  Stored pages are never
        overwritten, so warm repeated reads are served from memory and skip
        the data providers entirely.  A cluster whose knobs equal the
        process defaults joins the process-wide shared cache
        (:func:`repro.cache.shared_page_cache`); custom budgets give the
        cluster a dedicated instance.  ``page_cache_entries=None`` disables
        page caching for the whole deployment.
    vm_lease_ttl / vm_lease_entries:
        Budgets of the client-side version-lease cache
        (:class:`repro.vm.LeaseCache`): leased ``GET_RECENT`` answers are
        renewed by publish notifications and expire after ``vm_lease_ttl``
        seconds; ``vm_lease_entries`` bounds both the lease map and the
        immutable-fact map (blob records, published snapshot sizes).
        ``vm_lease_ttl=None`` disables version leasing for the whole
        deployment (every read pays its version-manager round trips).
    speculative_prefetch:
        When True, the pipelined metadata descent predicts the child spans
        of a missed frontier node from the requested byte range's geometry
        and issues their DHT multi-get *before* the authoritative parent
        returns (DESIGN.md §9).  Speculation never changes the bytes read
        or the authoritative counters; over-fetch is reported via
        ``ReadStats.speculative_wasted``.  Off by default — the sync
        level-by-level walk ignores the knob, and async==sync counter
        equality is only guaranteed with it off.
    replica_routing:
        When True (the default), replicated reads rank the replica set
        before fetching instead of always starting at replica 0: locally
        preferred replicas first, :class:`repro.fault.ProviderHealth`
        suspects last (see :func:`repro.fault.rank_replicas`).  With no
        locality signal and no suspects the ranking is a stable no-op, so
        unreplicated deployments behave bit-identically.
    peer_caching:
        When True (the default), a store attached to a
        :class:`repro.cache.PeerCacheGroup` probes co-located peers'
        caches for immutable nodes and pages before paying a provider
        round trip (``ReadStats.peer_cache_hits``).  Inert unless a peer
        group is attached.
    tracing:
        When True, the cluster creates a :class:`repro.obs.Tracer` and
        registers its components as pull sources of the process-wide
        :class:`repro.obs.MetricsRegistry`; every store operation then
        opens a root span whose children cover the version-manager,
        metadata and data legs (DESIGN.md §11).  Off by default — the
        disabled path records nothing, registers nothing, and leaves
        every counter and timing bit-identical.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    num_data_providers: int = 16
    num_metadata_providers: int = 16
    replication: int | None = None
    metadata_replication: int | None = None
    page_replication: int = 1
    retry_attempts: int = 1
    retry_backoff_base: float = 0.05
    retry_backoff_max: float = 1.0
    retry_jitter: float = 0.5
    suspect_after: int = 3
    allocation_strategy: str = "round_robin"
    dht_strategy: str = "static"
    update_timeout: float | None = None
    verify_checksums: bool = False
    encode_metadata: bool = False
    metadata_cache_entries: int = DEFAULT_METADATA_CACHE_ENTRIES
    metadata_cache_bytes: int = DEFAULT_METADATA_CACHE_BYTES
    metadata_cache_shards: int = DEFAULT_METADATA_CACHE_SHARDS
    page_cache_entries: int | None = DEFAULT_PAGE_CACHE_ENTRIES
    page_cache_bytes: int = DEFAULT_PAGE_CACHE_BYTES
    page_cache_shards: int = DEFAULT_PAGE_CACHE_SHARDS
    vm_lease_ttl: float | None = DEFAULT_VM_LEASE_TTL
    vm_lease_entries: int = DEFAULT_VM_LEASE_ENTRIES
    speculative_prefetch: bool = False
    replica_routing: bool = True
    peer_caching: bool = True
    tracing: bool = False

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.page_size),
                 f"page_size must be a power of two, got {self.page_size}")
        _require(self.num_data_providers >= 1,
                 "num_data_providers must be >= 1")
        _require(self.num_metadata_providers >= 1,
                 "num_metadata_providers must be >= 1")
        # Resolve the deprecated ``replication`` alias: after construction
        # both names hold the same (integer) metadata replication factor.
        if self.replication is not None:
            warnings.warn(
                "BlobSeerConfig.replication is deprecated; use "
                "metadata_replication (and page_replication for the data "
                "path) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        metadata_replication = self.metadata_replication
        if metadata_replication is None:
            if self.replication is None:
                metadata_replication = 1
            else:
                # The deprecated knob keeps its historical validation
                # envelope (bounded by the data-provider count) and its
                # historical clamp to the bucket count, so configs written
                # against the old combined knob keep working unchanged.
                _require(1 <= self.replication <= self.num_data_providers,
                         "replication must be between 1 and "
                         "num_data_providers")
                metadata_replication = min(
                    self.replication, self.num_metadata_providers
                )
        else:
            if (self.replication is not None
                    and self.replication != metadata_replication):
                raise ConfigurationError(
                    "replication (deprecated alias) and metadata_replication "
                    f"conflict: {self.replication} != {metadata_replication}"
                )
            _require(1 <= metadata_replication <= self.num_metadata_providers,
                     "metadata_replication must be between 1 and "
                     "num_metadata_providers")
        object.__setattr__(self, "metadata_replication", metadata_replication)
        object.__setattr__(self, "replication", metadata_replication)
        _require(1 <= self.page_replication <= self.num_data_providers,
                 "page_replication must be between 1 and num_data_providers")
        _require(self.retry_attempts >= 1,
                 "retry_attempts must be >= 1 (1 disables retries)")
        _require(self.retry_backoff_base >= 0,
                 "retry_backoff_base must be >= 0")
        _require(self.retry_backoff_max >= self.retry_backoff_base,
                 "retry_backoff_max must be >= retry_backoff_base")
        _require(0 <= self.retry_jitter <= 1,
                 "retry_jitter must be between 0 and 1")
        _require(self.suspect_after >= 1, "suspect_after must be >= 1")
        _require(self.allocation_strategy in
                 ("round_robin", "random", "least_loaded"),
                 f"unknown allocation strategy {self.allocation_strategy!r}")
        _require(self.dht_strategy in ("static", "consistent"),
                 f"unknown dht strategy {self.dht_strategy!r}")
        if self.update_timeout is not None:
            _require(self.update_timeout > 0, "update_timeout must be > 0")
        _require(self.metadata_cache_entries >= 1,
                 "metadata_cache_entries must be >= 1")
        _require(self.metadata_cache_bytes >= 1,
                 "metadata_cache_bytes must be >= 1")
        _require(self.metadata_cache_shards >= 1,
                 "metadata_cache_shards must be >= 1")
        if self.page_cache_entries is not None:
            _require(self.page_cache_entries >= 1,
                     "page_cache_entries must be >= 1 (None disables "
                     "page caching)")
        _require(self.page_cache_bytes >= 1,
                 "page_cache_bytes must be >= 1")
        _require(self.page_cache_shards >= 1,
                 "page_cache_shards must be >= 1")
        if self.vm_lease_ttl is not None:
            _require(self.vm_lease_ttl > 0,
                     "vm_lease_ttl must be > 0 (None disables leasing)")
        _require(self.vm_lease_entries >= 1,
                 "vm_lease_entries must be >= 1")

    def feature_enabled(self, knob: str) -> bool:
        """The single chokepoint for reading a feature knob.

        Every optional behaviour (:data:`FEATURE_KNOBS`) must be a provable
        no-op when its knob is off; funnelling reads through this helper is
        what lets the lint pass (``RPR004``) enforce that no code path
        consults a knob outside its gate.  Unknown names raise — a typo'd
        gate must fail loudly, not silently disable a feature.
        """
        if knob not in FEATURE_KNOBS:
            raise ConfigurationError(
                f"unknown feature knob {knob!r}; expected one of {FEATURE_KNOBS}"
            )
        return bool(getattr(self, knob))

    @property
    def uses_default_cache_budgets(self) -> bool:
        """True when the cache knobs equal the process-wide defaults."""
        return (
            self.metadata_cache_entries == DEFAULT_METADATA_CACHE_ENTRIES
            and self.metadata_cache_bytes == DEFAULT_METADATA_CACHE_BYTES
            and self.metadata_cache_shards == DEFAULT_METADATA_CACHE_SHARDS
        )

    @property
    def uses_default_page_cache_budgets(self) -> bool:
        """True when the page-cache knobs equal the process-wide defaults."""
        return (
            self.page_cache_entries == DEFAULT_PAGE_CACHE_ENTRIES
            and self.page_cache_bytes == DEFAULT_PAGE_CACHE_BYTES
            and self.page_cache_shards == DEFAULT_PAGE_CACHE_SHARDS
        )


@dataclass(frozen=True)
class SimConfig:
    """Parameters of the simulated testbed (Grid'5000 Rennes, Section 5).

    The paper reports 1 Gbit/s intra-cluster links with a measured TCP
    throughput of 117.5 MB/s and a latency of 0.1 ms.  Per-request overheads
    model the fixed cost of an RPC (connection reuse, marshalling) beyond the
    raw link latency, and a small service time at the version manager models
    the serialization of version assignment (paper Section 4.3).
    """

    #: Payload bandwidth of a node's NIC in bytes/second (measured TCP).
    nic_bandwidth: float = 117.5 * MiB
    #: Local memory-copy bandwidth in bytes/second: what serving a page
    #: range from the machine's own page cache costs instead of the NIC.
    #: Fully warm reads are bounded by this, not the network — set
    #: conservatively to a 2009-era single-stream memcpy.
    memory_bandwidth: float = 2 * GiB
    #: One-way network latency in seconds.
    latency: float = 0.1e-3
    #: Fixed per-request software overhead charged at the data path endpoints
    #: (TCP request/response handling, marshalling) in seconds.
    rpc_overhead: float = 0.15e-3
    #: Per-message overhead of the (small, pipelined) metadata/DHT messages.
    metadata_rpc_overhead: float = 0.02e-3
    #: Serialized service time of one version-manager request, in seconds.
    version_manager_service_time: float = 0.02e-3
    #: Serialized service time of one DHT get/put at a metadata provider.
    metadata_service_time: float = 0.01e-3
    #: Bytes of an encoded metadata tree node travelling over the network.
    metadata_node_size: int = 128
    #: Per-page service time at a data provider (buffer handling, disk cache).
    page_service_time: float = 0.03e-3
    #: Per-page marshalling cost at the endpoint that serializes the payload
    #: of a *batched* multi-page request (framing, per-page checksum,
    #: descriptor bookkeeping).  Batching amortizes ``rpc_overhead`` across
    #: a batch but cannot remove this per-page share of the work, which is
    #: what keeps larger pages faster (Figure 2(a)) even with batching.
    page_marshalling_time: float = 0.08e-3
    #: Fixed framing overhead of one cooperative peer-cache batch probe
    #: (DESIGN.md §9): a single short RPC to a co-located machine, far
    #: below the data path's ``rpc_overhead`` because there is no
    #: marshalling of payload descriptors, just cache keys.
    peer_rpc_overhead: float = 0.02e-3
    #: Per-item service time of a peer-cache hit at the serving peer (one
    #: cache lookup + handing the immutable buffer to the NIC).  Payload
    #: bytes still cross the network at ``nic_bandwidth``; this replaces
    #: the provider's ``page_service_time + page_marshalling_time`` share.
    peer_page_time: float = 0.01e-3

    def __post_init__(self) -> None:
        _require(self.nic_bandwidth > 0, "nic_bandwidth must be > 0")
        _require(self.memory_bandwidth > 0, "memory_bandwidth must be > 0")
        _require(self.latency >= 0, "latency must be >= 0")
        _require(self.rpc_overhead >= 0, "rpc_overhead must be >= 0")
        _require(self.metadata_rpc_overhead >= 0,
                 "metadata_rpc_overhead must be >= 0")
        _require(self.version_manager_service_time >= 0,
                 "version_manager_service_time must be >= 0")
        _require(self.metadata_service_time >= 0,
                 "metadata_service_time must be >= 0")
        _require(self.metadata_node_size >= 0,
                 "metadata_node_size must be >= 0")
        _require(self.page_service_time >= 0, "page_service_time must be >= 0")
        _require(self.page_marshalling_time >= 0,
                 "page_marshalling_time must be >= 0")
        _require(self.peer_rpc_overhead >= 0,
                 "peer_rpc_overhead must be >= 0")
        _require(self.peer_page_time >= 0, "peer_page_time must be >= 0")


#: Simulation profile matching the paper's measured testbed numbers.
GRID5000_PROFILE = SimConfig()


@dataclass(frozen=True)
class DeploymentPlan:
    """How many nodes play each role in a (simulated) deployment.

    The paper co-deploys a data provider and a metadata provider on every
    non-dedicated node, and dedicates one node to the version manager and one
    to the provider manager.
    """

    num_provider_nodes: int = 173
    clients: int = 1
    co_deploy_metadata: bool = True

    def __post_init__(self) -> None:
        _require(self.num_provider_nodes >= 1,
                 "num_provider_nodes must be >= 1")
        _require(self.clients >= 1, "clients must be >= 1")

    @property
    def num_data_providers(self) -> int:
        return self.num_provider_nodes

    @property
    def num_metadata_providers(self) -> int:
        return self.num_provider_nodes if self.co_deploy_metadata else 1
