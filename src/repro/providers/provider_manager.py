"""The provider manager: tracks data providers and allocates pages to them."""

from __future__ import annotations

import threading
from collections.abc import Sequence

from ..errors import NoProvidersError, ShortReadError
from .allocation import AllocationStrategy, RoundRobinAllocation
from .data_provider import DataProvider


class ProviderManager:
    """Keeps information about available storage space (Section 3.1).

    Joining data providers register here; the manager answers client requests
    for "a list of n page providers capable of storing the pages" (WRITE,
    Algorithm 2, line 2).  The manager also supports deregistration and
    skips providers known to be dead, which is the hook used by the
    fault-injection tests.
    """

    def __init__(self, strategy: AllocationStrategy | None = None):
        self._strategy = strategy if strategy is not None else RoundRobinAllocation()
        self._providers: dict[str, DataProvider] = {}
        self._allocatable: set[str] = set()
        self._lock = threading.Lock()

    # -- membership ----------------------------------------------------------
    def register(self, provider: DataProvider) -> None:
        """Register a data provider (idempotent)."""
        with self._lock:
            self._providers[provider.provider_id] = provider
            self._allocatable.add(provider.provider_id)

    def deregister(self, provider_id: str) -> None:
        """Stop allocating new pages to a provider.

        The provider stays in the directory so pages already stored on it
        remain readable.
        """
        with self._lock:
            self._allocatable.discard(provider_id)

    def provider(self, provider_id: str) -> DataProvider:
        with self._lock:
            return self._providers[provider_id]

    def provider_ids(self) -> list[str]:
        with self._lock:
            return list(self._providers)

    def allocatable_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._allocatable)

    def providers(self) -> list[DataProvider]:
        with self._lock:
            return list(self._providers.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._providers)

    # -- allocation ------------------------------------------------------------
    def allocate(self, count: int) -> list[str]:
        """Return *count* provider ids that should store the next pages.

        Only live, allocatable providers are considered.  Raises
        :class:`NoProvidersError` when none are available.
        """
        if count <= 0:
            return []
        with self._lock:
            live = [
                pid
                for pid, p in self._providers.items()
                if p.alive and pid in self._allocatable
            ]
            providers = dict(self._providers)
        if not live:
            raise NoProvidersError("no live data providers registered")

        def load_of(provider_id: str) -> int:
            return providers[provider_id].bytes_used()

        return self._strategy.select(live, count, load_of)

    def allocate_providers(self, count: int) -> list[DataProvider]:
        """Like :meth:`allocate` but resolves ids to provider objects."""
        ids = self.allocate(count)
        with self._lock:
            return [self._providers[pid] for pid in ids]

    # -- batched data I/O ------------------------------------------------------
    @staticmethod
    def _run_batches_serial(jobs: list) -> list:
        return [job() for job in jobs]

    def _dispatch_batches(
        self, groups: list[tuple[str, list]], call, run_batches
    ) -> list:
        """Run ``call(provider, batch)`` once per ``(provider_id, batch)``
        group via ``run_batches``; outcomes align with ``groups``.

        A job's exception is captured and returned in its slot instead of
        aborting the dispatch, so every live provider's batch completes
        before the caller decides how to surface failures.
        """
        if run_batches is None:
            run_batches = self._run_batches_serial

        def make_job(provider_id: str, batch: list):
            provider = self.provider(provider_id)

            def job():
                try:
                    return call(provider, batch)
                except Exception as error:  # noqa: BLE001 - surfaced by caller
                    return error

            return job

        return run_batches(
            [make_job(provider_id, batch) for provider_id, batch in groups]
        )

    def multi_fetch(
        self,
        requests: Sequence[tuple[str, str, int, int | None]],
        run_batches=None,
    ) -> tuple[list[bytes], int]:
        """Fetch a batch of ``(provider_id, page_id, offset, length)``
        requests, grouped into ONE :meth:`DataProvider.multi_fetch` per
        provider.

        Returns ``(payloads, round_trips)``: the payloads aligned with
        ``requests`` and the number of per-provider batches issued — the
        data-path analogue of a metadata frontier's round-trip count.
        ``run_batches`` optionally executes the per-provider jobs (zero-arg
        callables, one per touched provider) concurrently; it must return
        their results in order.  Grouping stays in the manager (the single
        owner of the provider directory) either way.  A dead provider fails
        its whole batch with :class:`~repro.errors.ProviderUnavailableError`
        after the other providers' batches completed.

        The hot read path uses the zero-copy :meth:`multi_fetch_into`
        instead; this bytes-returning variant serves callers that cannot
        pre-size a destination (``length=None`` reads to the end of a
        page).  Keep the two variants' grouping and failure semantics in
        sync.
        """
        if not requests:
            return [], 0
        by_provider: dict[str, list[int]] = {}
        for index, (provider_id, _page_id, _offset, _length) in enumerate(requests):
            by_provider.setdefault(provider_id, []).append(index)
        groups = list(by_provider.items())
        outcomes = self._dispatch_batches(
            groups,
            lambda provider, indices: provider.multi_fetch(
                [requests[index][1:] for index in indices]
            ),
            run_batches,
        )
        payloads: list[bytes | None] = [None] * len(requests)
        first_error: Exception | None = None
        for (_provider_id, indices), outcome in zip(groups, outcomes):
            if isinstance(outcome, Exception):
                if first_error is None:
                    first_error = outcome
                continue
            for index, payload in zip(indices, outcome):
                payloads[index] = payload
        if first_error is not None:
            raise first_error
        return payloads, len(groups)

    def multi_fetch_into(
        self,
        requests: Sequence[tuple[str, str, int, memoryview]],
        run_batches=None,
        cache=None,
        cache_key=None,
        tally=None,
    ) -> int:
        """Zero-copy variant of :meth:`multi_fetch`: each
        ``(provider_id, page_id, offset, out)`` request carries a writable
        ``memoryview`` and the provider deposits the page bytes directly
        into it (:meth:`DataProvider.multi_fetch_into`) — no per-chunk
        ``bytes`` objects, no second copy at assembly time.

        Returns the number of per-provider batches issued.  Grouping,
        ``run_batches`` execution and failure semantics match
        :meth:`multi_fetch`; the destination views must be disjoint when
        ``run_batches`` executes batches concurrently.

        With ``cache`` (a :class:`~repro.cache.PageCache`) and ``cache_key``
        (``cache_key(page_id, offset, length) -> key``, usually
        :meth:`repro.core.cluster.Cluster.page_cache_key`), cached requests
        are deposited straight into their destination views and never enter
        a provider batch — published pages are immutable, so a cached range
        can never be stale — and misses are write-through-cached after the
        fetch.  An all-hit call costs ZERO provider round trips.  The
        optional ``tally`` (a :class:`~repro.cache.CacheTally`) collects the
        call's hit/fetch/trip counts.

        Every provider batch's byte count is reconciled against the
        requested total — a short read surfaces as
        :class:`~repro.errors.ShortReadError` rather than silently served
        zeros, even for provider implementations that do not self-check.
        """
        if not requests:
            return 0
        misses: Sequence[tuple[str, str, int, memoryview]] = requests
        miss_keys: list | None = None
        if cache is not None and cache_key is not None:
            keys = [
                cache_key(page_id, offset, len(out))
                for _provider_id, page_id, offset, out in requests
            ]
            cached = cache.get_many(keys)
            misses, miss_keys = [], []
            for request, key, value in zip(requests, keys, cached):
                if value is None:
                    misses.append(request)
                    miss_keys.append(key)
                else:
                    out = request[3]
                    out[:] = value
            if tally is not None:
                tally.hits += len(requests) - len(misses)
            if not misses:
                return 0
        by_provider: dict[str, list[tuple[str, int, memoryview]]] = {}
        for provider_id, page_id, offset, out in misses:
            by_provider.setdefault(provider_id, []).append((page_id, offset, out))
        groups = list(by_provider.items())
        outcomes = self._dispatch_batches(
            groups,
            lambda provider, batch: provider.multi_fetch_into(batch),
            run_batches,
        )
        for (provider_id, batch), outcome in zip(groups, outcomes):
            if isinstance(outcome, Exception):
                raise outcome
            expected = sum(len(out) for _page_id, _offset, out in batch)
            if outcome != expected:
                raise ShortReadError(
                    f"batched fetch from provider {provider_id!r}",
                    expected=expected,
                    actual=int(outcome),
                )
        if miss_keys is not None:
            # Write-through AFTER every batch landed: the views now hold the
            # fetched bytes, and a failed call caches nothing.
            cache.put_many(
                [
                    (key, bytes(request[3]))
                    for key, request in zip(miss_keys, misses)
                ]
            )
        if tally is not None:
            tally.fetched += len(misses)
            tally.trips += len(groups)
        return len(groups)

    def multi_store(
        self,
        items: Sequence[tuple[str, str, bytes]],
        run_batches=None,
    ) -> int:
        """Store a batch of ``(provider_id, page_id, payload)`` items, one
        :meth:`DataProvider.multi_store` per provider; return the number of
        per-provider batches issued.

        Unlike the replicated DHT, a page has exactly one home, so any dead
        provider fails the whole call — after the live providers' batches
        completed, leaving the caller to garbage-collect the pages that did
        land (see :meth:`repro.core.blob_store.BlobStore._store_payloads`).
        """
        return self._multi_store(
            items, lambda provider, batch: provider.multi_store(batch), run_batches
        )

    def multi_store_virtual(
        self,
        items: Sequence[tuple[str, str, int]],
        run_batches=None,
    ) -> int:
        """Batched counterpart of :meth:`DataProvider.multi_store_virtual`
        over ``(provider_id, page_id, size)`` items; one batch per provider,
        returning the batch count (see :meth:`multi_store`)."""
        return self._multi_store(
            items,
            lambda provider, batch: provider.multi_store_virtual(batch),
            run_batches,
        )

    def _multi_store(self, items, store, run_batches) -> int:
        if not items:
            return 0
        by_provider: dict[str, list[tuple]] = {}
        for provider_id, page_id, payload in items:
            by_provider.setdefault(provider_id, []).append((page_id, payload))
        groups = list(by_provider.items())
        outcomes = self._dispatch_batches(groups, store, run_batches)
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                raise outcome
        return len(groups)

    # -- introspection -----------------------------------------------------------
    def total_bytes_used(self) -> int:
        return sum(p.bytes_used() for p in self.providers())

    def total_pages(self) -> int:
        return sum(p.page_count() for p in self.providers())

    def load_distribution(self) -> dict[str, int]:
        """Bytes stored per provider — used to validate even distribution."""
        return {p.provider_id: p.bytes_used() for p in self.providers()}

    def imbalance(self) -> float:
        """Return max/mean byte load across providers (1.0 = perfectly even).

        Returns 0.0 when nothing is stored yet.
        """
        loads = list(self.load_distribution().values())
        if not loads or sum(loads) == 0:
            return 0.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean
