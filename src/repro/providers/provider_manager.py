"""The provider manager: tracks data providers and allocates pages to them."""

from __future__ import annotations

import threading
from dataclasses import dataclass
from collections.abc import Sequence

from ..aio import IORuntime, dispatch_jobs, ensure_runtime, run_sync
from ..errors import NoProvidersError, ShortReadError
from ..fault.routing import rank_replicas
from ..obs.trace import span
from .allocation import AllocationStrategy, RoundRobinAllocation
from .data_provider import DataProvider


@dataclass
class FaultTally:
    """Mutable per-call recorder of the read path's fault-tolerance events.

    ``failovers`` counts re-route events (a request's batch failed and the
    request moved to its next replica); ``degraded`` counts requests that
    were ultimately served by a non-primary replica.  A fully healthy read
    leaves both at zero.
    """

    failovers: int = 0
    degraded: int = 0


class ProviderManager:
    """Keeps information about available storage space (Section 3.1).

    Joining data providers register here; the manager answers client requests
    for "a list of n page providers capable of storing the pages" (WRITE,
    Algorithm 2, line 2).  The manager also supports deregistration and
    skips providers known to be dead, which is the hook used by the
    fault-injection tests.

    Fault-tolerance wiring (both optional, see :mod:`repro.fault` and
    DESIGN.md): ``retry_policy`` re-issues failed per-provider batch calls
    for transient errors, and ``health`` records every batch outcome so
    allocation can steer around providers that keep failing.
    """

    def __init__(
        self,
        strategy: AllocationStrategy | None = None,
        retry_policy=None,
        health=None,
        routing: bool = False,
    ):
        self._strategy = strategy if strategy is not None else RoundRobinAllocation()
        self._providers: dict[str, DataProvider] = {}
        self._allocatable: set[str] = set()
        self._lock = threading.Lock()
        self._retry = retry_policy
        self._health = health
        # Replica routing (DESIGN.md §9): with ``routing=True`` replicated
        # fetches walk each page's replica set in ranked order — health
        # suspects last — instead of recorded order, and failover requeues
        # re-rank the untried tail against the CURRENT suspect set.  With
        # no suspects the ranking is a stable no-op.
        self._routing = routing

    @property
    def health(self):
        """The :class:`repro.fault.ProviderHealth` registry, if wired."""
        return self._health

    def _note_success(self, provider_id: str) -> None:
        if self._health is not None:
            self._health.record_success(provider_id)

    def _note_failure(self, provider_id: str) -> None:
        if self._health is not None:
            self._health.record_failure(provider_id)

    # -- membership ----------------------------------------------------------
    def register(self, provider: DataProvider) -> None:
        """Register a data provider (idempotent)."""
        with self._lock:
            self._providers[provider.provider_id] = provider
            self._allocatable.add(provider.provider_id)

    def deregister(self, provider_id: str) -> None:
        """Stop allocating new pages to a provider.

        The provider stays in the directory so pages already stored on it
        remain readable.
        """
        with self._lock:
            self._allocatable.discard(provider_id)

    def provider(self, provider_id: str) -> DataProvider:
        with self._lock:
            return self._providers[provider_id]

    def provider_ids(self) -> list[str]:
        with self._lock:
            return list(self._providers)

    def allocatable_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._allocatable)

    def providers(self) -> list[DataProvider]:
        with self._lock:
            return list(self._providers.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._providers)

    # -- allocation ------------------------------------------------------------
    def _live_allocatable(self) -> tuple[list[str], dict[str, DataProvider]]:
        with self._lock:
            live = [
                pid
                for pid, p in self._providers.items()
                if p.alive and pid in self._allocatable
            ]
            providers = dict(self._providers)
        if not live:
            raise NoProvidersError("no live data providers registered")
        return live, providers

    def allocate(self, count: int) -> list[str]:
        """Return *count* provider ids that should store the next pages.

        Only live, allocatable providers are considered; health suspects
        are steered around unless they are all that is left.  Raises
        :class:`NoProvidersError` when none are available.
        """
        if count <= 0:
            return []
        live, providers = self._live_allocatable()
        candidates = (
            self._health.prefer_healthy(live) if self._health is not None else live
        )

        def load_of(provider_id: str) -> int:
            return providers[provider_id].bytes_used()

        return self._strategy.select(candidates, count, load_of)

    def allocate_replicas(self, count: int, replicas: int = 1) -> list[tuple[str, ...]]:
        """Return *count* replica sets, each of up to *replicas* DISTINCT
        live providers (primary first).

        The primary of each set comes from the configured allocation
        strategy exactly as :meth:`allocate` would pick it; the extra
        replicas walk the candidate ring from the primary's position, which
        spreads replica load evenly without a second strategy.  When fewer
        than *replicas* live providers exist the sets degrade to what is
        available (a degraded WRITE beats an unavailable one; the
        :class:`repro.fault.RepairService` tops replication back up once
        providers rejoin).  Health suspects are steered around unless
        excluding them would leave the ring short.
        """
        if count <= 0:
            return []
        live, providers = self._live_allocatable()
        k = min(replicas, len(live))
        candidates = (
            self._health.prefer_healthy(live) if self._health is not None else live
        )

        def load_of(provider_id: str) -> int:
            return providers[provider_id].bytes_used()

        primaries = self._strategy.select(candidates, count, load_of)
        if k <= 1:
            return [(primary,) for primary in primaries]
        ring = candidates if len(candidates) >= k else live
        sets: list[tuple[str, ...]] = []
        for primary in primaries:
            start = ring.index(primary)
            chosen = [primary]
            step = 1
            while len(chosen) < k:
                candidate = ring[(start + step) % len(ring)]
                step += 1
                if candidate not in chosen:
                    chosen.append(candidate)
            sets.append(tuple(chosen))
        return sets

    def allocate_providers(self, count: int) -> list[DataProvider]:
        """Like :meth:`allocate` but resolves ids to provider objects."""
        ids = self.allocate(count)
        with self._lock:
            return [self._providers[pid] for pid in ids]

    # -- batched data I/O ------------------------------------------------------
    def _dispatch_batches(
        self, groups: list[tuple[str, list]], call, run_batches
    ) -> list:
        """Run ``call(provider, batch)`` once per ``(provider_id, batch)``
        group via ``run_batches``; outcomes align with ``groups``.

        A job's exception is captured and returned in its slot instead of
        aborting the dispatch, so every live provider's batch completes
        before the caller decides how to surface failures.

        When a :class:`repro.fault.RetryPolicy` is wired, each job retries
        its provider call on transient errors before giving up; every job
        outcome (including each failed retry attempt) is recorded with the
        health registry.

        Loop-free bridge over :meth:`_dispatch_batches_async` — the async
        form is the only implementation (see :mod:`repro.aio`).
        """
        return run_sync(
            self._dispatch_batches_async(groups, call, ensure_runtime(run_batches))
        )

    async def _dispatch_batches_async(
        self, groups: list[tuple[str, list]], call, runtime: IORuntime
    ) -> list:
        def make_attempt(provider_id: str, batch: list):
            provider = self.provider(provider_id)
            return lambda: call(provider, batch)

        return await dispatch_jobs(
            runtime,
            groups,
            make_attempt,
            retry=self._retry,
            capture=(Exception,),
            note_success=self._note_success,
            note_failure=self._note_failure,
        )

    def _ranked(self, replicas: tuple[str, ...]) -> tuple[str, ...]:
        """Replica tuple of one page in routing order (suspects last).

        A no-op — returning the recorded order unchanged — when routing is
        off, the page has a single home, no health registry is wired, or
        nothing is suspect, so the default deployment's wave order (and the
        perf-gate's pinned counters) cannot drift.
        """
        if not self._routing or len(replicas) <= 1 or self._health is None:
            return replicas
        suspects = self._health.suspects()
        if not suspects:
            return replicas
        return rank_replicas(replicas, suspects=suspects)

    def _rerank_requeued(self, entry: list) -> None:
        """Re-rank a failed-over entry's UNTRIED replica tail.

        The wave that just failed may have pushed the next-in-line replica
        over the suspicion threshold; blindly walking the original order
        would then hop straight onto a provider known to be failing.  Only
        the untried tail is reordered — replicas already charged as tried
        keep their positions so failover accounting stays stable.
        """
        if not self._routing or self._health is None:
            return
        untried = entry[3][entry[4] :]
        if len(untried) <= 1:
            return
        suspects = self._health.suspects()
        if not suspects:
            return
        entry[3] = entry[3][: entry[4]] + rank_replicas(
            untried, suspects=suspects
        )

    def multi_fetch(
        self,
        requests: Sequence[tuple[str, str, int, int | None]],
        run_batches=None,
    ) -> tuple[list[bytes], int]:
        """Fetch a batch of ``(provider_id, page_id, offset, length)``
        requests, grouped into ONE :meth:`DataProvider.multi_fetch` per
        provider.

        Returns ``(payloads, round_trips)``: the payloads aligned with
        ``requests`` and the number of per-provider batches issued — the
        data-path analogue of a metadata frontier's round-trip count.
        ``run_batches`` optionally executes the per-provider jobs (zero-arg
        callables, one per touched provider) concurrently; it must return
        their results in order.  Grouping stays in the manager (the single
        owner of the provider directory) either way.  A dead provider fails
        its whole batch with :class:`~repro.errors.ProviderUnavailableError`
        after the other providers' batches completed.

        The hot read path uses the zero-copy :meth:`multi_fetch_into`
        instead; this bytes-returning variant serves callers that cannot
        pre-size a destination (``length=None`` reads to the end of a
        page).  Keep the two variants' grouping and failure semantics in
        sync.
        """
        if not requests:
            return [], 0
        by_provider: dict[str, list[int]] = {}
        for index, (provider_id, _page_id, _offset, _length) in enumerate(requests):
            by_provider.setdefault(provider_id, []).append(index)
        groups = list(by_provider.items())
        outcomes = self._dispatch_batches(
            groups,
            lambda provider, indices: provider.multi_fetch(
                [requests[index][1:] for index in indices]
            ),
            run_batches,
        )
        payloads: list[bytes | None] = [None] * len(requests)
        first_error: Exception | None = None
        for (_provider_id, indices), outcome in zip(groups, outcomes):
            if isinstance(outcome, Exception):
                if first_error is None:
                    first_error = outcome
                continue
            for index, payload in zip(indices, outcome):
                payloads[index] = payload
        if first_error is not None:
            raise first_error
        return payloads, len(groups)

    def multi_fetch_into(
        self,
        requests: Sequence[tuple[str, str, int, memoryview]],
        run_batches=None,
        cache=None,
        cache_key=None,
        tally=None,
        failover: Sequence[tuple[str, ...]] | None = None,
        fault_tally: FaultTally | None = None,
        peer_lookup=None,
        peer_tally=None,
    ) -> int:
        """Zero-copy variant of :meth:`multi_fetch`: each
        ``(provider_id, page_id, offset, out)`` request carries a writable
        ``memoryview`` and the provider deposits the page bytes directly
        into it (:meth:`DataProvider.multi_fetch_into`) — no per-chunk
        ``bytes`` objects, no second copy at assembly time.

        Returns the number of per-provider batches issued.  Grouping,
        ``run_batches`` execution and failure semantics match
        :meth:`multi_fetch`; the destination views must be disjoint when
        ``run_batches`` executes batches concurrently.

        With ``cache`` (a :class:`~repro.cache.PageCache`) and ``cache_key``
        (``cache_key(page_id, offset, length) -> key``, usually
        :meth:`repro.core.cluster.Cluster.page_cache_key`), cached requests
        are deposited straight into their destination views and never enter
        a provider batch — published pages are immutable, so a cached range
        can never be stale — and misses are write-through-cached after the
        fetch.  An all-hit call costs ZERO provider round trips.  The
        optional ``tally`` (a :class:`~repro.cache.CacheTally`) collects the
        call's hit/fetch/trip counts.

        Every provider batch's byte count is reconciled against the
        requested total — a short read surfaces as
        :class:`~repro.errors.ShortReadError` rather than silently served
        zeros, even for provider implementations that do not self-check.

        ``failover`` (aligned with ``requests``) carries each page's full
        replica tuple, primary first.  When a provider's batch fails — it
        is dead, a page is missing, a read came back short — every request
        of that batch *fails over* to its next untried replica in the
        following wave, exactly like the replicated DHT's
        :meth:`repro.dht.DHT.multi_get`; the error surfaces only when a
        request exhausts its replicas.  The optional ``fault_tally``
        (a :class:`FaultTally`) reports how many requests re-routed and how
        many were ultimately served degraded (by a non-primary replica).
        Without ``failover`` — or with single-replica tuples — one failed
        batch fails the call, exactly the pre-replication behaviour.

        ``peer_lookup`` (``peer_lookup(cache_key) -> bytes | None``, see
        :class:`repro.cache.PeerCacheGroup`) is consulted for each request
        the OWN cache missed, *before* any provider wave: a peer hit is
        deposited into the destination view, write-through-cached locally
        and counted in ``peer_tally`` — it never travels from a provider
        and never counts in ``tally.fetched``.  Requires the cache path
        (``cache`` + ``cache_key``) so the probe keys exist.

        Loop-free bridge over :meth:`multi_fetch_into_async`.
        """
        return run_sync(
            self.multi_fetch_into_async(
                requests,
                ensure_runtime(run_batches),
                cache=cache,
                cache_key=cache_key,
                tally=tally,
                failover=failover,
                fault_tally=fault_tally,
                peer_lookup=peer_lookup,
                peer_tally=peer_tally,
            )
        )

    async def multi_fetch_into_async(
        self,
        requests: Sequence[tuple[str, str, int, memoryview]],
        runtime: IORuntime,
        cache=None,
        cache_key=None,
        tally=None,
        failover: Sequence[tuple[str, ...]] | None = None,
        fault_tally: FaultTally | None = None,
        peer_lookup=None,
        peer_tally=None,
    ) -> int:
        """Awaitable :meth:`multi_fetch_into` (see there for cache, peer
        and failover semantics); per-provider batches execute on
        *runtime*."""
        if not requests:
            return 0
        misses: Sequence[tuple[str, str, int, memoryview]] = requests
        miss_failover = list(failover) if failover is not None else None
        miss_keys: list | None = None
        if cache is not None and cache_key is not None:
            keys = [
                cache_key(page_id, offset, len(out))
                for _provider_id, page_id, offset, out in requests
            ]
            cached = cache.get_many(keys)
            misses, miss_keys, kept_failover = [], [], []
            for index, (request, key, value) in enumerate(
                zip(requests, keys, cached)
            ):
                if value is None:
                    misses.append(request)
                    miss_keys.append(key)
                    if miss_failover is not None:
                        kept_failover.append(miss_failover[index])
                else:
                    out = request[3]
                    out[:] = value
            if miss_failover is not None:
                miss_failover = kept_failover
            if tally is not None:
                tally.hits += len(requests) - len(misses)
            if not misses:
                return 0
            if peer_lookup is not None:
                # Cooperative peer caching (DESIGN.md §9): a co-located
                # client's cache is one cheap hop away — probe it for each
                # own-cache miss before paying a provider round.  Peer hits
                # are deposited directly, cached locally, and never enter a
                # provider wave (so they count in ``peer_tally``, not in
                # ``tally.fetched``).
                kept_misses, kept_keys, kept_failover = [], [], []
                with span("data.peer_probe", probes=len(misses)) as probe_span:
                    for index, (request, key) in enumerate(
                        zip(misses, miss_keys)
                    ):
                        value = peer_lookup(key)
                        if value is None:
                            kept_misses.append(request)
                            kept_keys.append(key)
                            if miss_failover is not None:
                                kept_failover.append(miss_failover[index])
                            continue
                        out = request[3]
                        out[:] = value
                        cache.put(key, bytes(value))
                        if peer_tally is not None:
                            peer_tally.hits += 1
                    if probe_span is not None:
                        probe_span.set(hits=len(misses) - len(kept_misses))
                misses, miss_keys = kept_misses, kept_keys
                if miss_failover is not None:
                    miss_failover = kept_failover
                if not misses:
                    return 0
        # One entry per outstanding miss: [page_id, offset, out, replicas,
        # next-replica index, recorded primary].  Requests whose batch fails
        # re-enter the next wave pointed at their next replica.  The replica
        # order is ranked (suspects last) when routing is enabled; the
        # recorded primary is kept so ``degraded`` still means "served by a
        # non-primary replica" whatever order the replicas were tried in.
        outstanding: list[list] = []
        for index, (provider_id, page_id, offset, out) in enumerate(misses):
            replicas: tuple[str, ...] = (provider_id,)
            if miss_failover is not None and miss_failover[index]:
                replicas = tuple(miss_failover[index])
            outstanding.append(
                [page_id, offset, out, self._ranked(replicas), 0, replicas[0]]
            )
        total_trips = 0
        wave = 0
        first_error: Exception | None = None
        while outstanding:
            by_provider: dict[str, list[list]] = {}
            for entry in outstanding:
                by_provider.setdefault(entry[3][entry[4]], []).append(entry)
            groups = list(by_provider.items())
            with span(
                "data.wave",
                wave=wave,
                providers=len(groups),
                requests=len(outstanding),
            ) as wave_span:
                outcomes = await self._dispatch_batches_async(
                    groups,
                    lambda provider, batch: provider.multi_fetch_into(
                        [(entry[0], entry[1], entry[2]) for entry in batch]
                    ),
                    runtime,
                )
            wave += 1
            total_trips += len(groups)
            requeued: list[list] = []
            for (provider_id, batch), outcome in zip(groups, outcomes):
                error: Exception | None = None
                if isinstance(outcome, Exception):
                    error = outcome
                else:
                    expected = sum(len(entry[2]) for entry in batch)
                    if outcome != expected:
                        error = ShortReadError(
                            f"batched fetch from provider {provider_id!r}",
                            expected=expected,
                            actual=int(outcome),
                        )
                if error is None:
                    if fault_tally is not None:
                        fault_tally.degraded += sum(
                            1 for entry in batch if provider_id != entry[5]
                        )
                    continue
                for entry in batch:
                    entry[4] += 1
                    if entry[4] < len(entry[3]):
                        if fault_tally is not None:
                            fault_tally.failovers += 1
                        self._rerank_requeued(entry)
                        requeued.append(entry)
                    elif first_error is None:
                        first_error = error
            if wave_span is not None:
                wave_span.set(requeued=len(requeued))
            if first_error is not None:
                raise first_error
            outstanding = requeued
        if miss_keys is not None:
            # Write-through AFTER every batch landed: the views now hold the
            # fetched bytes, and a failed call caches nothing.
            cache.put_many(
                [
                    (key, bytes(request[3]))
                    for key, request in zip(miss_keys, misses)
                ]
            )
        if tally is not None:
            tally.fetched += len(misses)
            tally.trips += total_trips
        return total_trips

    def multi_store(
        self,
        items: Sequence[tuple[str, str, bytes]],
        run_batches=None,
    ) -> int:
        """Store a batch of ``(provider_id, page_id, payload)`` items, one
        :meth:`DataProvider.multi_store` per provider; return the number of
        per-provider batches issued.

        In this single-home variant any dead provider fails the whole call —
        after the live providers' batches completed, leaving the caller to
        garbage-collect the pages that did land (see
        :meth:`repro.core.blob_store.BlobStore._store_payloads`).  The
        replicated write path uses :meth:`multi_store_replicated`, which
        tolerates dead replicas the way the DHT's ``multi_put`` does.
        """
        return self._multi_store(
            items, lambda provider, batch: provider.multi_store(batch), run_batches
        )

    def multi_store_replicated(
        self,
        items: Sequence[tuple[tuple[str, ...], str, bytes]],
        run_batches=None,
    ) -> tuple[list[tuple[str, ...]], int]:
        """Store each ``(provider_ids, page_id, payload)`` item on EVERY
        listed replica, one batch per touched provider.

        Returns ``(landed, round_trips)``: ``landed`` aligns with ``items``
        and holds the replicas that actually stored each page, preserving
        the requested order (primary first).  Mirroring the DHT's
        ``multi_put``, the call succeeds as long as every page landed on at
        least one replica — a dead replica merely degrades that page's
        redundancy (the leaf records only the replicas that hold it, and
        the :class:`repro.fault.RepairService` tops it back up later).  A
        page that landed nowhere raises, after all batches completed.  With
        single-replica tuples the failure semantics and the per-provider
        trip count match :meth:`multi_store` exactly.

        Loop-free bridge over :meth:`multi_store_replicated_async`.
        """
        return run_sync(
            self.multi_store_replicated_async(items, ensure_runtime(run_batches))
        )

    async def multi_store_replicated_async(
        self,
        items: Sequence[tuple[tuple[str, ...], str, bytes]],
        runtime: IORuntime,
    ) -> tuple[list[tuple[str, ...]], int]:
        """Awaitable :meth:`multi_store_replicated` (see there for the
        degraded-redundancy semantics)."""
        if not items:
            return [], 0
        by_provider: dict[str, list[tuple[int, str, bytes]]] = {}
        for index, (provider_ids, page_id, payload) in enumerate(items):
            for provider_id in provider_ids:
                by_provider.setdefault(provider_id, []).append(
                    (index, page_id, payload)
                )
        groups = list(by_provider.items())
        outcomes = await self._dispatch_batches_async(
            groups,
            lambda provider, batch: provider.multi_store(
                [(page_id, payload) for _index, page_id, payload in batch]
            ),
            runtime,
        )
        landed_on: list[set[str]] = [set() for _ in items]
        item_error: list[Exception | None] = [None] * len(items)
        for (provider_id, batch), outcome in zip(groups, outcomes):
            if isinstance(outcome, Exception):
                for index, _page_id, _payload in batch:
                    if item_error[index] is None:
                        item_error[index] = outcome
                continue
            for index, _page_id, _payload in batch:
                landed_on[index].add(provider_id)
        landed: list[tuple[str, ...]] = []
        for (provider_ids, page_id, _payload), stored, error in zip(
            items, landed_on, item_error
        ):
            if not stored:
                if error is not None:
                    raise error
                raise NoProvidersError(
                    f"page {page_id!r} has an empty replica set"
                )
            landed.append(
                tuple(pid for pid in provider_ids if pid in stored)
            )
        return landed, len(groups)

    def multi_store_virtual(
        self,
        items: Sequence[tuple[str, str, int]],
        run_batches=None,
    ) -> int:
        """Batched counterpart of :meth:`DataProvider.multi_store_virtual`
        over ``(provider_id, page_id, size)`` items; one batch per provider,
        returning the batch count (see :meth:`multi_store`)."""
        return self._multi_store(
            items,
            lambda provider, batch: provider.multi_store_virtual(batch),
            run_batches,
        )

    def _multi_store(self, items, store, run_batches) -> int:
        if not items:
            return 0
        by_provider: dict[str, list[tuple]] = {}
        for provider_id, page_id, payload in items:
            by_provider.setdefault(provider_id, []).append((page_id, payload))
        groups = list(by_provider.items())
        outcomes = self._dispatch_batches(groups, store, run_batches)
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                raise outcome
        return len(groups)

    # -- introspection -----------------------------------------------------------
    def total_bytes_used(self) -> int:
        return sum(p.bytes_used() for p in self.providers())

    def total_pages(self) -> int:
        return sum(p.page_count() for p in self.providers())

    def load_distribution(self) -> dict[str, int]:
        """Bytes stored per provider — used to validate even distribution."""
        return {p.provider_id: p.bytes_used() for p in self.providers()}

    def imbalance(self) -> float:
        """Return max/mean byte load across providers (1.0 = perfectly even).

        Returns 0.0 when nothing is stored yet.
        """
        loads = list(self.load_distribution().values())
        if not loads or sum(loads) == 0:
            return 0.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean
