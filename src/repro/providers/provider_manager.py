"""The provider manager: tracks data providers and allocates pages to them."""

from __future__ import annotations

import threading
from collections.abc import Sequence

from ..errors import NoProvidersError
from .allocation import AllocationStrategy, RoundRobinAllocation
from .data_provider import DataProvider


class ProviderManager:
    """Keeps information about available storage space (Section 3.1).

    Joining data providers register here; the manager answers client requests
    for "a list of n page providers capable of storing the pages" (WRITE,
    Algorithm 2, line 2).  The manager also supports deregistration and
    skips providers known to be dead, which is the hook used by the
    fault-injection tests.
    """

    def __init__(self, strategy: AllocationStrategy | None = None):
        self._strategy = strategy if strategy is not None else RoundRobinAllocation()
        self._providers: dict[str, DataProvider] = {}
        self._allocatable: set[str] = set()
        self._lock = threading.Lock()

    # -- membership ----------------------------------------------------------
    def register(self, provider: DataProvider) -> None:
        """Register a data provider (idempotent)."""
        with self._lock:
            self._providers[provider.provider_id] = provider
            self._allocatable.add(provider.provider_id)

    def deregister(self, provider_id: str) -> None:
        """Stop allocating new pages to a provider.

        The provider stays in the directory so pages already stored on it
        remain readable.
        """
        with self._lock:
            self._allocatable.discard(provider_id)

    def provider(self, provider_id: str) -> DataProvider:
        with self._lock:
            return self._providers[provider_id]

    def provider_ids(self) -> list[str]:
        with self._lock:
            return list(self._providers)

    def allocatable_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._allocatable)

    def providers(self) -> list[DataProvider]:
        with self._lock:
            return list(self._providers.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._providers)

    # -- allocation ------------------------------------------------------------
    def allocate(self, count: int) -> list[str]:
        """Return *count* provider ids that should store the next pages.

        Only live, allocatable providers are considered.  Raises
        :class:`NoProvidersError` when none are available.
        """
        if count <= 0:
            return []
        with self._lock:
            live = [
                pid
                for pid, p in self._providers.items()
                if p.alive and pid in self._allocatable
            ]
            providers = dict(self._providers)
        if not live:
            raise NoProvidersError("no live data providers registered")

        def load_of(provider_id: str) -> int:
            return providers[provider_id].bytes_used()

        return self._strategy.select(live, count, load_of)

    def allocate_providers(self, count: int) -> list[DataProvider]:
        """Like :meth:`allocate` but resolves ids to provider objects."""
        ids = self.allocate(count)
        with self._lock:
            return [self._providers[pid] for pid in ids]

    # -- introspection -----------------------------------------------------------
    def total_bytes_used(self) -> int:
        return sum(p.bytes_used() for p in self.providers())

    def total_pages(self) -> int:
        return sum(p.page_count() for p in self.providers())

    def load_distribution(self) -> dict[str, int]:
        """Bytes stored per provider — used to validate even distribution."""
        return {p.provider_id: p.bytes_used() for p in self.providers()}

    def imbalance(self) -> float:
        """Return max/mean byte load across providers (1.0 = perfectly even).

        Returns 0.0 when nothing is stored yet.
        """
        loads = list(self.load_distribution().values())
        if not loads or sum(loads) == 0:
            return 0.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean
