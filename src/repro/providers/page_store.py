"""Physical page storage backends.

A data provider delegates the actual byte storage to a :class:`PageStore`.
Three backends are provided:

* :class:`InMemoryPageStore` — a dict of byte strings; the default for tests
  and examples.
* :class:`FilePageStore` — one file per page under a directory, for blobs
  larger than memory.
* :class:`NullPageStore` — records page sizes and checksums only; used by the
  discrete-event simulator where payload bytes are irrelevant but the real
  provider/metadata code paths still run.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import PageNotFoundError
from ..util.integrity import checksum


@dataclass(frozen=True)
class StoredPage:
    """Bookkeeping record kept for every stored page."""

    page_id: str
    size: int
    checksum: str


class PageStore(ABC):
    """Abstract page storage: maps page ids to byte payloads."""

    @abstractmethod
    def put(self, page_id: str, data: bytes) -> None:
        """Store the payload of a page.  Page ids are never reused."""

    @abstractmethod
    def get(self, page_id: str, offset: int = 0, length: int | None = None) -> bytes:
        """Return ``length`` bytes of a page starting at ``offset``.

        ``length=None`` means "until the end of the page".  Raises
        :class:`PageNotFoundError` for unknown ids.
        """

    def get_into(self, page_id: str, offset: int, out: memoryview) -> int:
        """Copy up to ``len(out)`` bytes of a page starting at ``offset``
        directly into the writable ``out`` view; return the bytes written.

        This is the zero-copy read path: backends that can, write straight
        into the caller's result buffer instead of materializing an
        intermediate ``bytes`` chunk.  The default falls back to
        :meth:`get` plus one copy, so custom stores keep working unchanged.
        """
        data = self.get(page_id, offset, len(out))
        out[:len(data)] = data
        return len(data)

    @abstractmethod
    def contains(self, page_id: str) -> bool:
        """Return True when the page is stored here."""

    @abstractmethod
    def delete(self, page_id: str) -> bool:
        """Remove a page; return True when it existed."""

    @abstractmethod
    def page_info(self, page_id: str) -> StoredPage:
        """Return the bookkeeping record of a page."""

    @abstractmethod
    def page_ids(self) -> list[str]:
        """Return the ids of every stored page (for sweeps and audits)."""

    @abstractmethod
    def page_count(self) -> int:
        """Number of pages stored."""

    @abstractmethod
    def bytes_used(self) -> int:
        """Total payload bytes stored."""


class InMemoryPageStore(PageStore):
    """Pages held in a dictionary of byte strings (thread-safe)."""

    def __init__(self) -> None:
        self._pages: dict[str, bytes] = {}
        self._info: dict[str, StoredPage] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    def put(self, page_id: str, data: bytes) -> None:
        data = bytes(data)
        record = StoredPage(page_id, len(data), checksum(data))
        with self._lock:
            previous = self._pages.get(page_id)
            if previous is not None:
                self._bytes -= len(previous)
            self._pages[page_id] = data
            self._info[page_id] = record
            self._bytes += len(data)

    def get(self, page_id: str, offset: int = 0, length: int | None = None) -> bytes:
        with self._lock:
            data = self._pages.get(page_id)
        if data is None:
            raise PageNotFoundError(page_id)
        end = len(data) if length is None else offset + length
        return data[offset:end]

    def get_into(self, page_id: str, offset: int, out: memoryview) -> int:
        with self._lock:
            data = self._pages.get(page_id)
        if data is None:
            raise PageNotFoundError(page_id)
        end = min(offset + len(out), len(data))
        count = max(end - offset, 0)
        # One copy, source page -> destination slice; no intermediate bytes.
        out[:count] = memoryview(data)[offset:end]
        return count

    def contains(self, page_id: str) -> bool:
        with self._lock:
            return page_id in self._pages

    def delete(self, page_id: str) -> bool:
        with self._lock:
            data = self._pages.pop(page_id, None)
            self._info.pop(page_id, None)
            if data is None:
                return False
            self._bytes -= len(data)
            return True

    def page_info(self, page_id: str) -> StoredPage:
        with self._lock:
            info = self._info.get(page_id)
        if info is None:
            raise PageNotFoundError(page_id)
        return info

    def page_ids(self) -> list[str]:
        with self._lock:
            return list(self._pages)

    def page_count(self) -> int:
        with self._lock:
            return len(self._pages)

    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes


class FilePageStore(PageStore):
    """Pages stored as individual files under a directory."""

    def __init__(self, directory: str):
        self._directory = directory
        os.makedirs(directory, exist_ok=True)
        self._info: dict[str, StoredPage] = {}
        self._lock = threading.Lock()
        self._load_existing()

    def _load_existing(self) -> None:
        """Rebuild the index from files already present (restart support)."""
        for name in os.listdir(self._directory):
            path = os.path.join(self._directory, name)
            if not os.path.isfile(path):
                continue
            with open(path, "rb") as handle:
                data = handle.read()
            self._info[name] = StoredPage(name, len(data), checksum(data))

    def _path(self, page_id: str) -> str:
        # Page ids are generated by this library and contain only [-a-z0-9],
        # but be defensive against path separators anyway.
        safe = page_id.replace(os.sep, "_").replace("/", "_")
        return os.path.join(self._directory, safe)

    def put(self, page_id: str, data: bytes) -> None:
        data = bytes(data)
        path = self._path(page_id)
        with open(path, "wb") as handle:
            handle.write(data)
        with self._lock:
            self._info[page_id] = StoredPage(page_id, len(data), checksum(data))

    def get(self, page_id: str, offset: int = 0, length: int | None = None) -> bytes:
        path = self._path(page_id)
        with self._lock:
            known = page_id in self._info
        if not known or not os.path.exists(path):
            raise PageNotFoundError(page_id)
        with open(path, "rb") as handle:
            handle.seek(offset)
            if length is None:
                return handle.read()
            return handle.read(length)

    def get_into(self, page_id: str, offset: int, out: memoryview) -> int:
        path = self._path(page_id)
        with self._lock:
            known = page_id in self._info
        if not known or not os.path.exists(path):
            raise PageNotFoundError(page_id)
        with open(path, "rb") as handle:
            handle.seek(offset)
            return handle.readinto(out)

    def contains(self, page_id: str) -> bool:
        with self._lock:
            return page_id in self._info

    def delete(self, page_id: str) -> bool:
        with self._lock:
            info = self._info.pop(page_id, None)
        if info is None:
            return False
        try:
            os.remove(self._path(page_id))
        except FileNotFoundError:
            pass
        return True

    def page_info(self, page_id: str) -> StoredPage:
        with self._lock:
            info = self._info.get(page_id)
        if info is None:
            raise PageNotFoundError(page_id)
        return info

    def page_ids(self) -> list[str]:
        with self._lock:
            return list(self._info)

    def page_count(self) -> int:
        with self._lock:
            return len(self._info)

    def bytes_used(self) -> int:
        with self._lock:
            return sum(info.size for info in self._info.values())


class NullPageStore(PageStore):
    """Stores page *sizes* only; payload reads return zero bytes.

    Used by the simulator and by capacity-planning benchmarks where the byte
    content is irrelevant but page counts, sizes and placement matter.
    """

    def __init__(self) -> None:
        self._sizes: dict[str, int] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    def put(self, page_id: str, data: bytes) -> None:
        size = len(data)
        with self._lock:
            previous = self._sizes.get(page_id)
            if previous is not None:
                self._bytes -= previous
            self._sizes[page_id] = size
            self._bytes += size

    def put_virtual(self, page_id: str, size: int) -> None:
        """Record a page of *size* bytes without materializing a payload."""
        with self._lock:
            previous = self._sizes.get(page_id)
            if previous is not None:
                self._bytes -= previous
            self._sizes[page_id] = size
            self._bytes += size

    def get(self, page_id: str, offset: int = 0, length: int | None = None) -> bytes:
        with self._lock:
            size = self._sizes.get(page_id)
        if size is None:
            raise PageNotFoundError(page_id)
        end = size if length is None else min(offset + length, size)
        return bytes(max(end - offset, 0))

    def contains(self, page_id: str) -> bool:
        with self._lock:
            return page_id in self._sizes

    def delete(self, page_id: str) -> bool:
        with self._lock:
            size = self._sizes.pop(page_id, None)
            if size is None:
                return False
            self._bytes -= size
            return True

    def page_info(self, page_id: str) -> StoredPage:
        with self._lock:
            size = self._sizes.get(page_id)
        if size is None:
            raise PageNotFoundError(page_id)
        return StoredPage(page_id, size, "crc32:00000000")

    def page_ids(self) -> list[str]:
        with self._lock:
            return list(self._sizes)

    def page_count(self) -> int:
        with self._lock:
            return len(self._sizes)

    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes
