"""Page-to-provider allocation strategies.

The provider manager "decides which providers should be used to store the
generated pages according to a strategy aiming at ensuring an even
distribution of pages among providers" (Section 3.1).  The paper also notes
(Section 4.3) that this strategy "plays a central role in minimizing"
provider-level contention.  Three strategies are implemented; the benchmark
harness compares them in the load-balance ablation.
"""

from __future__ import annotations

import random
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence


class AllocationStrategy(ABC):
    """Chooses, for each page of an update, the provider that will store it."""

    @abstractmethod
    def select(
        self,
        provider_ids: Sequence[str],
        count: int,
        load_of: Callable[[str], int],
    ) -> list[str]:
        """Return *count* provider ids (repetitions allowed when
        ``count > len(provider_ids)``).

        ``load_of`` maps a provider id to its current load (bytes or pages
        stored); strategies that ignore load simply never call it.
        """


class RoundRobinAllocation(AllocationStrategy):
    """Cycle through providers in registration order.

    This is the strategy that most evenly spreads a long append stream and is
    the default, matching the even-distribution goal stated in the paper.
    """

    def __init__(self) -> None:
        self._next = 0
        self._lock = threading.Lock()

    def select(
        self,
        provider_ids: Sequence[str],
        count: int,
        load_of: Callable[[str], int],
    ) -> list[str]:
        if not provider_ids:
            return []
        with self._lock:
            start = self._next
            self._next = (self._next + count) % len(provider_ids)
        return [provider_ids[(start + i) % len(provider_ids)] for i in range(count)]


class RandomAllocation(AllocationStrategy):
    """Pick providers uniformly at random (seedable for reproducibility)."""

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def select(
        self,
        provider_ids: Sequence[str],
        count: int,
        load_of: Callable[[str], int],
    ) -> list[str]:
        if not provider_ids:
            return []
        with self._lock:
            return [self._rng.choice(provider_ids) for _ in range(count)]


class LeastLoadedAllocation(AllocationStrategy):
    """Greedily assign each page to the provider with the least load.

    Loads are read once per allocation and updated locally by the page size
    estimate so that a single large allocation also spreads out.
    """

    def __init__(self, page_size_hint: int = 1):
        self._page_size_hint = max(page_size_hint, 1)

    def select(
        self,
        provider_ids: Sequence[str],
        count: int,
        load_of: Callable[[str], int],
    ) -> list[str]:
        if not provider_ids:
            return []
        loads = {provider_id: load_of(provider_id) for provider_id in provider_ids}
        chosen: list[str] = []
        for _ in range(count):
            best = min(provider_ids, key=lambda pid: (loads[pid], pid))
            chosen.append(best)
            loads[best] += self._page_size_hint
        return chosen


def make_allocation_strategy(
    name: str,
    seed: int | None = None,
    page_size_hint: int = 1,
) -> AllocationStrategy:
    """Factory mapping a configuration string to a strategy instance."""
    if name == "round_robin":
        return RoundRobinAllocation()
    if name == "random":
        return RandomAllocation(seed)
    if name == "least_loaded":
        return LeastLoadedAllocation(page_size_hint)
    raise ValueError(f"unknown allocation strategy: {name!r}")
