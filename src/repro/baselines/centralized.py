"""Centralized-metadata baseline.

Related work cited by the paper (Lustre, PVFS, GFS, archival stores) keeps
metadata on a centralized server.  This module implements such a baseline:

* :class:`CentralizedMetadataServer` — one server holding, per blob and per
  snapshot version, a *flat page table* (page index → page id/provider).
  Publishing a new version copies the previous table and applies the update,
  so metadata work per update is proportional to the whole blob, and every
  metadata request — read or write — is served by the single node.
* :func:`run_centralized_read_experiment` — the Figure 2(b) workload run
  against the baseline: all metadata lookups converge on one simulated node,
  which becomes the bottleneck as the reader count grows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..config import MiB, SimConfig
from ..errors import UnknownBlobError, VersionNotPublishedError
from ..metadata.node import PageDescriptor
from ..sim.engine import Simulator
from ..sim.network import Network, SimNode
from ..util.ranges import covering_page_range


class CentralizedMetadataServer:
    """A single-node metadata service with per-version flat page tables."""

    def __init__(self, page_size: int):
        self.page_size = page_size
        self._tables: dict[str, dict[int, dict[int, PageDescriptor]]] = {}
        self._sizes: dict[str, dict[int, int]] = {}
        self._lock = threading.Lock()
        self.requests = 0
        self.descriptor_writes = 0

    # -- blob management -----------------------------------------------------
    def create_blob(self, blob_id: str) -> None:
        with self._lock:
            self._tables[blob_id] = {0: {}}
            self._sizes[blob_id] = {0: 0}

    def _check_blob(self, blob_id: str) -> None:
        if blob_id not in self._tables:
            raise UnknownBlobError(blob_id)

    # -- updates ---------------------------------------------------------------
    def publish_update(
        self,
        blob_id: str,
        descriptors: list[PageDescriptor],
        new_size: int,
    ) -> int:
        """Publish a new version whose table is the previous table with the
        given descriptors applied.  Returns the new version number and the
        number of descriptors that had to be written (the whole table)."""
        with self._lock:
            self._check_blob(blob_id)
            self.requests += 1
            versions = self._tables[blob_id]
            latest = max(versions)
            table = dict(versions[latest])
            for descriptor in descriptors:
                table[descriptor.page_index] = descriptor
            version = latest + 1
            versions[version] = table
            self._sizes[blob_id][version] = new_size
            # A flat scheme rewrites (or at least re-serializes) the whole
            # table for the new version: count it as metadata write work.
            self.descriptor_writes += len(table)
            return version

    # -- lookups ---------------------------------------------------------------
    def get_size(self, blob_id: str, version: int) -> int:
        with self._lock:
            self._check_blob(blob_id)
            sizes = self._sizes[blob_id]
            if version not in sizes:
                raise VersionNotPublishedError(blob_id, version)
            return sizes[version]

    def latest_version(self, blob_id: str) -> int:
        with self._lock:
            self._check_blob(blob_id)
            return max(self._tables[blob_id])

    def lookup(
        self, blob_id: str, version: int, offset: int, size: int
    ) -> list[PageDescriptor]:
        """Return the descriptors covering a byte range of one version."""
        with self._lock:
            self._check_blob(blob_id)
            self.requests += 1
            versions = self._tables[blob_id]
            if version not in versions:
                raise VersionNotPublishedError(blob_id, version)
            table = versions[version]
        first, count = covering_page_range(offset, size, self.page_size)
        return [table[index] for index in range(first, first + count) if index in table]

    def descriptor_count(self) -> int:
        """Total descriptors held across all versions (metadata footprint)."""
        with self._lock:
            return sum(
                len(table)
                for versions in self._tables.values()
                for table in versions.values()
            )


@dataclass(frozen=True)
class CentralizedReadSample:
    """One point of the centralized-metadata read-concurrency curve."""

    readers: int
    avg_bandwidth_mbps: float
    aggregate_bandwidth_mbps: float
    metadata_requests: int


def run_centralized_read_experiment(
    num_provider_nodes: int,
    page_size: int,
    blob_bytes: int,
    chunk_bytes: int,
    reader_counts: list[int],
    sim_config: SimConfig | None = None,
    service_per_descriptor: float = 0.05e-3,
) -> list[CentralizedReadSample]:
    """Figure 2(b) workload against the centralized-metadata baseline.

    Data pages are still spread over ``num_provider_nodes`` providers (round
    robin), but every metadata lookup is an RPC to the single metadata node,
    whose service time is ``service_per_descriptor`` per descriptor returned
    (walking and serializing the flat table).  The single server saturates as
    the reader count grows, which is the contrast with BlobSeer's DHT.
    """
    config = sim_config if sim_config is not None else SimConfig()
    page_count_total = blob_bytes // page_size
    server = CentralizedMetadataServer(page_size)
    server.create_blob("blob")
    descriptors = [
        PageDescriptor(
            page_index=index,
            page_id=f"page-{index}",
            provider_id=f"data-{index % num_provider_nodes:04d}",
            length=page_size,
        )
        for index in range(page_count_total)
    ]
    version = server.publish_update("blob", descriptors, page_count_total * page_size)

    samples: list[CentralizedReadSample] = []
    for readers in reader_counts:
        simulator = Simulator()
        network = Network(simulator, config)
        metadata_node = SimNode(simulator, "central-metadata")
        provider_nodes = [
            SimNode(simulator, f"provider-node-{index:04d}")
            for index in range(num_provider_nodes)
        ]
        outcomes: list[float] = []

        def reader_process(index: int):
            start = simulator.now
            offset = index * chunk_bytes
            client_node = SimNode(simulator, f"client-{index:04d}")
            # One metadata RPC; the server walks the flat table, so its
            # service time scales with the number of descriptors returned.
            pages = chunk_bytes // page_size
            yield from network.fetch(
                client_node,
                metadata_node,
                nbytes=pages * 48,
                service_time=service_per_descriptor * pages,
            )
            wanted = server.lookup("blob", version, offset, chunk_bytes)
            fetches = [
                simulator.process(
                    network.fetch(
                        client_node,
                        provider_nodes[int(d.provider_id.rsplit("-", 1)[1])],
                        page_size,
                        service_time=config.rpc_overhead + config.page_service_time,
                    )
                )
                for d in wanted
            ]
            yield simulator.all_of([process.event for process in fetches])
            outcomes.append(simulator.now - start)

        for index in range(readers):
            simulator.process(reader_process(index))
        simulator.run()
        bandwidths = [chunk_bytes / elapsed / MiB for elapsed in outcomes]
        samples.append(
            CentralizedReadSample(
                readers=readers,
                avg_bandwidth_mbps=sum(bandwidths) / len(bandwidths),
                aggregate_bandwidth_mbps=(
                    readers * chunk_bytes / max(outcomes) / MiB
                ),
                metadata_requests=server.requests,
            )
        )
    return samples
