"""Baseline systems the paper's design is compared against.

The paper positions its decentralized, segment-tree metadata against two
classes of related work (Section 1): parallel/distributed file systems and
archiving systems with *centralized* metadata management, and naive
versioning that duplicates data per version.  Two baselines make those
comparisons concrete:

* :mod:`repro.baselines.centralized` — a centralized metadata server holding
  a flat page table per snapshot version (reads are one RPC, but every
  update rewrites a full table and all metadata load lands on one node);
* :mod:`repro.baselines.fullcopy` — versioning by full copy (every snapshot
  stores the complete blob contents), the storage-space strawman.
"""

from .centralized import (
    CentralizedMetadataServer,
    run_centralized_read_experiment,
)
from .fullcopy import FullCopyVersionedStore

__all__ = [
    "CentralizedMetadataServer",
    "run_centralized_read_experiment",
    "FullCopyVersionedStore",
]
