"""Full-copy versioning baseline.

The paper argues (Sections 1 and 4.3) that versioning must be space
efficient: BlobSeer consumes new storage only for newly written pages, and
unmodified pages are physically shared between snapshot versions.  The
obvious alternative — keeping a complete copy of the blob per version — is
implemented here so the storage-space ablation can compare the two curves.
"""

from __future__ import annotations

import threading

from ..errors import InvalidRangeError, VersionNotPublishedError


class FullCopyVersionedStore:
    """Versioned blob storage that materializes every snapshot in full.

    The interface intentionally mirrors the BlobSeer primitives used by the
    storage-space ablation (WRITE/APPEND/READ/GET_SIZE), so the benchmark
    can drive both systems with the same workload.
    """

    def __init__(self) -> None:
        self._snapshots: list[bytes] = [b""]
        self._lock = threading.Lock()

    # -- update primitives -----------------------------------------------------
    def write(self, data: bytes, offset: int) -> int:
        """Apply a WRITE to the latest snapshot; returns the new version."""
        data = bytes(data)
        if not data:
            raise InvalidRangeError("WRITE requires a non-empty buffer")
        with self._lock:
            current = self._snapshots[-1]
            if offset > len(current):
                raise InvalidRangeError(
                    f"write offset {offset} is beyond the current size {len(current)}"
                )
            new = bytearray(max(len(current), offset + len(data)))
            new[: len(current)] = current
            new[offset:offset + len(data)] = data
            self._snapshots.append(bytes(new))
            return len(self._snapshots) - 1

    def append(self, data: bytes) -> int:
        """Apply an APPEND to the latest snapshot; returns the new version."""
        with self._lock:
            offset = len(self._snapshots[-1])
        return self.write(data, offset)

    # -- read primitives ----------------------------------------------------------
    def read(self, version: int, offset: int, size: int) -> bytes:
        with self._lock:
            if version < 0 or version >= len(self._snapshots):
                raise VersionNotPublishedError("fullcopy", version)
            snapshot = self._snapshots[version]
        if offset + size > len(snapshot):
            raise InvalidRangeError(
                f"read range ({offset}, {size}) exceeds snapshot size {len(snapshot)}"
            )
        return snapshot[offset:offset + size]

    def get_size(self, version: int) -> int:
        with self._lock:
            if version < 0 or version >= len(self._snapshots):
                raise VersionNotPublishedError("fullcopy", version)
            return len(self._snapshots[version])

    def get_recent(self) -> int:
        with self._lock:
            return len(self._snapshots) - 1

    # -- accounting ---------------------------------------------------------------
    def bytes_stored(self) -> int:
        """Total bytes this scheme keeps across all versions."""
        with self._lock:
            return sum(len(snapshot) for snapshot in self._snapshots)

    def version_count(self) -> int:
        with self._lock:
            return len(self._snapshots)
