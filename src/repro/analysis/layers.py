"""Layer contracts of this repository, declared as plain data.

DESIGN.md's architectural invariants live here in machine-checkable form;
:mod:`repro.analysis.rules` reads them, and ``tests/test_analysis.py``
validates the declarations against the real tree so a renamed module
cannot silently hollow a contract out.

Adding a module to a layer (or a new forbidden backend) is a one-line
change to the tuples below — the import-graph rule (``RPR003``) and the
coroutine-purity exemption (``RPR002``) pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LayerContract:
    """One import-graph invariant: *modules* must never import *forbidden*.

    Prefixes cover whole subtrees: ``repro.util`` covers every
    ``repro.util.*`` module, and ``repro.providers`` forbids every
    ``repro.providers.*`` import.
    """

    #: Short name used in finding messages (``sans-io``).
    name: str
    #: Why the contract exists — one sentence, surfaced in messages.
    rationale: str
    #: Dotted module prefixes the contract covers.
    modules: tuple[str, ...]
    #: Dotted module prefixes the covered modules must not import.
    forbidden: tuple[str, ...]


#: The sans-IO planner layer (DESIGN.md §8): metadata geometry, the
#: frontier read/build planners, wire serialization, the pure utility
#: helpers, and the version-manager record types are driven by generators
#: and return values only.  They must stay importable — and testable —
#: without pulling in any I/O engine, backend, simulator, retry machinery
#: or observability code.
SANS_IO = LayerContract(
    name="sans-io",
    rationale=(
        "sans-IO planners must stay free of I/O engines and backends so "
        "both the threaded client and the simulator can drive them"
    ),
    modules=(
        "repro.metadata.geometry",
        "repro.metadata.read_plan",
        "repro.metadata.build",
        "repro.metadata.serialization",
        "repro.util",
        "repro.version.records",
    ),
    forbidden=(
        "repro.providers",
        "repro.aio",
        "repro.sim",
        "repro.fault.retry",
        "repro.obs",
    ),
)

#: Every declared contract, in the order findings should cite them.
LAYER_CONTRACTS: tuple[LayerContract, ...] = (SANS_IO,)

#: Modules that ARE the I/O runtime seam: the one place in the tree where
#: a coroutine may legitimately block (``SyncRuntime``'s awaitables all
#: complete inline — blocking there is its contract, see
#: :mod:`repro.aio`).  The coroutine-purity rule (``RPR002``) skips them.
RUNTIME_SEAM_MODULES: tuple[str, ...] = ("repro.aio",)


def validate_contracts() -> None:
    """Sanity-check the declarations themselves (run by the test suite).

    A contract whose ``modules`` and ``forbidden`` prefixes overlap would
    make every covered file its own violation; empty tuples would make the
    rule silently vacuous.
    """
    names = [contract.name for contract in LAYER_CONTRACTS]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate contract names: {names}")
    for contract in LAYER_CONTRACTS:
        if not contract.modules or not contract.forbidden:
            raise ValueError(f"contract {contract.name!r} is vacuous")
        for module in contract.modules:
            for banned in contract.forbidden:
                if module == banned or module.startswith(banned + "."):
                    raise ValueError(
                        f"contract {contract.name!r}: covered module "
                        f"{module!r} lies inside forbidden prefix {banned!r}"
                    )
