"""Core of the repo-specific lint pass: contexts, findings, suppressions.

The engine is deliberately tiny and stdlib-only (``ast`` + ``re``): it
walks Python files, hands each one to every registered :class:`Rule` as a
:class:`ModuleContext` (source, parsed tree, resolved dotted module name),
collects :class:`Finding` records, and applies per-line
``# repro: noqa(RULE)`` suppressions.  Rules live in
:mod:`repro.analysis.rules`; the layer contracts they consult are plain
data in :mod:`repro.analysis.layers`.

Suppression policy
------------------
A finding is suppressed only by an *exact-rule* directive on the offending
line::

    self._probe_queue.get()  # repro: noqa(RPR002) -- bounded by poll loop

Blanket directives (``# repro: noqa`` with no rule list) are themselves
reported as :data:`MALFORMED_SUPPRESSION` findings, so the suppression
surface stays enumerable: ``python -m repro.analysis --list-rules`` prints
the per-rule directive counts and CI logs make drift visible.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator

#: Rule id reserved for the engine's own finding about unparseable or
#: blanket ``repro: noqa`` directives (they would silently widen the
#: suppression surface, so they are an error rather than a no-op).
MALFORMED_SUPPRESSION = "RPR000"

#: A well-formed directive: a comment carrying ``repro: noqa(<RULE-ID>)``
#: with one or more comma-separated rule ids, optionally followed by a
#: free-form justification after ``--``.
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\s*\(\s*(?P<ids>RPR\d{3}(?:\s*,\s*RPR\d{3})*)\s*\)"
)

#: Any attempt at a ``repro: noqa`` directive, including malformed ones.
NOQA_ANY_RE = re.compile(r"#\s*repro:\s*noqa\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file, as given on the command line.
    path: str
    #: 1-indexed source line of the violation.
    line: int
    #: 0-indexed column offset (``ast`` convention).
    col: int
    #: Stable rule identifier (``RPR001`` … — never renumbered).
    rule_id: str
    #: Human-readable one-line description of this specific violation.
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one Python file."""

    #: Path as passed on the command line (kept relative for readability).
    path: Path
    #: Resolved dotted module name (``repro.metadata.read_plan``); for
    #: files outside any package this is just the file's stem.
    module: str
    #: Raw source text.
    source: str
    #: Parsed module tree.
    tree: ast.Module
    #: Source split into lines (1-indexed access via ``lines[lineno - 1]``).
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    #: Lazily computed map of COMMENT lines carrying a ``repro: noqa``
    #: directive: line → suppressed rule ids, or None for a malformed
    #: directive.  Token-based, so directives quoted inside strings and
    #: docstrings are never treated as live suppressions.
    _noqa: dict[int, tuple[str, ...] | None] | None = None

    def noqa_directives(self) -> dict[int, tuple[str, ...] | None]:
        if self._noqa is None:
            self._noqa = _comment_directives(self.source)
        return self._noqa

    def suppressed_ids(self, lineno: int) -> tuple[str, ...]:
        ids = self.noqa_directives().get(lineno)
        return ids if ids else ()


def _comment_directives(source: str) -> dict[int, tuple[str, ...] | None]:
    """Scan *source*'s comment tokens for ``repro: noqa`` directives."""
    directives: dict[int, tuple[str, ...] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string
            if NOQA_ANY_RE.search(text) is None:
                continue
            match = NOQA_RE.search(text)
            if match is None:
                directives[token.start[0]] = None
            else:
                directives[token.start[0]] = tuple(
                    rule_id.strip() for rule_id in match.group("ids").split(",")
                )
    except tokenize.TokenError:
        pass
    return directives


class Rule:
    """Base class of one lint rule; subclasses register via :func:`rule`."""

    #: Stable identifier, e.g. ``"RPR001"``.
    id: str = ""
    #: Short kebab-ish name shown in ``--list-rules``.
    name: str = ""
    #: One-line description of the invariant the rule enforces.
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


#: Registry of every known rule, keyed by rule id, in registration order.
RULES: dict[str, Rule] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a :class:`Rule` subclass by its id."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def module_name_for(path: Path) -> str:
    """Resolve *path* to a dotted module name by walking up ``__init__.py``
    package directories (``src/repro/util/ids.py`` → ``repro.util.ids``);
    a file outside any package resolves to its bare stem."""
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts)


def is_package_init(path: Path) -> bool:
    return path.name == "__init__.py"


def resolve_import(
    module: str, *, is_package: bool, level: int, target: str | None
) -> str:
    """Resolve an ``ImportFrom`` to an absolute dotted module name.

    ``level`` is the number of leading dots (0 for absolute imports);
    relative imports resolve against *module*, which must be the importing
    file's dotted name (``is_package`` says whether it is an
    ``__init__.py``, whose first dot refers to itself).
    """
    if level == 0:
        return target or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[: len(parts) - drop] if drop <= len(parts) else []
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def covers(prefix: str, module: str) -> bool:
    """True when *module* is *prefix* itself or nested inside it."""
    return module == prefix or module.startswith(prefix + ".")


@dataclass
class SuppressionUse:
    """One ``repro: noqa`` directive found in a scanned file."""

    path: str
    line: int
    rule_ids: tuple[str, ...]


@dataclass
class AnalysisReport:
    """Outcome of :func:`analyze_paths`."""

    #: Findings NOT covered by a same-line suppression — these fail CI.
    findings: list[Finding] = field(default_factory=list)
    #: Findings that a well-formed same-line directive suppressed.
    suppressed: list[Finding] = field(default_factory=list)
    #: Every well-formed directive seen, whether or not it fired.
    directives: list[SuppressionUse] = field(default_factory=list)
    #: Number of Python files scanned.
    files_scanned: int = 0

    def directive_counts(self) -> dict[str, int]:
        """Per-rule count of ``noqa`` directives present in the scanned
        tree (the drift signal ``--list-rules`` reports)."""
        counts: dict[str, int] = {rule_id: 0 for rule_id in RULES}
        for use in self.directives:
            for rule_id in use.rule_ids:
                counts[rule_id] = counts.get(rule_id, 0) + 1
        return counts


def _scan_directives(ctx: ModuleContext) -> tuple[list[SuppressionUse], list[Finding]]:
    """Collect well-formed directives and flag malformed ones."""
    uses: list[SuppressionUse] = []
    malformed: list[Finding] = []
    for lineno, ids in sorted(ctx.noqa_directives().items()):
        if ids is None:
            malformed.append(
                Finding(
                    path=str(ctx.path),
                    line=lineno,
                    col=max(ctx.line_text(lineno).find("#"), 0),
                    rule_id=MALFORMED_SUPPRESSION,
                    message=(
                        "malformed suppression: use "
                        "'# repro: noqa(<RULE-ID>)' with an explicit rule list"
                    ),
                )
            )
        else:
            uses.append(
                SuppressionUse(path=str(ctx.path), line=lineno, rule_ids=ids)
            )
    return uses, malformed


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* (files pass through,
    directories recurse) in deterministic sorted order."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_source(
    source: str, *, path: str | Path = "<snippet>", module: str | None = None
) -> ModuleContext:
    """Build a :class:`ModuleContext` for in-memory source (test helper)."""
    path = Path(path)
    if module is None:
        module = module_name_for(path) if path.suffix == ".py" else path.stem
    return ModuleContext(
        path=path, module=module, source=source, tree=ast.parse(source)
    )


def check_module(ctx: ModuleContext) -> AnalysisReport:
    """Run every registered rule over one module and fold in suppressions."""
    report = AnalysisReport(files_scanned=1)
    uses, malformed = _scan_directives(ctx)
    report.directives.extend(uses)
    report.findings.extend(malformed)
    raw: list[Finding] = []
    for rule_obj in RULES.values():
        raw.extend(rule_obj.check(ctx))
    for found in raw:
        if found.rule_id in ctx.suppressed_ids(found.line):
            report.suppressed.append(found)
        else:
            report.findings.append(found)
    return report


def analyze_paths(paths: Iterable[str | Path]) -> AnalysisReport:
    """Run the full rule set over every Python file under *paths*."""
    # Import for side effect: registers the rule set exactly once even
    # when callers use the engine directly.
    from . import rules as _rules  # noqa: F401

    total = AnalysisReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            total.findings.append(
                Finding(
                    path=str(file_path),
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    rule_id=MALFORMED_SUPPRESSION,
                    message=f"file does not parse: {error.msg}",
                )
            )
            total.files_scanned += 1
            continue
        ctx = ModuleContext(
            path=file_path,
            module=module_name_for(file_path),
            source=source,
            tree=tree,
        )
        partial = check_module(ctx)
        total.findings.extend(partial.findings)
        total.suppressed.extend(partial.suppressed)
        total.directives.extend(partial.directives)
        total.files_scanned += 1
    total.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return total
