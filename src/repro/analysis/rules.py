"""The repository's invariant rules (RPR001–RPR005).

Each rule is the machine-checked form of a DESIGN.md invariant (see
DESIGN.md §12 for the rule ↔ design-section map).  Rule ids are stable:
they are never renumbered or reused, so ``# repro: noqa(RPR00n)``
suppressions and CI logs stay meaningful across revisions.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..config import FEATURE_KNOBS
from .engine import Finding, ModuleContext, Rule, covers, resolve_import, rule
from .layers import LAYER_CONTRACTS, RUNTIME_SEAM_MODULES

#: Heuristic for "this expression names a threading synchronisation
#: primitive": matches ``lock`` / ``mutex`` / ``cond(ition)`` /
#: ``sem(aphore)`` anywhere in the identifier (``self._lock``,
#: ``shard.lock``, ``record.condition``, ``_pool_lock`` …).
_LOCK_NAME_RE = re.compile(r"lock|mutex|cond|sem", re.IGNORECASE)

#: Dotted call targets that block the calling thread.  RPR002 flags them
#: inside ``async def`` bodies — a blocked coroutine blocks the whole
#: event loop and every gathered operation on it.
BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.waitpid",
        "urllib.request.urlopen",
    }
)

#: Bare builtins that perform blocking file/console I/O.
BLOCKING_BUILTINS: frozenset[str] = frozenset({"open", "input"})

#: Any dotted path *ending* in one of these is blocking by contract:
#: :func:`repro.aio.run_sync` drives a coroutine to completion inline, so
#: calling it from a coroutine nests one engine inside another and blocks
#: the loop for the full inner operation.
BLOCKING_TAILS: frozenset[str] = frozenset({"run_sync"})

#: Methods that block when invoked on a queue-like receiver (identified
#: by name, e.g. ``self._queue.get()``).
BLOCKING_QUEUE_METHODS: frozenset[str] = frozenset({"get", "put", "join"})
_QUEUE_NAME_RE = re.compile(r"queue", re.IGNORECASE)


def _dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _own_scope_walk(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class
    scopes — an ``await`` inside a nested ``async def`` belongs to that
    function, not to the enclosing one."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _async_functions(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _lockish_display(expr: ast.expr) -> str | None:
    """Name of *expr* when it plausibly denotes a threading primitive."""
    if isinstance(expr, ast.Name) and _LOCK_NAME_RE.search(expr.id):
        return expr.id
    if isinstance(expr, ast.Attribute) and _LOCK_NAME_RE.search(expr.attr):
        dotted = _dotted_name(expr)
        return dotted if dotted is not None else expr.attr
    return None


@rule
class LockHeldAcrossAwait(Rule):
    """A ``with <lock>:`` scope in a coroutine must not contain ``await``.

    A threading lock held across a suspension point is held for the
    lifetime of *every other task* the loop schedules in between — the
    deadlock/starvation class the async core must never reintroduce
    (DESIGN.md §8).  Asyncio primitives (``async with``) are exempt by
    construction: the rule only inspects synchronous ``with`` blocks.
    """

    id = "RPR001"
    name = "lock-held-across-await"
    description = "threading lock/condition scope contains an await"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in _async_functions(ctx.tree):
            for node in _own_scope_walk(func.body):
                if not isinstance(node, ast.With):
                    continue
                lock_names = [
                    name
                    for item in node.items
                    if (name := _lockish_display(item.context_expr)) is not None
                ]
                if not lock_names:
                    continue
                for inner in _own_scope_walk(node.body):
                    if isinstance(inner, ast.Await):
                        yield self.finding(
                            ctx,
                            node,
                            f"'with {lock_names[0]}' in coroutine "
                            f"'{func.name}' spans 'await' at line "
                            f"{inner.lineno}; release the lock before "
                            "suspending",
                        )
                        break


@rule
class BlockingCallInCoroutine(Rule):
    """Coroutines must not call blocking primitives.

    ``time.sleep``, blocking queue methods, file/socket I/O and
    :func:`repro.aio.run_sync` park the event-loop thread, so one slow
    operation stalls every gathered read.  Only the I/O runtime seam
    itself (:data:`repro.analysis.layers.RUNTIME_SEAM_MODULES`) may block
    — blocking inline is ``SyncRuntime``'s documented contract.
    """

    id = "RPR002"
    name = "blocking-call-in-coroutine"
    description = "blocking primitive called inside 'async def'"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(covers(seam, ctx.module) for seam in RUNTIME_SEAM_MODULES):
            return
        for func in _async_functions(ctx.tree):
            for node in _own_scope_walk(func.body):
                if not isinstance(node, ast.Call):
                    continue
                label = self._blocking_label(node)
                if label is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"blocking call '{label}' inside coroutine "
                        f"'{func.name}'; use the IORuntime seam "
                        "(await runtime.sleep / run_batches) instead",
                    )

    @staticmethod
    def _blocking_label(call: ast.Call) -> str | None:
        dotted = _dotted_name(call.func)
        if dotted is not None:
            if dotted in BLOCKING_CALLS:
                return dotted
            if dotted in BLOCKING_BUILTINS:
                return dotted
            tail = dotted.rsplit(".", 1)[-1]
            if tail in BLOCKING_TAILS:
                return dotted
            if tail in BLOCKING_QUEUE_METHODS and "." in dotted:
                receiver = dotted.rsplit(".", 1)[0]
                if _QUEUE_NAME_RE.search(receiver):
                    return dotted
        return None


@rule
class SansIOLayerViolation(Rule):
    """The sans-IO layers must not import I/O engines or backends.

    The contract is data, not code: see
    :data:`repro.analysis.layers.LAYER_CONTRACTS`.  Both absolute and
    relative imports are resolved against the file's dotted module name,
    so ``from ..fault import retry`` inside ``repro.metadata.build`` is
    caught just like ``import repro.fault.retry``.
    """

    id = "RPR003"
    name = "sans-io-layer-violation"
    description = "sans-IO module imports an I/O engine/backend module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        contracts = [
            contract
            for contract in LAYER_CONTRACTS
            if any(covers(prefix, ctx.module) for prefix in contract.modules)
        ]
        if not contracts:
            return
        is_package = ctx.path.name == "__init__.py"
        for node in ast.walk(ctx.tree):
            candidates: list[str] = []
            if isinstance(node, ast.Import):
                candidates = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base = resolve_import(
                    ctx.module,
                    is_package=is_package,
                    level=node.level,
                    target=node.module,
                )
                candidates = [base] + [
                    f"{base}.{alias.name}" if base else alias.name
                    for alias in node.names
                ]
            else:
                continue
            for contract in contracts:
                for candidate in candidates:
                    banned = next(
                        (
                            prefix
                            for prefix in contract.forbidden
                            if covers(prefix, candidate)
                        ),
                        None,
                    )
                    if banned is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"layer '{contract.name}': {ctx.module} must "
                            f"not import {banned} ({contract.rationale})",
                        )
                        break


@rule
class UngatedFeatureKnob(Rule):
    """Feature knobs may only be read through their gate helper.

    Every optional behaviour behind a :class:`repro.config.BlobSeerConfig`
    feature field must be a provable no-op when off — the perf-gate's
    ``--exact-columns`` depends on it.  Funnelling every read through
    :meth:`BlobSeerConfig.feature_enabled` keeps the gate a single
    auditable chokepoint; a raw ``config.speculative_prefetch`` read is a
    new ungated code path waiting to happen.
    """

    id = "RPR004"
    name = "ungated-feature-knob"
    description = "feature knob read directly instead of via feature_enabled()"

    #: The config module itself (field definitions, validation and the
    #: gate helper) is the one legitimate home of raw knob access.
    exempt_modules: tuple[str, ...] = ("repro.config",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(covers(prefix, ctx.module) for prefix in self.exempt_modules):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in FEATURE_KNOBS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"feature knob '{node.attr}' read directly; call "
                    f"config.feature_enabled({node.attr!r}) so the no-op "
                    "gate stays auditable",
                )


@rule
class UndocumentedStatsCounter(Rule):
    """Every stats/result field carries a ``#:`` docstring.

    ``ReadStats`` / ``WriteResult`` / ``*Stats`` fields are the repo's
    public measurement surface — benchmark columns and CI perf-gates are
    built on them, so an undocumented counter is an unreviewable number.
    Accepted forms: a ``#:`` comment block immediately above the field, or
    an inline ``#:`` trailing the field's line.
    """

    id = "RPR005"
    name = "undocumented-stats-counter"
    description = "stats dataclass field lacks a '#:' docstring"

    @staticmethod
    def _is_stats_class(node: ast.ClassDef) -> bool:
        return node.name.endswith("Stats") or node.name in (
            "WriteResult",
            "ReadResult",
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and self._is_stats_class(node)):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ):
                    continue
                if self._documented(ctx, stmt):
                    continue
                yield self.finding(
                    ctx,
                    stmt,
                    f"field '{node.name}.{stmt.target.id}' lacks a '#:' "
                    "docstring comment",
                )

    @staticmethod
    def _documented(ctx: ModuleContext, stmt: ast.AnnAssign) -> bool:
        end = stmt.end_lineno if stmt.end_lineno is not None else stmt.lineno
        for lineno in range(stmt.lineno, end + 1):
            if "#:" in ctx.line_text(lineno):
                return True
        lineno = stmt.lineno - 1
        while lineno >= 1:
            text = ctx.line_text(lineno).strip()
            if not text.startswith("#"):
                break
            if text.startswith("#:"):
                return True
            lineno -= 1
        return False
