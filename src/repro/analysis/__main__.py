"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit status is 0 when every finding is suppressed (or none exist) and 1
otherwise, so CI can gate on it directly.  ``--list-rules`` prints the
rule table with current suppression-directive counts — drift in ``noqa``
usage shows up in CI logs without failing the build.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .engine import RULES, analyze_paths

#: Paths scanned when none are given: the package sources and the
#: benchmark harness (tests intentionally seed violations as fixtures).
DEFAULT_PATHS = ("src", "benchmarks")


def _list_rules(paths: Sequence[str]) -> int:
    report = analyze_paths(paths)
    counts = report.directive_counts()
    header = f"{'ID':<8}{'NAME':<28}{'SUPPRESSIONS':>12}  DESCRIPTION"
    print(header)
    print("-" * len(header))
    for rule_id, rule_obj in RULES.items():
        print(
            f"{rule_id:<8}{rule_obj.name:<28}"
            f"{counts.get(rule_id, 0):>12}  {rule_obj.description}"
        )
    total = sum(counts.values())
    print("-" * len(header))
    print(
        f"{len(RULES)} rules, {total} suppression directive(s) across "
        f"{report.files_scanned} file(s)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Run the repo-specific invariant lint pass (rules RPR001-RPR005; "
            "see DESIGN.md §12)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table with current suppression counts and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules(args.paths)

    report = analyze_paths(args.paths)
    for found in report.findings:
        print(found.render())
    suppressed = len(report.suppressed)
    print(
        f"{len(report.findings)} finding(s), {suppressed} suppressed, "
        f"{report.files_scanned} file(s) scanned"
    )
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
