"""Repo-specific static analysis and runtime concurrency sanitizers.

This package is the machine-checked form of DESIGN.md's invariant prose
(§12 "Invariants as lint"):

* **The lint pass** — ``python -m repro.analysis [paths]`` — is an
  AST-based engine (stdlib ``ast`` only) with five repository rules:

  ========  =============================  =====================================
  RPR001    lock-held-across-await         no threading lock scope spans a
                                           suspension point (DESIGN.md §8)
  RPR002    blocking-call-in-coroutine     coroutines never block the loop;
                                           only the :mod:`repro.aio` seam may
  RPR003    sans-io-layer-violation        planner modules import no I/O
                                           engine/backend (layer data in
                                           :mod:`repro.analysis.layers`)
  RPR004    ungated-feature-knob           feature knobs are read only via
                                           ``BlobSeerConfig.feature_enabled``
  RPR005    undocumented-stats-counter     every ``*Stats``/``WriteResult``
                                           field carries a ``#:`` docstring
  ========  =============================  =====================================

  Deliberate exceptions are per-line ``# repro: noqa(RPR00n)`` directives
  with a justification; blanket suppressions are themselves findings.

* **The runtime sanitizer** — :mod:`repro.analysis.sanitizer` — wraps
  ``threading`` locks while installed, records per-thread acquisition
  stacks, maintains the process-wide lock-order graph, and raises on an
  ordering cycle (potential deadlock) or on a sanitized lock held across
  an ``await`` that actually suspends.  Off by default and never imported
  by production code paths; the test suite enables it via the
  ``lock_sanitizer`` fixture (and ``REPRO_SANITIZE=1`` in the async/chaos
  CI jobs).
"""

from __future__ import annotations

from .engine import (
    RULES,
    AnalysisReport,
    Finding,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    check_module,
    module_name_for,
)
from .layers import LAYER_CONTRACTS, RUNTIME_SEAM_MODULES, LayerContract

# Importing the package registers the rule set: engine.RULES is populated
# by the @rule decorators at rules.py import time.
from . import rules as _rules  # noqa: E402,F401  (import for side effect)

__all__ = [
    "RULES",
    "AnalysisReport",
    "Finding",
    "LAYER_CONTRACTS",
    "LayerContract",
    "ModuleContext",
    "RUNTIME_SEAM_MODULES",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "check_module",
    "module_name_for",
]
