"""Runtime concurrency sanitizer: lock-order and async-purity checks.

The static rules (RPR001/RPR002) catch what the AST can see; this module
catches what only execution can: the *actual* process-wide lock-order
graph, and awaits that *actually* suspend while a lock is held.

While installed, :class:`LockSanitizer` replaces ``threading.Lock`` /
``threading.RLock`` with factories returning instrumented wrappers (and
``threading.Condition``'s default lock, which resolves ``RLock`` through
the ``threading`` module namespace, picks the wrapper up automatically).
Each wrapper records, per thread, the stack of sanitized locks currently
held:

* **Lock-order cycles** — acquiring ``B`` while holding ``A`` adds the
  edge ``A → B`` to a process-wide directed graph (with the acquisition
  stack as evidence).  If ``B … → A`` is already reachable, the new edge
  closes a cycle: two threads interleaving those paths can deadlock, so
  the acquire raises :class:`LockOrderViolation` immediately — on the
  *first* inverted acquisition, not on the unlucky interleaving.

* **Locks held across suspension** — installing also patches the event
  loop policy so every new loop gets a task factory that drives each
  coroutine through a checkpoint: whenever a task genuinely suspends
  (yields to the loop), the sanitizer verifies the running thread holds
  no sanitized lock and raises :class:`LockHeldAcrossAwaitError`
  otherwise.  An ``await`` that completes inline (the ``SyncRuntime``
  trampoline, an already-done future) never reaches the checkpoint, so
  the sync bridge stays exempt by construction.

The sanitizer is **off by default and zero-cost when off**: production
code never imports this module, and nothing is patched until
:meth:`LockSanitizer.install` runs.  The test suite enables it via the
``lock_sanitizer`` fixture in ``tests/conftest.py``; CI flips it on for
the async and chaos suites with ``REPRO_SANITIZE=1``.

Wrappers created while installed keep working after ``uninstall()`` —
they simply stop reporting — because caches and clusters built under a
fixture outlive it.
"""

from __future__ import annotations

import asyncio
import threading
import traceback
import types
from dataclasses import dataclass, field

__all__ = [
    "LockHeldAcrossAwaitError",
    "LockOrderViolation",
    "LockSanitizer",
    "SanitizedLock",
]

#: Frames of acquisition stack kept as evidence on each lock-order edge.
_EVIDENCE_FRAMES = 8

#: Stack frames whose filename contains one of these are trimmed from
#: evidence: they are the sanitizer's own plumbing, not the caller's.
_NOISE = ("analysis/sanitizer", "threading.py")


class LockOrderViolation(RuntimeError):
    """Two sanitized locks were acquired in inconsistent orders.

    Raised at the acquisition that closes a cycle in the process-wide
    lock-order graph — the canonical potential-deadlock signal, reported
    deterministically even when the schedule that would deadlock never
    happens to run.
    """


class LockHeldAcrossAwaitError(RuntimeError):
    """A sanitized threading lock was held across a real suspension.

    The event loop regained control while the running thread still held a
    lock: every other task scheduled before the coroutine resumes runs
    with that lock held — the starvation/deadlock class DESIGN.md §8
    forbids (static twin: lint rule RPR001).
    """


def _caller_site() -> str:
    """``file:line`` of the frame that created a lock (evidence label)."""
    for frame in reversed(traceback.extract_stack(limit=16)):
        name = frame.filename.replace("\\", "/")
        if not any(noise in name for noise in _NOISE):
            return f"{name.rsplit('/', 1)[-1]}:{frame.lineno}"
    return "<unknown>"


def _evidence_stack() -> tuple[str, ...]:
    frames = [
        f"{frame.filename.replace(chr(92), '/').rsplit('/', 1)[-1]}"
        f":{frame.lineno} in {frame.name}"
        for frame in traceback.extract_stack(limit=_EVIDENCE_FRAMES + 8)
        if not any(noise in frame.filename.replace("\\", "/") for noise in _NOISE)
    ]
    return tuple(frames[-_EVIDENCE_FRAMES:])


@dataclass
class _Edge:
    """Evidence for one observed ordering ``holder → acquired``."""

    #: Thread that recorded the ordering first.
    thread: str
    #: Trimmed acquisition stack at the moment the edge was recorded.
    stack: tuple[str, ...] = field(default_factory=tuple)


class SanitizedLock:
    """Instrumented stand-in for ``threading.Lock`` / ``threading.RLock``.

    Delegates every operation to the wrapped primitive and reports
    acquisition/release transitions to its :class:`LockSanitizer`.  The
    ``_release_save`` / ``_acquire_restore`` / ``_is_owned`` trio is
    forwarded with bookkeeping so ``threading.Condition.wait`` — which
    bypasses ``release()``/``acquire()`` — keeps the held-stack exact.
    """

    __slots__ = ("_inner", "_san", "name", "site", "_serial")

    def __init__(self, sanitizer: LockSanitizer, inner, name: str | None = None):
        self._inner = inner
        self._san = sanitizer
        self.site = _caller_site()
        self.name = name if name is not None else f"lock@{self.site}"
        self._serial = sanitizer._register(self)

    # -- core lock protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._san._note_acquire(self)
        return acquired

    def release(self) -> None:
        self._san._note_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<SanitizedLock {self.name} wrapping {self._inner!r}>"

    # -- Condition integration ---------------------------------------------
    # threading.Condition probes for these and, when present, uses them to
    # drop/retake the lock around wait().  Forward them with bookkeeping,
    # falling back to plain release/acquire when the inner lock (a
    # non-reentrant Lock) does not define them.
    def _release_save(self):
        self._san._note_release(self)
        inner = getattr(self._inner, "_release_save", None)
        if inner is not None:
            return inner()
        self._inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        inner = getattr(self._inner, "_acquire_restore", None)
        if inner is not None:
            inner(state)
        else:
            self._inner.acquire()
        self._san._note_acquire(self)

    def _is_owned(self) -> bool:
        inner = getattr(self._inner, "_is_owned", None)
        if inner is not None:
            return inner()
        # Non-reentrant Lock: mirror threading.Condition's own fallback.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True


class LockSanitizer:
    """Process-wide lock-order graph + per-thread held-lock stacks.

    One instance is installed at a time (:meth:`install` patches the
    ``threading`` factories and the event-loop policy; :meth:`uninstall`
    restores them).  Violations raise synchronously inside the offending
    ``acquire``/``await`` so the failing test points at the exact site.
    """

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        #: serial(holder) → {serial(acquired): _Edge}
        self._edges: dict[int, dict[int, _Edge]] = {}
        #: serial → lock (strong refs: serials must stay unambiguous).
        self._locks: dict[int, SanitizedLock] = {}
        self._tls = threading.local()
        self._active = False
        self._installed = False
        self._saved: dict[str, object] = {}
        self._serial = 0
        #: Count of violations raised (self-tests assert on it).
        self.violations = 0

    # -- registration -------------------------------------------------------
    def _register(self, lock: SanitizedLock) -> int:
        with self._graph_lock:
            self._serial += 1
            self._locks[self._serial] = lock
            return self._serial

    def _held(self) -> list[SanitizedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def held_names(self) -> tuple[str, ...]:
        """Names of sanitized locks the calling thread currently holds."""
        return tuple(lock.name for lock in self._held())

    # -- transition hooks ---------------------------------------------------
    def _note_acquire(self, lock: SanitizedLock) -> None:
        if not self._active:
            return
        held = self._held()
        if any(entry is lock for entry in held):
            # Reentrant re-acquisition (RLock / Condition restore): depth
            # bookkeeping only, no new ordering information.
            held.append(lock)
            return
        for holder in {entry._serial: entry for entry in held}.values():
            self._record_edge(holder, lock)
        held.append(lock)

    def _note_release(self, lock: SanitizedLock) -> None:
        if not self._active:
            return
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                return

    def _record_edge(self, holder: SanitizedLock, acquired: SanitizedLock) -> None:
        thread = threading.current_thread().name
        with self._graph_lock:
            successors = self._edges.setdefault(holder._serial, {})
            if acquired._serial in successors:
                return  # ordering already proven consistent
            path = self._find_path(acquired._serial, holder._serial)
            if path is None:
                successors[acquired._serial] = _Edge(
                    thread=thread, stack=_evidence_stack()
                )
                return
            self.violations += 1
            cycle = [acquired._serial, *path]
            lines = [
                f"lock-order cycle: acquiring '{acquired.name}' while "
                f"holding '{holder.name}' (thread {thread}) inverts the "
                "established order:"
            ]
            for serial_a, serial_b in zip(cycle, cycle[1:]):
                edge = self._edges[serial_a][serial_b]
                lines.append(
                    f"  '{self._locks[serial_a].name}' was held while "
                    f"acquiring '{self._locks[serial_b].name}' "
                    f"(thread {edge.thread}):"
                )
                lines.extend(f"    {frame}" for frame in edge.stack[-3:])
        raise LockOrderViolation("\n".join(lines))

    def _find_path(self, start: int, goal: int) -> list[int] | None:
        """DFS over the edge graph; returns the node path start→…→goal
        (excluding ``start``) or None.  Caller holds ``_graph_lock``."""
        if start == goal:
            return []
        stack: list[tuple[int, list[int]]] = [(start, [])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for successor in self._edges.get(node, ()):
                if successor == goal:
                    return path + [successor]
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, path + [successor]))
        return None

    # -- async purity -------------------------------------------------------
    def check_suspension(self) -> None:
        """Raise if the calling thread suspends while holding locks."""
        if not self._active:
            return
        held = self.held_names()
        if held:
            self.violations += 1
            raise LockHeldAcrossAwaitError(
                "coroutine suspended while the thread holds sanitized "
                f"lock(s): {', '.join(held)}; release before awaiting "
                "(DESIGN.md §8 / lint rule RPR001)"
            )

    def guard(self, coro):
        """Wrap *coro* so every genuine suspension passes the checkpoint."""
        sanitizer = self

        @types.coroutine
        def driven():
            to_send = None
            to_throw = None
            while True:
                try:
                    if to_throw is not None:
                        yielded = coro.throw(to_throw)
                    else:
                        yielded = coro.send(to_send)
                except StopIteration as stop:
                    return stop.value
                # The coroutine yielded to the event loop: it is about to
                # genuinely suspend.  Awaits that complete inline never
                # reach this line.
                try:
                    sanitizer.check_suspension()
                except LockHeldAcrossAwaitError:
                    # Unwind the suspended coroutine so its 'with' blocks
                    # release the offending locks before the error surfaces.
                    coro.close()
                    raise
                to_throw = None
                try:
                    to_send = yield yielded
                except BaseException as exc:  # pragma: no cover - cancel path
                    to_throw = exc

        async def runner():
            return await driven()

        return runner()

    def task_factory(self, loop, coro, **kwargs):
        """``loop.set_task_factory`` hook driving tasks through the guard."""
        if asyncio.iscoroutine(coro):
            coro = self.guard(coro)
        return asyncio.Task(coro, loop=loop, **kwargs)

    # -- install / uninstall -------------------------------------------------
    def enable(self) -> "LockSanitizer":
        """Activate checking for explicitly :meth:`wrap`-ped locks without
        patching anything process-wide (the self-tests' mode)."""
        self._active = True
        return self

    def install(self) -> "LockSanitizer":
        """Patch the ``threading`` factories and the event-loop policy."""
        if self._installed:
            raise RuntimeError("sanitizer already installed")
        sanitizer = self
        real_lock = threading.Lock
        real_rlock = threading.RLock

        def make_lock():
            return SanitizedLock(sanitizer, real_lock())

        def make_rlock():
            return SanitizedLock(sanitizer, real_rlock())

        self._saved = {"Lock": real_lock, "RLock": real_rlock}
        threading.Lock = make_lock
        threading.RLock = make_rlock

        policy = asyncio.get_event_loop_policy()
        real_new_loop = policy.new_event_loop

        def new_event_loop():
            loop = real_new_loop()
            loop.set_task_factory(sanitizer.task_factory)
            return loop

        self._saved["policy"] = policy
        self._saved["new_event_loop"] = real_new_loop
        policy.new_event_loop = new_event_loop

        self._active = True
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the patched factories; existing wrappers go inert."""
        if not self._installed:
            return
        self._active = False
        self._installed = False
        threading.Lock = self._saved["Lock"]
        threading.RLock = self._saved["RLock"]
        policy = self._saved["policy"]
        if asyncio.get_event_loop_policy() is policy:
            policy.new_event_loop = self._saved["new_event_loop"]
        self._saved = {}

    def __enter__(self) -> "LockSanitizer":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- introspection -------------------------------------------------------
    def edge_count(self) -> int:
        """Number of distinct orderings observed (self-test visibility)."""
        with self._graph_lock:
            return sum(len(successors) for successors in self._edges.values())

    def lock_count(self) -> int:
        """Number of locks created (and thus instrumented) while active."""
        with self._graph_lock:
            return len(self._locks)

    def wrap(self, inner=None, name: str | None = None) -> SanitizedLock:
        """Explicitly wrap a lock (used by tests to name seeded locks)."""
        if inner is None:
            inner = self._saved.get("Lock", threading.Lock)()
            if isinstance(inner, SanitizedLock):  # already patched factory
                inner = inner._inner
        return SanitizedLock(self, inner, name=name)
