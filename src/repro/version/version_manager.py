"""The version manager: total ordering, publication and atomicity.

Responsibilities (Sections 3.1, 4.2 and 4.3 of the paper):

* assign strictly increasing snapshot versions to WRITE/APPEND requests
  (serialized — the only mandatory synchronization point of the system);
* for APPEND, provide the offset, i.e. the size of the previous snapshot;
* track in-flight updates (assigned but unpublished) and hand their ranges to
  later writers so border nodes can be computed without waiting;
* publish completed updates strictly in version order, which makes every
  update appear atomic: a snapshot becomes visible only when it and every
  earlier snapshot are complete;
* implement SYNC ("read your writes"), GET_RECENT, GET_SIZE and BRANCH.

Extension beyond the paper: updates can be aborted explicitly or reaped
after a configurable timeout so that one crashed writer cannot stall
publication forever (the paper defers fault tolerance to future work).

Batched service semantics (PR 4, see :mod:`repro.vm`): the per-call methods
are retained, but the heavy lifting now lives in :meth:`multi_register` and
:meth:`multi_complete`, which apply a whole batch of registrations or
completion/abort notices with ONE condition acquisition per blob touched —
the server-side half of the group-commit protocol.  Publication events are
fanned out to subscribers (client lease caches) *after* the blob lock is
released, so leased ``GET_RECENT`` answers are invalidated/renewed the
moment a snapshot becomes visible.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..config import BlobSeerConfig
from ..errors import (
    BlobSeerError,
    ConcurrencyError,
    InvalidRangeError,
    UnknownBlobError,
    UpdateAbortedError,
    VersionNotPublishedError,
)
from ..util.ids import IdGenerator
from ..util.ranges import covering_page_range
from .records import (
    BlobRecord,
    CompletionNotice,
    InFlightUpdate,
    RecencyLease,
    RegisterRequest,
    UpdateTicket,
)

#: Listener signature for publish notifications: called with the blob's
#: fresh :class:`RecencyLease` after every publication advance, outside of
#: any version-manager lock.
PublishListener = Callable[[RecencyLease], None]


@dataclass
class _InFlightState:
    """Version-manager-side state of one assigned, unpublished update."""

    version: int
    page_offset: int
    page_count: int
    registered_at: float
    completed: bool = False
    aborted: bool = False


@dataclass
class _BlobState:
    """Mutable per-blob state guarded by the blob's condition variable."""

    record: BlobRecord
    condition: threading.Condition = field(default_factory=threading.Condition)
    next_version: int = 1
    published: int = 0
    sizes: dict[int, int] = field(default_factory=lambda: {0: 0})
    inflight: dict[int, _InFlightState] = field(default_factory=dict)
    aborted: set[int] = field(default_factory=set)


class VersionManager:
    """Centralized version manager (the paper's current implementation)."""

    def __init__(
        self,
        config: BlobSeerConfig | None = None,
        id_generator: IdGenerator | None = None,
    ):
        self._config = config if config is not None else BlobSeerConfig()
        self._ids = id_generator if id_generator is not None else IdGenerator("bs")
        self._blobs: dict[str, _BlobState] = {}
        self._lock = threading.Lock()
        self._publish_listeners: list[PublishListener] = []

    # ---------------------------------------------------------- notifications
    def subscribe_publications(self, listener: PublishListener) -> None:
        """Register a callback invoked with a fresh :class:`RecencyLease`
        every time a blob's publication watermark advances.

        Listeners run *outside* the blob condition (no lock-order hazards)
        on whichever thread triggered the advance.  Client lease caches use
        this to invalidate/renew their ``GET_RECENT`` leases the moment a
        snapshot becomes visible — the push half of the lease protocol.
        """
        with self._lock:
            self._publish_listeners.append(listener)

    def unsubscribe_publications(self, listener: PublishListener) -> None:
        """Remove a previously subscribed publish listener (idempotent).

        Event-loop SYNC waiters subscribe per call and must detach on the
        way out, or every completed wait would leak a callback invoked on
        all future publications.
        """
        with self._lock:
            try:
                self._publish_listeners.remove(listener)
            except ValueError:
                pass

    def _notify_publications(self, leases: list[RecencyLease]) -> None:
        if not leases:
            return
        with self._lock:
            listeners = list(self._publish_listeners)
        for lease in leases:
            for listener in listeners:
                listener(lease)

    # ------------------------------------------------------------------ blobs
    def create_blob(self, page_size: int | None = None) -> BlobRecord:
        """CREATE: register a new blob with an empty, published snapshot 0."""
        record = BlobRecord(
            blob_id=self._ids.next_blob_id(),
            page_size=page_size if page_size is not None else self._config.page_size,
        )
        state = _BlobState(record=record)
        with self._lock:
            self._blobs[record.blob_id] = state
        return record

    def branch(self, blob_id: str, version: int) -> BlobRecord:
        """BRANCH: virtually duplicate ``blob_id`` up to (and including)
        ``version``.

        The new blob shares all metadata and pages of versions ``<= version``
        with the original; its first update will generate ``version + 1``.
        Fails if ``version`` has not been published.
        """
        parent = self._state(blob_id)
        with parent.condition:
            if not self._is_published_locked(parent, version):
                raise VersionNotPublishedError(blob_id, version)
            base_sizes = {
                v: s for v, s in parent.sizes.items() if v <= version
            }
            base_aborted = {v for v in parent.aborted if v <= version}
        record = BlobRecord(
            blob_id=self._ids.next_blob_id(),
            page_size=parent.record.page_size,
            lineage=((blob_id, version),) + parent.record.lineage,
        )
        state = _BlobState(
            record=record,
            next_version=version + 1,
            published=version,
            sizes=base_sizes,
            aborted=base_aborted,
        )
        with self._lock:
            self._blobs[record.blob_id] = state
        return record

    def get_record(self, blob_id: str) -> BlobRecord:
        return self._state(blob_id).record

    def blob_ids(self) -> list[str]:
        with self._lock:
            return list(self._blobs)

    def _state(self, blob_id: str) -> _BlobState:
        with self._lock:
            state = self._blobs.get(blob_id)
        if state is None:
            raise UnknownBlobError(blob_id)
        return state

    # -------------------------------------------------------------- assignment
    def register_update(
        self,
        blob_id: str,
        size: int,
        offset: int | None = None,
        is_append: bool = False,
    ) -> UpdateTicket:
        """Assign the next snapshot version to a WRITE or APPEND.

        For WRITE, ``offset`` is mandatory and must not exceed the size of the
        previous snapshot.  For APPEND the offset is chosen by the version
        manager (the previous snapshot's size).  Returns an
        :class:`UpdateTicket` carrying everything the writer needs to build
        its metadata without waiting on concurrent writers.
        """
        request = RegisterRequest(
            blob_id=blob_id, size=size, offset=offset, is_append=is_append
        )
        result = self.multi_register([request])[0]
        if isinstance(result, BaseException):
            raise result
        return result

    def multi_register(
        self, requests: Sequence[RegisterRequest]
    ) -> list[UpdateTicket | BaseException]:
        """Apply a batch of registrations with ONE condition acquisition per
        blob touched — the server side of group-commit ticketing.

        Requests are processed in list order, so tickets of one blob are
        assigned in submission order (per-blob ticket order is preserved).
        Each request succeeds or fails independently: the result list is
        aligned with ``requests`` and holds an :class:`UpdateTicket` or the
        exception that single registration raised — one bad offset cannot
        poison the rest of the batch.
        """
        results: list[UpdateTicket | BaseException] = [None] * len(requests)
        by_blob: dict[str, list[int]] = {}
        for index, request in enumerate(requests):
            by_blob.setdefault(request.blob_id, []).append(index)
        published: list[RecencyLease] = []
        for blob_id, indices in by_blob.items():
            try:
                state = self._state(blob_id)
            except UnknownBlobError as error:
                for index in indices:
                    results[index] = error
                continue
            with state.condition:
                advanced = self._reap_expired_locked(state)
                for index in indices:
                    try:
                        results[index] = self._register_locked(
                            state, requests[index]
                        )
                    except BlobSeerError as error:
                        results[index] = error
                if advanced:
                    published.append(self._lease_locked(state))
        self._notify_publications(published)
        return results

    def _register_locked(
        self, state: _BlobState, request: RegisterRequest
    ) -> UpdateTicket:
        """Assign one version under the blob's (already held) condition."""
        blob_id = request.blob_id
        size = request.size
        if size <= 0:
            raise InvalidRangeError("updates must write at least one byte")
        page_size = state.record.page_size
        prev_version = state.next_version - 1
        prev_size = state.sizes[prev_version]
        if request.is_append:
            byte_offset = prev_size
        else:
            if request.offset is None:
                raise InvalidRangeError("WRITE requires an explicit offset")
            if request.offset > prev_size:
                raise InvalidRangeError(
                    f"write offset {request.offset} is beyond the size "
                    f"{prev_size} of snapshot {prev_version}"
                )
            byte_offset = request.offset

        version = state.next_version
        state.next_version += 1
        new_size = max(prev_size, byte_offset + size)
        state.sizes[version] = new_size

        published_version = self._recent_locked(state)
        published_size = state.sizes[published_version]

        inflight = tuple(
            InFlightUpdate(entry.version, entry.page_offset, entry.page_count)
            for entry in sorted(state.inflight.values(), key=lambda e: e.version)
            if not entry.aborted and entry.version < version
        )

        page_offset, page_count = covering_page_range(byte_offset, size, page_size)
        state.inflight[version] = _InFlightState(
            version=version,
            page_offset=page_offset,
            page_count=page_count,
            registered_at=time.monotonic(),
        )

        return UpdateTicket(
            blob_id=blob_id,
            version=version,
            byte_offset=byte_offset,
            byte_size=size,
            prev_size=prev_size,
            new_size=new_size,
            page_size=page_size,
            published_version=published_version,
            published_size=published_size,
            inflight=inflight,
        )

    # -------------------------------------------------------------- completion
    def complete_update(self, blob_id: str, version: int) -> None:
        """Writer notification of success (Algorithm 2, line 12).

        Marks the update complete and publishes it — together with any
        later completed updates — as soon as every earlier version is
        published, preserving total order.
        """
        notice = CompletionNotice(blob_id=blob_id, version=version)
        result = self.multi_complete([notice])[0]
        if isinstance(result, BaseException):
            raise result

    def abort_update(self, blob_id: str, version: int, reason: str = "") -> None:
        """Abort an in-flight update so publication of later versions proceeds.

        The aborted version becomes a hole: GET_RECENT skips it, READ and
        GET_SIZE on it fail.  Aborting is an extension over the paper (which
        assumes writers never fail); see DESIGN.md for its limitations under
        concurrency.
        """
        notice = CompletionNotice(
            blob_id=blob_id, version=version, kind="abort", reason=reason
        )
        result = self.multi_complete([notice])[0]
        if isinstance(result, BaseException):
            raise result

    def multi_complete(
        self, notices: Sequence[CompletionNotice]
    ) -> list[None | BaseException]:
        """Apply a batch of completion/abort notices with ONE condition
        acquisition — and one publication advance — per blob touched.

        Notices are applied strictly in list order (so an abort filed
        mid-batch lands between the completions around it, exactly like
        three sequential RPCs), each succeeding or failing independently;
        publication advances once per blob after its notices are applied,
        which is what makes N queued completions cost O(batches) instead of
        O(N) lock rounds.
        """
        results: list[None | BaseException] = [None] * len(notices)
        by_blob: dict[str, list[int]] = {}
        for index, notice in enumerate(notices):
            by_blob.setdefault(notice.blob_id, []).append(index)
        published: list[RecencyLease] = []
        for blob_id, indices in by_blob.items():
            try:
                state = self._state(blob_id)
            except UnknownBlobError as error:
                for index in indices:
                    results[index] = error
                continue
            with state.condition:
                for index in indices:
                    try:
                        self._apply_notice_locked(state, notices[index])
                    except BlobSeerError as error:
                        results[index] = error
                if self._advance_publication_locked(state):
                    published.append(self._lease_locked(state))
        self._notify_publications(published)
        return results

    def _apply_notice_locked(
        self, state: _BlobState, notice: CompletionNotice
    ) -> None:
        blob_id = notice.blob_id
        version = notice.version
        entry = state.inflight.get(version)
        if notice.kind == "abort":
            if entry is None:
                raise ConcurrencyError(
                    f"version {version} of blob {blob_id!r} is not in flight"
                )
            self._abort_locked(state, entry)
            return
        if version in state.aborted:
            raise UpdateAbortedError(blob_id, version, "aborted before completion")
        if entry is None:
            raise ConcurrencyError(
                f"version {version} of blob {blob_id!r} was never assigned "
                "or is already published"
            )
        entry.completed = True

    def _abort_locked(self, state: _BlobState, entry: _InFlightState) -> None:
        """Mark an in-flight entry aborted.

        When no later version has been assigned yet, the aborted snapshot's
        size falls back to its predecessor's so that a subsequent APPEND does
        not leave a hole.  When later versions were already assigned their
        offsets depend on the aborted update, so sizes are left untouched
        (see DESIGN.md for the documented limitation).
        """
        entry.aborted = True
        state.aborted.add(entry.version)
        if entry.version == state.next_version - 1:
            state.sizes[entry.version] = state.sizes[entry.version - 1]

    def _advance_publication_locked(self, state: _BlobState) -> bool:
        """Publish every contiguously completed/aborted version; return True
        when the watermark moved (the caller notifies lease subscribers
        after releasing the condition)."""
        advanced = False
        while True:
            candidate = state.published + 1
            entry = state.inflight.get(candidate)
            if entry is None or not (entry.completed or entry.aborted):
                break
            state.published = candidate
            del state.inflight[candidate]
            advanced = True
        if advanced:
            state.condition.notify_all()
        return advanced

    def _reap_expired_locked(self, state: _BlobState) -> bool:
        timeout = self._config.update_timeout
        if timeout is None:
            return False
        now = time.monotonic()
        for entry in list(state.inflight.values()):
            if entry.completed or entry.aborted:
                continue
            if now - entry.registered_at > timeout:
                self._abort_locked(state, entry)
        return self._advance_publication_locked(state)

    # ---------------------------------------------------------------- queries
    def _recent_locked(self, state: _BlobState) -> int:
        version = state.published
        while version > 0 and version in state.aborted:
            version -= 1
        return version

    def _lease_locked(self, state: _BlobState) -> RecencyLease:
        recent = self._recent_locked(state)
        return RecencyLease(
            blob_id=state.record.blob_id,
            version=recent,
            size=state.sizes[recent],
            epoch=state.published,
        )

    def _is_published_locked(self, state: _BlobState, version: int) -> bool:
        return 0 <= version <= state.published and version not in state.aborted

    def get_recent(self, blob_id: str) -> int:
        """GET_RECENT: a recently published version of the blob.

        Guaranteed to be at least as large as any version published before
        the call (the paper's monotonicity guarantee).
        """
        state = self._state(blob_id)
        with state.condition:
            return self._recent_locked(state)

    def is_published(self, blob_id: str, version: int) -> bool:
        state = self._state(blob_id)
        with state.condition:
            return self._is_published_locked(state, version)

    def get_size(self, blob_id: str, version: int) -> int:
        """GET_SIZE: size in bytes of a published snapshot."""
        state = self._state(blob_id)
        with state.condition:
            if not self._is_published_locked(state, version):
                raise VersionNotPublishedError(blob_id, version)
            return state.sizes[version]

    def check_read(self, blob_id: str, version: int) -> int:
        """Combined READ precondition: IS_PUBLISHED + GET_SIZE in one call.

        Returns the snapshot size when ``version`` is published, raises
        :class:`VersionNotPublishedError` otherwise — one RPC where the read
        path used to spend two.  A published version's size is immutable,
        so clients may cache the answer forever (the fact half of
        :class:`repro.vm.lease.LeaseCache`).
        """
        state = self._state(blob_id)
        with state.condition:
            if not self._is_published_locked(state, version):
                raise VersionNotPublishedError(blob_id, version)
            return state.sizes[version]

    def multi_check_read(
        self, queries: Sequence[tuple[str, int]]
    ) -> list[int | BaseException]:
        """Batched :meth:`check_read`: one condition acquisition per blob.

        ``queries`` are ``(blob_id, version)`` pairs; the result list is
        aligned, each slot holding the snapshot size or the exception that
        query raised.  The read-side counterpart of ``multi_register``, for
        clients that validate many snapshots at once (a scanner opening
        every version of a dataset, a GC pass sizing its keep set).
        """
        results: list[int | BaseException] = [None] * len(queries)
        by_blob: dict[str, list[int]] = {}
        for index, (blob_id, _version) in enumerate(queries):
            by_blob.setdefault(blob_id, []).append(index)
        for blob_id, indices in by_blob.items():
            try:
                state = self._state(blob_id)
            except UnknownBlobError as error:
                for index in indices:
                    results[index] = error
                continue
            with state.condition:
                for index in indices:
                    version = queries[index][1]
                    if self._is_published_locked(state, version):
                        results[index] = state.sizes[version]
                    else:
                        results[index] = VersionNotPublishedError(blob_id, version)
        return results

    def recent_lease(self, blob_id: str) -> RecencyLease:
        """GET_RECENT plus the size and publication epoch, for client leases.

        The epoch is the blob's published watermark: a client holding a
        lease with epoch ``e`` knows its cached answer is current as long as
        no publish notification with a larger epoch has arrived.
        """
        state = self._state(blob_id)
        with state.condition:
            return self._lease_locked(state)

    def sync(self, blob_id: str, version: int, timeout: float | None = None) -> None:
        """SYNC: block until ``version`` is published.

        Raises :class:`UpdateAbortedError` if the version was aborted, and
        :class:`VersionNotPublishedError` on timeout or if the version was
        never assigned.
        """
        state = self._state(blob_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        with state.condition:
            while True:
                if version in state.aborted:
                    raise UpdateAbortedError(blob_id, version)
                if version <= state.published:
                    return
                if version >= state.next_version:
                    raise VersionNotPublishedError(blob_id, version)
                if deadline is None:
                    state.condition.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not state.condition.wait(remaining):
                        if version in state.aborted:
                            raise UpdateAbortedError(blob_id, version)
                        if version <= state.published:
                            return
                        raise VersionNotPublishedError(blob_id, version)

    def poll_sync(self, blob_id: str, version: int) -> bool:
        """Non-blocking SYNC probe: True when ``version`` is published,
        False while it is still in flight.

        Raises exactly what :meth:`sync` would raise on a settled failure —
        :class:`UpdateAbortedError` for an aborted version,
        :class:`VersionNotPublishedError` for one that was never assigned.
        Event-loop clients pair this with publish notifications to wait
        without parking a thread on the blob's condition variable.
        """
        state = self._state(blob_id)
        with state.condition:
            if version in state.aborted:
                raise UpdateAbortedError(blob_id, version)
            if version <= state.published:
                return True
            if version >= state.next_version:
                raise VersionNotPublishedError(blob_id, version)
            return False

    def inflight_count(self, blob_id: str) -> int:
        """Number of assigned-but-unpublished updates (introspection)."""
        state = self._state(blob_id)
        with state.condition:
            return len(state.inflight)
