"""Record types handed out by the version manager."""

from __future__ import annotations

from dataclasses import dataclass

from ..metadata.geometry import pages_for_size, span_for_pages
from ..util.ranges import covering_page_range


@dataclass(frozen=True)
class BlobRecord:
    """Static description of a blob known to the version manager.

    ``lineage`` is empty for a blob created with CREATE.  For a blob created
    with BRANCH it lists ``(ancestor_blob_id, branch_version)`` pairs from the
    immediate parent to the oldest ancestor: snapshot versions at or below a
    branch version are physically owned by that ancestor (or one above it).
    """

    blob_id: str
    page_size: int
    lineage: tuple[tuple[str, int], ...] = ()

    @property
    def is_branch(self) -> bool:
        return bool(self.lineage)


def resolve_owner(record: BlobRecord, version: int) -> str:
    """Return the blob id that physically owns metadata of ``version``.

    Metadata nodes created before a branch point are shared with the
    ancestor blob and were written under the ancestor's id; nodes created by
    the branch itself are written under the branch's id.
    """
    owner = record.blob_id
    for ancestor_id, branch_version in record.lineage:
        if version <= branch_version:
            owner = ancestor_id
        else:
            break
    return owner


@dataclass(frozen=True)
class RegisterRequest:
    """One WRITE/APPEND registration travelling in a ``multi_register`` batch.

    The wire form of the version-manager request of Section 4.2: the group
    commit window (:class:`repro.vm.batching.TicketWindow`) coalesces many
    concurrent requests into one batch, and the version manager answers each
    with an :class:`UpdateTicket` (or a per-request error).
    """

    blob_id: str
    size: int
    offset: int | None = None
    is_append: bool = False


@dataclass(frozen=True)
class CompletionNotice:
    """One completion/abort notification in a ``multi_complete`` batch.

    ``kind`` is ``"complete"`` (Algorithm 2, line 12 — the writer succeeded)
    or ``"abort"`` (the extension over the paper: the writer gave up and the
    version becomes a hole).  Notices of one batch are applied strictly in
    list order, so an abort filed between two completions behaves exactly as
    three sequential RPCs would.
    """

    blob_id: str
    version: int
    kind: str = "complete"
    reason: str = ""


@dataclass(frozen=True)
class RecencyLease:
    """A snapshot of a blob's publication state, used for client leases.

    ``epoch`` is the blob's published watermark at the time of the snapshot;
    it increases monotonically with every publication, so a client holding a
    lease can tell whether a cached ``(version, size)`` pair predates a
    publish notification (see :class:`repro.vm.lease.LeaseCache`).
    """

    blob_id: str
    version: int
    size: int
    epoch: int


@dataclass(frozen=True)
class InFlightUpdate:
    """An update that has been assigned a version but is not yet published."""

    version: int
    page_offset: int
    page_count: int

    def as_tuple(self) -> tuple[int, int, int]:
        return self.version, self.page_offset, self.page_count


@dataclass(frozen=True)
class UpdateTicket:
    """Everything a writer learns when the version manager assigns it a version.

    This corresponds to the version-manager response described in Section 4.2:
    the assigned snapshot version, the byte offset the update applies at (for
    APPEND this is the size of the previous snapshot), the most recently
    published snapshot to descend for border nodes, and the ranges of
    concurrent in-flight updates with lower versions.
    """

    blob_id: str
    version: int
    byte_offset: int
    byte_size: int
    prev_size: int
    new_size: int
    page_size: int
    published_version: int | None
    published_size: int
    inflight: tuple[InFlightUpdate, ...] = ()

    # -- derived geometry ---------------------------------------------------
    @property
    def page_offset(self) -> int:
        """First page index touched by the update."""
        first, _count = covering_page_range(
            self.byte_offset, self.byte_size, self.page_size
        )
        return first

    @property
    def page_count(self) -> int:
        """Number of pages touched by the update (boundary pages included)."""
        _first, count = covering_page_range(
            self.byte_offset, self.byte_size, self.page_size
        )
        return count

    @property
    def prev_num_pages(self) -> int:
        """Number of pages of the previous snapshot (version - 1)."""
        return pages_for_size(self.prev_size, self.page_size)

    @property
    def new_num_pages(self) -> int:
        """Number of pages of the snapshot this update generates."""
        return pages_for_size(self.new_size, self.page_size)

    @property
    def span(self) -> int:
        """Tree span (in pages) of the snapshot this update generates."""
        return span_for_pages(self.new_num_pages)

    @property
    def published_num_pages(self) -> int:
        """Number of pages of the published reference snapshot."""
        return pages_for_size(self.published_size, self.page_size)

    def inflight_tuples(self) -> list[tuple[int, int, int]]:
        """In-flight updates as plain tuples for :func:`border_plan`."""
        return [update.as_tuple() for update in self.inflight]
