"""Version management: snapshot assignment, publication, branching.

The version manager is "the key actor of the system" (Section 3.1): it
registers update requests, assigns snapshot version numbers, and eventually
publishes the updates, guaranteeing total ordering and atomicity.  It also
supplies writers with the information needed to compute border nodes without
waiting for concurrent writers (Section 4.2).
"""

from .records import (
    BlobRecord,
    CompletionNotice,
    InFlightUpdate,
    RecencyLease,
    RegisterRequest,
    UpdateTicket,
    resolve_owner,
)
from .version_manager import PublishListener, VersionManager

__all__ = [
    "BlobRecord",
    "CompletionNotice",
    "InFlightUpdate",
    "PublishListener",
    "RecencyLease",
    "RegisterRequest",
    "UpdateTicket",
    "resolve_owner",
    "VersionManager",
]
