"""Network model: nodes with full-duplex NICs, latency and request overheads.

The model follows the paper's measured testbed (Section 5): intra-cluster
1 Gbit/s Ethernet with 117.5 MB/s of usable TCP bandwidth and 0.1 ms
latency.  Each node has an outgoing (``tx``) and an incoming (``rx``) NIC
pipe; payload serialization occupies the sender's ``tx`` and the receiver's
``rx`` in a store-and-forward fashion, and every request additionally costs
a fixed software overhead at the serving endpoint.  Because pipes are FIFO,
concurrent clients hammering the same provider queue up exactly as the
paper describes ("data access serialization is only necessary when the same
provider is contacted at the same time by different clients").
"""

from __future__ import annotations

from collections.abc import Generator

from ..config import SimConfig
from .engine import Event, Pipe, Simulator


class SimNode:
    """One physical machine of the simulated testbed."""

    def __init__(self, sim: Simulator, name: str):
        self.name = name
        self.tx = Pipe(sim, f"{name}.tx")
        self.rx = Pipe(sim, f"{name}.rx")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.name!r})"


class Network:
    """Timed data movement between :class:`SimNode` instances.

    All public methods are *generators of events* meant to be composed with
    ``yield from`` inside a process, or spawned with ``sim.process(...)`` to
    run concurrently.
    """

    def __init__(self, sim: Simulator, config: SimConfig):
        self._sim = sim
        self._config = config
        self.bytes_moved = 0

    # -- primitives ----------------------------------------------------------
    def push(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        service_time: float = 0.0,
    ) -> Generator[Event, object, None]:
        """Send ``nbytes`` from ``src`` to ``dst`` (e.g. storing a page).

        Charges the per-request overhead and payload serialization on the
        sender's ``tx``, the one-way latency, then payload serialization plus
        ``service_time`` on the receiver's ``rx``.
        """
        config = self._config
        serialization = nbytes / config.nic_bandwidth
        self.bytes_moved += nbytes
        yield src.tx.use(config.rpc_overhead + serialization)
        yield self._sim.timeout(config.latency)
        yield dst.rx.use(serialization + service_time)

    def fetch(
        self,
        requester: SimNode,
        server: SimNode,
        nbytes: int,
        service_time: float = 0.0,
        request_overhead: float | None = None,
    ) -> Generator[Event, object, None]:
        """Request ``nbytes`` from ``server`` (e.g. reading a page or a
        metadata node).

        The request costs a small send at the requester, one-way latency,
        ``service_time`` plus payload serialization at the server's ``tx``,
        latency back, and payload serialization at the requester's ``rx``.
        Callers fold any fixed per-request software cost into
        ``service_time`` (large for page requests, small for DHT lookups).
        """
        config = self._config
        if request_overhead is None:
            request_overhead = config.metadata_rpc_overhead
        serialization = nbytes / config.nic_bandwidth
        self.bytes_moved += nbytes
        yield requester.tx.use(request_overhead)
        yield self._sim.timeout(config.latency)
        yield server.tx.use(service_time + serialization)
        yield self._sim.timeout(config.latency)
        yield requester.rx.use(serialization)

    def multi_push(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        count: int,
        item_service_time: float = 0.0,
        batch_overhead: float | None = None,
    ) -> Generator[Event, object, None]:
        """Send a batch of ``count`` items totalling ``nbytes`` as ONE
        request (e.g. storing all pages an update places on one provider).

        The round-trip saving of batching: the sender pays one small request
        framing (``metadata_rpc_overhead``) per batch and the serving
        provider pays ``batch_overhead`` — its fixed per-request software
        cost, default ``rpc_overhead`` — once per batch instead of once per
        item.  The payload itself is *streamed*: each item occupies the
        sender's ``tx`` for its marshalling plus serialization share and is
        then delivered — its ``rx`` occupancy overlapping the next item's
        ``tx`` — so batches pipeline through the NICs exactly like the
        individual transfers they replace, and concurrent flows still
        interleave per item.
        """
        if count <= 0:
            return
        config = self._config
        if batch_overhead is None:
            batch_overhead = config.rpc_overhead
        item_serialization = nbytes / count / config.nic_bandwidth
        self.bytes_moved += nbytes
        yield src.tx.use(config.metadata_rpc_overhead)
        deliveries = []
        for index in range(count):
            yield src.tx.use(config.page_marshalling_time + item_serialization)
            service = item_service_time + (batch_overhead if index == 0 else 0.0)
            deliveries.append(
                self._sim.process(
                    self._deliver(dst.rx, item_serialization + service)
                )
            )
        yield self._sim.all_of([process.event for process in deliveries])

    def multi_fetch(
        self,
        requester: SimNode,
        server: SimNode,
        nbytes: int,
        count: int,
        item_service_time: float = 0.0,
        batch_overhead: float | None = None,
    ) -> Generator[Event, object, None]:
        """Request a batch of ``count`` items totalling ``nbytes`` with ONE
        exchange (e.g. fetching all pages of a READ held by one provider).

        Like :meth:`multi_push`, the fixed costs are per batch — one request
        framing at the requester, ``batch_overhead`` (the serving endpoint's
        fixed per-request software cost, default ``rpc_overhead``) once at
        the server — while each item still pays its marshalling, service and
        serialization share at the server's ``tx`` and streams into the
        requester's ``rx`` while the server serializes the next item.
        """
        if count <= 0:
            return
        config = self._config
        if batch_overhead is None:
            batch_overhead = config.rpc_overhead
        item_serialization = nbytes / count / config.nic_bandwidth
        self.bytes_moved += nbytes
        yield requester.tx.use(config.metadata_rpc_overhead)
        yield self._sim.timeout(config.latency)
        deliveries = []
        for index in range(count):
            service = (
                item_service_time
                + config.page_marshalling_time
                + (batch_overhead if index == 0 else 0.0)
            )
            yield server.tx.use(service + item_serialization)
            deliveries.append(
                self._sim.process(self._deliver(requester.rx, item_serialization))
            )
        yield self._sim.all_of([process.event for process in deliveries])

    def _deliver(self, pipe: Pipe, duration: float) -> Generator[Event, object, None]:
        """One streamed batch item: one-way latency, then pipe occupancy."""
        yield self._sim.timeout(self._config.latency)
        yield pipe.use(duration)

    def local_fetch(
        self,
        nbytes: int,
        count: int,
        item_service_time: float = 0.0,
    ) -> Generator[Event, object, None]:
        """Serve ``count`` items totalling ``nbytes`` from a provider (or
        DHT bucket) hosted on the REQUESTER'S OWN machine.

        The cache-aware replica routing of DESIGN.md §9 prefers a
        co-located replica: the payload never touches a NIC — it crosses
        the machine's memory bus at ``memory_bandwidth``, exactly like a
        page-cache hit — and only the serving process's per-item service
        time remains.  No NIC pipe is occupied, so local serving neither
        queues behind nor delays remote flows.
        """
        if count <= 0:
            return
        config = self._config
        yield self._sim.timeout(
            item_service_time * count + nbytes / config.memory_bandwidth
        )

    def peer_fetch(
        self,
        requester: SimNode,
        server: SimNode,
        nbytes: int,
        count: int,
    ) -> Generator[Event, object, None]:
        """Fetch ``count`` immutable cached items totalling ``nbytes`` from
        a co-located PEER's cache (cooperative peer caching, DESIGN.md §9).

        Shaped like :meth:`multi_fetch` but with the peer-protocol costs:
        one ``peer_rpc_overhead`` framing instead of the metadata RPC
        framing, and ``peer_page_time`` per item — a cache lookup plus a
        buffer handoff — instead of the provider's service and marshalling
        share.  Payload bytes still cross both NICs at ``nic_bandwidth``;
        the win over a provider round is purely the software path, plus
        whatever queueing the (busy) providers would have added.
        """
        if count <= 0:
            return
        config = self._config
        item_serialization = nbytes / count / config.nic_bandwidth
        self.bytes_moved += nbytes
        yield requester.tx.use(config.peer_rpc_overhead)
        yield self._sim.timeout(config.latency)
        deliveries = []
        for index in range(count):
            yield server.tx.use(config.peer_page_time + item_serialization)
            deliveries.append(
                self._sim.process(self._deliver(requester.rx, item_serialization))
            )
        yield self._sim.all_of([process.event for process in deliveries])

    def small_rpc(
        self,
        src: SimNode,
        dst: SimNode,
        service_time: float,
        payload_bytes: int = 64,
    ) -> Generator[Event, object, None]:
        """A small request/response exchange (version-manager calls, DHT puts).

        The payload is tiny, so only the per-message overhead, the service
        time at the destination and two latencies matter.
        """
        config = self._config
        serialization = payload_bytes / config.nic_bandwidth
        self.bytes_moved += payload_bytes
        yield src.tx.use(config.metadata_rpc_overhead + serialization)
        yield self._sim.timeout(config.latency)
        yield dst.tx.use(service_time + serialization)
        yield self._sim.timeout(config.latency)

    def small_request(
        self,
        src: SimNode,
        dst: SimNode,
        payload_bytes: int = 64,
    ) -> Generator[Event, object, None]:
        """The request leg of a small exchange: framing at the sender plus
        one-way latency.  Used when the serving side is modelled separately
        (the version manager's group-commit ticket office charges its
        service time once per *batch*, not per request)."""
        config = self._config
        serialization = payload_bytes / config.nic_bandwidth
        self.bytes_moved += payload_bytes
        yield src.tx.use(config.metadata_rpc_overhead + serialization)
        yield self._sim.timeout(config.latency)

    def send_frame(
        self,
        src: SimNode,
        payload_bytes: int = 64,
    ) -> Generator[Event, object, None]:
        """The sender-side cost of a small ONE-WAY message: framing plus
        send serialization, no waiting.

        This is the pipelined-publication model: a writer streams its
        completion notice to the version manager and moves on — transit and
        the (batched) processing at the VM proceed behind its back, driven
        by the receiving office.
        """
        config = self._config
        serialization = payload_bytes / config.nic_bandwidth
        self.bytes_moved += payload_bytes
        yield src.tx.use(config.metadata_rpc_overhead + serialization)
