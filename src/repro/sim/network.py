"""Network model: nodes with full-duplex NICs, latency and request overheads.

The model follows the paper's measured testbed (Section 5): intra-cluster
1 Gbit/s Ethernet with 117.5 MB/s of usable TCP bandwidth and 0.1 ms
latency.  Each node has an outgoing (``tx``) and an incoming (``rx``) NIC
pipe; payload serialization occupies the sender's ``tx`` and the receiver's
``rx`` in a store-and-forward fashion, and every request additionally costs
a fixed software overhead at the serving endpoint.  Because pipes are FIFO,
concurrent clients hammering the same provider queue up exactly as the
paper describes ("data access serialization is only necessary when the same
provider is contacted at the same time by different clients").
"""

from __future__ import annotations

from collections.abc import Generator

from ..config import SimConfig
from .engine import Event, Pipe, Simulator


class SimNode:
    """One physical machine of the simulated testbed."""

    def __init__(self, sim: Simulator, name: str):
        self.name = name
        self.tx = Pipe(sim, f"{name}.tx")
        self.rx = Pipe(sim, f"{name}.rx")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.name!r})"


class Network:
    """Timed data movement between :class:`SimNode` instances.

    All public methods are *generators of events* meant to be composed with
    ``yield from`` inside a process, or spawned with ``sim.process(...)`` to
    run concurrently.
    """

    def __init__(self, sim: Simulator, config: SimConfig):
        self._sim = sim
        self._config = config
        self.bytes_moved = 0

    # -- primitives ----------------------------------------------------------
    def push(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        service_time: float = 0.0,
    ) -> Generator[Event, object, None]:
        """Send ``nbytes`` from ``src`` to ``dst`` (e.g. storing a page).

        Charges the per-request overhead and payload serialization on the
        sender's ``tx``, the one-way latency, then payload serialization plus
        ``service_time`` on the receiver's ``rx``.
        """
        config = self._config
        serialization = nbytes / config.nic_bandwidth
        self.bytes_moved += nbytes
        yield src.tx.use(config.rpc_overhead + serialization)
        yield self._sim.timeout(config.latency)
        yield dst.rx.use(serialization + service_time)

    def fetch(
        self,
        requester: SimNode,
        server: SimNode,
        nbytes: int,
        service_time: float = 0.0,
        request_overhead: float | None = None,
    ) -> Generator[Event, object, None]:
        """Request ``nbytes`` from ``server`` (e.g. reading a page or a
        metadata node).

        The request costs a small send at the requester, one-way latency,
        ``service_time`` plus payload serialization at the server's ``tx``,
        latency back, and payload serialization at the requester's ``rx``.
        Callers fold any fixed per-request software cost into
        ``service_time`` (large for page requests, small for DHT lookups).
        """
        config = self._config
        if request_overhead is None:
            request_overhead = config.metadata_rpc_overhead
        serialization = nbytes / config.nic_bandwidth
        self.bytes_moved += nbytes
        yield requester.tx.use(request_overhead)
        yield self._sim.timeout(config.latency)
        yield server.tx.use(service_time + serialization)
        yield self._sim.timeout(config.latency)
        yield requester.rx.use(serialization)

    def small_rpc(
        self,
        src: SimNode,
        dst: SimNode,
        service_time: float,
        payload_bytes: int = 64,
    ) -> Generator[Event, object, None]:
        """A small request/response exchange (version-manager calls, DHT puts).

        The payload is tiny, so only the per-message overhead, the service
        time at the destination and two latencies matter.
        """
        config = self._config
        serialization = payload_bytes / config.nic_bandwidth
        self.bytes_moved += payload_bytes
        yield src.tx.use(config.metadata_rpc_overhead + serialization)
        yield self._sim.timeout(config.latency)
        yield dst.tx.use(service_time + serialization)
        yield self._sim.timeout(config.latency)
