"""A small discrete-event simulation engine.

The engine provides just what the BlobSeer experiments need:

* :class:`Simulator` — an event loop with virtual time;
* :class:`Event` — a one-shot occurrence carrying a value;
* :class:`Process` — a Python generator that ``yield``\\ s events and is
  resumed with their values (``yield from`` composes sub-activities);
* :class:`Pipe` — a FIFO, serially-occupied resource (a NIC direction or a
  server CPU): callers reserve it for a duration and are released when their
  occupancy ends;
* :func:`Simulator.all_of` — an event that fires when a set of events have
  all fired (fan-out / join).

The design deliberately mirrors SimPy's programming model so simulated
activities read like straight-line code, but the implementation is ~200
lines and has no dependencies.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable

from ..errors import SimulationError


class Event:
    """A one-shot event.  Processes wait on it by ``yield``-ing it."""

    __slots__ = ("_sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._callbacks: list = []
        self.triggered = False
        self.value = None

    def succeed(self, value=None) -> "Event":
        """Mark the event as having happened *now*; wake up waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for callback in self._callbacks:
            self._sim._schedule(0.0, callback, value)
        self._callbacks.clear()
        return self

    def add_callback(self, callback) -> None:
        """Invoke ``callback(value)`` when the event fires (immediately if it
        already has)."""
        if self.triggered:
            self._sim._schedule(0.0, callback, self.value)
        else:
            self._callbacks.append(callback)


class AllOf(Event):
    """An event that fires once every event in *events* has fired.

    Its value is the list of the individual event values, in input order.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_collector(index))

    def _make_collector(self, index: int):
        def collect(value):
            self._values[index] = value
            self._pending -= 1
            if self._pending == 0 and not self.triggered:
                self.succeed(list(self._values))

        return collect


class Process:
    """A simulated activity: a generator yielding :class:`Event` objects.

    The generator is resumed with the value of each event it yields.  When it
    returns, :attr:`event` fires with the generator's return value, so
    processes can be joined like any other event.
    """

    __slots__ = ("_sim", "_generator", "event", "_started")

    def __init__(self, sim: "Simulator", generator: Generator):
        self._sim = sim
        self._generator = generator
        self.event = Event(sim)
        self._started = False
        sim._schedule(0.0, self._resume, None)

    def _resume(self, value) -> None:
        try:
            if not self._started:
                self._started = True
                waited = next(self._generator)
            else:
                waited = self._generator.send(value)
        except StopIteration as stop:
            self.event.succeed(stop.value)
            return
        if not isinstance(waited, Event):
            raise SimulationError(
                f"process yielded {waited!r}, which is not an Event"
            )
        waited.add_callback(self._resume)


class Pipe:
    """A FIFO resource occupied serially (a NIC direction, a server CPU).

    ``use(duration)`` reserves the next free slot of the pipe for
    ``duration`` seconds and returns an event firing when that occupancy
    ends.  Occupancies are granted in call order, which models FIFO queueing
    at a network card or a single-threaded server loop.
    """

    __slots__ = ("_sim", "name", "_available_at", "busy_time", "requests")

    def __init__(self, sim: "Simulator", name: str):
        self._sim = sim
        self.name = name
        self._available_at = 0.0
        self.busy_time = 0.0
        self.requests = 0

    def use(self, duration: float) -> Event:
        """Reserve the pipe for ``duration`` seconds; returns the end event."""
        if duration < 0:
            raise SimulationError(f"negative occupancy on {self.name}: {duration}")
        now = self._sim.now
        start = max(now, self._available_at)
        end = start + duration
        self._available_at = end
        self.busy_time += duration
        self.requests += 1
        return self._sim.timeout(end - now)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` seconds this pipe was busy."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_time / horizon, 1.0)


class Simulator:
    """The event loop: virtual time plus a heap of pending callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, object, object]] = []
        self._sequence = 0

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, delay: float, callback, value) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback, value))

    def timeout(self, delay: float) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        event = Event(self)
        self._schedule(delay, lambda _value: event.succeed(None), None)
        return event

    def event(self) -> Event:
        """A bare event to be succeeded manually."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator of events."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all of *events* have fired."""
        return AllOf(self, events)

    # -- running ----------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the heap is empty (or virtual time ``until``).

        Returns the final virtual time.
        """
        while self._heap:
            time, _seq, callback, value = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            callback(value)
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_process(self, generator: Generator):
        """Convenience: run a single process to completion and return its value."""
        process = self.process(generator)
        self.run()
        if not process.event.triggered:
            raise SimulationError("process did not finish (deadlock in the model?)")
        return process.event.value
