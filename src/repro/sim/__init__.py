"""Discrete-event simulation of a Grid'5000-like testbed.

The paper's evaluation (Section 5) runs on up to 175 physical nodes with
1 Gbit/s NICs.  Python's GIL makes wall-clock concurrent-bandwidth
measurements meaningless in-process, so the performance experiments are
reproduced on a discrete-event simulator instead: per-node NIC pipes with
FIFO serialization, one-way latency, and per-request software overheads.

Crucially, the simulated clients drive the *real* BlobSeer code — the
provider manager, the version manager, the DHT and the sans-IO segment-tree
algorithms — so metadata traffic, tree depth and placement are exact; only
byte payloads and timing are virtual.
"""

from .engine import AllOf, Event, Pipe, Process, Simulator
from .network import Network, SimNode
from .deployment import SimDeployment
from .client import AppendOutcome, ReadOutcome, SimClient
from .experiments import (
    AppendSample,
    MixedWorkloadSample,
    ReadConcurrencySample,
    run_append_growth_experiment,
    run_mixed_workload_experiment,
    run_read_concurrency_experiment,
)

__all__ = [
    "AllOf",
    "Event",
    "Pipe",
    "Process",
    "Simulator",
    "Network",
    "SimNode",
    "SimDeployment",
    "SimClient",
    "AppendOutcome",
    "ReadOutcome",
    "AppendSample",
    "MixedWorkloadSample",
    "ReadConcurrencySample",
    "run_append_growth_experiment",
    "run_mixed_workload_experiment",
    "run_read_concurrency_experiment",
]
