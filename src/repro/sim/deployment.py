"""Simulated deployment: real BlobSeer components plus simulated nodes.

A :class:`SimDeployment` owns

* a real :class:`~repro.core.cluster.Cluster` whose data providers use
  :class:`~repro.providers.page_store.NullPageStore` (placement, versioning
  and metadata are exact; payload bytes are virtual), and
* a :class:`~repro.sim.engine.Simulator` with one :class:`SimNode` per
  physical machine of the modelled testbed, following the paper's layout:
  one dedicated node for the version manager, one for the provider manager,
  and ``num_provider_nodes`` nodes each co-hosting a data provider and a
  metadata provider (Section 5).

Clients are placed on their own nodes by default; the read-concurrency
experiment can co-locate them with provider nodes like the paper does
("readers are deployed on nodes that already run a data and metadata
provider").
"""

from __future__ import annotations

from collections.abc import Generator

from ..cache import CacheStats, NodeCache, PageCache
from ..config import BlobSeerConfig, SimConfig
from ..core.cluster import Cluster
from ..errors import BlobSeerError
from ..metadata.build import border_plan, border_targets, build_nodes
from ..metadata.node import NodeKey, PageDescriptor
from ..metadata.read_plan import drive_plan
from ..providers.page_store import NullPageStore
from ..version.records import resolve_owner
from ..vm import LeaseCache
from .engine import Event, Simulator
from .network import Network, SimNode


class SimVersionOffice:
    """Group-commit window at the simulated version-manager node.

    Requests that arrive while a batch is being served pile up and are
    drained together: the VM endpoint's ``version_manager_service_time`` is
    charged ONCE per batch (plus a tiny per-request serialization share),
    and the whole batch goes through the service's ``multi_register`` /
    ``multi_complete`` — so the service-side :class:`~repro.vm.VMStats`
    count the simulator's batches exactly like the threaded window's.

    ``submit`` is the blocking path (ticket requests need their answer);
    ``post`` is the fire-and-forget path (completion notices — pipelined
    publication: the writer streams the notice and moves on).
    """

    def __init__(self, deployment: SimDeployment, execute, label: str):
        self._dep = deployment
        self._execute = execute
        self._label = label
        self._pending: list[tuple[object, Event | None]] = []
        self._busy = False
        #: One-way notices that failed with a benign protocol error (e.g.
        #: the reaper aborted the version before the notice arrived) — a
        #: real VM logs and moves on, so the office counts and moves on.
        self.dropped = 0

    def submit(self, request: object) -> Generator[Event, object, object]:
        """Enqueue ``request`` and wait for its batch; returns the
        per-request result (exception instances are raised)."""
        done = self._dep.simulator.event()
        self._enqueue(request, done)
        result = yield done
        if isinstance(result, BaseException):
            raise result
        return result

    def post(self, request: object) -> None:
        """Enqueue ``request`` without waiting (one-way notification)."""
        self._enqueue(request, None)

    def post_delayed(self, request: object, delay: float) -> None:
        """Enqueue ``request`` after ``delay`` (the one-way network transit
        of a fire-and-forget notice), without the sender waiting."""

        def arrive() -> Generator[Event, object, None]:
            yield self._dep.simulator.timeout(delay)
            self._enqueue(request, None)

        self._dep.simulator.process(arrive())

    def _enqueue(self, request: object, done: Event | None) -> None:
        self._pending.append((request, done))
        if not self._busy:
            self._busy = True
            self._dep.simulator.process(self._drain())

    def _drain(self) -> Generator[Event, object, None]:
        dep = self._dep
        cfg = dep.sim_config
        per_request = 64 / cfg.nic_bandwidth
        try:
            while self._pending:
                batch = self._pending
                self._pending = []
                # The serialized VM cost is paid once per BATCH: this is the
                # whole point of group commit — N piled-up requests cost one
                # service round, not N.
                yield dep.vm_node.tx.use(
                    cfg.version_manager_service_time + per_request * len(batch)
                )
                results = self._execute([request for request, _done in batch])
                for (request, done), result in zip(batch, results):
                    if done is not None:
                        done.succeed(result)
                    elif isinstance(result, BlobSeerError):
                        # A fire-and-forget notice lost a benign race (the
                        # reaper aborted its version first, a duplicate
                        # notice, ...): drop it, keep the office alive.
                        self.dropped += 1
                    elif isinstance(result, BaseException):
                        raise result
        finally:
            # Even if a result was a genuine bug (raised above), the office
            # must stay drainable for the rest of the run.
            self._busy = False


class SimDeployment:
    """Wires the real storage components onto a simulated testbed."""

    def __init__(
        self,
        num_provider_nodes: int = 173,
        page_size: int = 64 * 1024,
        sim_config: SimConfig | None = None,
        co_deploy_metadata: bool = True,
        num_metadata_providers: int | None = None,
        allocation_strategy: str = "round_robin",
        co_locate_clients: bool = False,
        page_replication: int = 1,
        metadata_replication: int | None = None,
        speculative_prefetch: bool = False,
        replica_routing: bool = True,
        peer_caching: bool = True,
    ):
        self.sim_config = sim_config if sim_config is not None else SimConfig()
        self.co_deploy_metadata = co_deploy_metadata
        self.co_locate_clients = co_locate_clients
        if num_metadata_providers is None:
            num_metadata_providers = (
                num_provider_nodes if co_deploy_metadata else 1
            )
        self.config = BlobSeerConfig(
            page_size=page_size,
            num_data_providers=num_provider_nodes,
            num_metadata_providers=num_metadata_providers,
            allocation_strategy=allocation_strategy,
            page_replication=page_replication,
            metadata_replication=metadata_replication,
            speculative_prefetch=speculative_prefetch,
            replica_routing=replica_routing,
            peer_caching=peer_caching,
        )
        self.cluster = Cluster(
            self.config, page_store_factory=lambda _pid: NullPageStore()
        )
        self.simulator: Simulator
        self.network: Network
        self.vm_node: SimNode
        self.pmgr_node: SimNode
        self._provider_nodes: list[SimNode] = []
        self._metadata_nodes: list[SimNode] = []
        self._client_nodes: dict[int, SimNode] = {}
        #: One shared metadata node cache per *machine*, keyed by node name:
        #: clients co-located on the same node share it (the sim analogue of
        #: the process-wide cache), clients on different machines do not.
        #: Caches survive :meth:`reset_timing` — they are client state, not
        #: NIC state — which is what gives repeated runs a warm regime;
        #: :meth:`clear_node_caches` restores a cold start.
        self._node_caches: dict[str, NodeCache] = {}
        #: One page payload cache per *machine* (same keying): cached page
        #: ranges are served locally during a simulated READ and skip the
        #: provider NIC pipes entirely, so warm repeated reads report zero
        #: data round trips.  Payloads are size-only
        #: :class:`~repro.cache.VirtualPagePayload` stand-ins (the sim's
        #: page stores are Null), so the byte budgets stay honest without
        #: materializing bytes.  None per machine when the config disables
        #: page caching.
        self._page_caches: dict[str, PageCache] = {}
        #: One version-lease cache per *machine* (same keying): leased
        #: GET_RECENT answers and immutable VM facts let warm repeated
        #: reads skip the version-manager RPC entirely.  None per machine
        #: when the config disables leasing.
        self._version_leases: dict[str, LeaseCache] = {}
        #: Optional :class:`repro.obs.Tracer` recording per-leg spans of
        #: simulated reads in *virtual* clock time.  Assign one built with
        #: ``Tracer(clock=lambda: deployment.simulator.now)`` (the bench
        #: ``--trace`` mode does); sim processes interleave as generators
        #: outside any call context, so :class:`SimClient` emits spans
        #: retroactively via :meth:`~repro.obs.Tracer.record` rather than
        #: through the context-local ``span()`` helper.  Survives
        #: :meth:`reset_timing` — tracing is client state, not NIC state.
        self.tracer = None
        self.reset_timing()

    # -- timing / topology -----------------------------------------------------
    def reset_timing(self) -> None:
        """Recreate the simulator and every node with idle NICs.

        The storage state (pages, metadata, versions) is kept, so one blob can
        be populated once and then measured under several client loads.
        """
        self.simulator = Simulator()
        self.network = Network(self.simulator, self.sim_config)
        self.vm_node = SimNode(self.simulator, "version-manager")
        self.pmgr_node = SimNode(self.simulator, "provider-manager")
        self._provider_nodes = [
            SimNode(self.simulator, f"provider-node-{index:04d}")
            for index in range(self.config.num_data_providers)
        ]
        if self.co_deploy_metadata:
            self._metadata_nodes = list(self._provider_nodes)
        else:
            self._metadata_nodes = [
                SimNode(self.simulator, f"metadata-node-{index:04d}")
                for index in range(self.config.num_metadata_providers)
            ]
        self._client_nodes = {}
        # Name -> node map for the current simulator epoch: machine caches
        # are keyed by node NAME and outlive reset_timing, so the peer-cache
        # probe needs a way back from a cache's machine name to the epoch's
        # live SimNode.
        self._nodes_by_name = {
            node.name: node
            for node in (
                [self.vm_node, self.pmgr_node]
                + self._provider_nodes
                + self._metadata_nodes
            )
        }
        # The VM-side group-commit offices are bound to the simulator, so
        # they are rebuilt with it; their batches flow through the service's
        # multi-ops, so VMStats accumulate across timing resets.
        self.ticket_office = SimVersionOffice(
            self, self.version_manager.multi_register, "register"
        )
        self.publish_office = SimVersionOffice(
            self, self.version_manager.multi_complete, "publish"
        )

    def client_node(self, index: int) -> SimNode:
        """Node hosting client ``index`` (created on demand)."""
        node = self._client_nodes.get(index)
        if node is None:
            if self.co_locate_clients and self._provider_nodes:
                node = self._provider_nodes[index % len(self._provider_nodes)]
            else:
                node = SimNode(self.simulator, f"client-{index:04d}")
            self._client_nodes[index] = node
            self._nodes_by_name[node.name] = node
        return node

    def peer_page_source(self, cache_key, own_node: SimNode) -> SimNode | None:
        """Machine whose page cache holds ``cache_key`` — the simulated
        cooperative peer-cache probe (DESIGN.md §9).

        Consults every OTHER machine's page cache (never ``own_node``'s —
        the read path has already checked it), returning the serving
        machine so the caller can charge a timed :meth:`Network.peer_fetch`
        against its NIC.  When several machines hold the range, the
        requester picks one deterministically by its own machine name, so
        a popular range's load diffuses over the holder set instead of
        hammering whichever machine cached it first.  Returns None when no
        peer holds the range or the deployment config disables
        ``peer_caching``.  Like the real
        :class:`~repro.cache.PeerCacheGroup`, a hit legitimately refreshes
        the serving caches' LRU recency and hit counters.
        """
        if not self.config.feature_enabled("peer_caching"):
            return None
        own = self._page_caches.get(own_node.name)
        holders = []
        for name, cache in self._page_caches.items():
            if name == own_node.name or cache is own:
                continue
            if cache.get(cache_key) is not None:
                node = self._nodes_by_name.get(name)
                if node is not None:
                    holders.append(node)
        if not holders:
            return None
        # A stable per-requester choice (hash() is salted per process and
        # would make runs irreproducible).
        return holders[sum(own_node.name.encode()) % len(holders)]

    def has_peer_caches(self, own_node: SimNode) -> bool:
        """True when some OTHER machine has a page cache worth probing."""
        if not self.config.feature_enabled("peer_caching"):
            return False
        return any(name != own_node.name for name in self._page_caches)

    def node_cache_for(self, node: SimNode) -> NodeCache:
        """The metadata node cache of the machine hosting ``node``.

        Budgets come from the deployment's :class:`BlobSeerConfig`
        ``metadata_cache_*`` knobs.  Cache hits are served locally during a
        simulated traversal and skip the NIC pipes entirely.
        """
        cache = self._node_caches.get(node.name)
        if cache is None:
            cache = NodeCache(
                max_entries=self.config.metadata_cache_entries,
                max_bytes=self.config.metadata_cache_bytes,
                shards=self.config.metadata_cache_shards,
            )
            self._node_caches[node.name] = cache
            # Register with the cluster so GC invalidation reaches the
            # simulated machines' caches too (clients key them through
            # cluster.node_cache_key, exactly like the threaded path).
            self.cluster.register_node_cache(cache)
        return cache

    def page_cache_for(self, node: SimNode) -> PageCache | None:
        """The page payload cache of the machine hosting ``node``.

        None when the deployment config disables page caching
        (``page_cache_entries=None``).  Budgets come from the config's
        ``page_cache_*`` knobs; like the node caches, page caches are
        machine state — co-located clients share one, they survive
        :meth:`reset_timing`, and :meth:`clear_node_caches` restores a
        cold start.
        """
        if self.config.page_cache_entries is None:
            return None
        cache = self._page_caches.get(node.name)
        if cache is None:
            cache = PageCache(
                max_entries=self.config.page_cache_entries,
                max_bytes=self.config.page_cache_bytes,
                shards=self.config.page_cache_shards,
            )
            self._page_caches[node.name] = cache
            # Register with the cluster so GC's page discards reach the
            # simulated machines' caches too.
            self.cluster.register_page_cache(cache)
        return cache

    def version_lease_for(self, node: SimNode) -> LeaseCache | None:
        """The version-lease cache of the machine hosting ``node``.

        None when the deployment config disables leasing
        (``vm_lease_ttl=None``).  Like the node caches, lease caches are
        machine state: co-located clients share one, they survive
        :meth:`reset_timing`, and the TTL runs on the simulator's virtual
        clock.  Publish notifications from the (shared) version manager
        renew them, modelling the notification fan-out of the service.
        """
        if self.config.vm_lease_ttl is None:
            return None
        cache = self._version_leases.get(node.name)
        if cache is None:
            cache = LeaseCache(
                self.version_manager,
                ttl=self.config.vm_lease_ttl,
                max_entries=self.config.vm_lease_entries,
                clock=lambda: self.simulator.now,
            )
            self._version_leases[node.name] = cache
        return cache

    def clear_node_caches(self) -> None:
        """Drop every machine's cached metadata, page ranges AND version
        leases (cold-start measurements)."""
        for cache in self._node_caches.values():
            cache.clear()
        for cache in self._page_caches.values():
            cache.clear()
        for lease in self._version_leases.values():
            lease.clear()

    def node_cache_stats(self) -> CacheStats:
        """Aggregate :class:`~repro.cache.CacheStats` over every machine."""
        return sum(
            (cache.stats() for cache in self._node_caches.values()),
            CacheStats(),
        )

    def page_cache_stats(self) -> CacheStats:
        """Aggregate :class:`~repro.cache.CacheStats` over every machine's
        page cache."""
        return sum(
            (cache.stats() for cache in self._page_caches.values()),
            CacheStats(),
        )

    def node_for_provider(self, provider_id: str) -> SimNode:
        """Node hosting data provider ``provider_id`` (ids are ``data-NNNN``)."""
        index = int(provider_id.rsplit("-", 1)[1])
        return self._provider_nodes[index % len(self._provider_nodes)]

    def node_for_bucket(self, bucket_id: str) -> SimNode:
        """Node hosting metadata DHT bucket ``bucket_id`` (ids are ``meta-NNNN``)."""
        index = int(bucket_id.rsplit("-", 1)[1])
        return self._metadata_nodes[index % len(self._metadata_nodes)]

    def metadata_node_for_key(self, key: NodeKey) -> SimNode:
        bucket_id = self.cluster.dht.buckets_for(key.to_string())[0]
        return self.node_for_bucket(bucket_id)

    # -- shortcuts to the real components ----------------------------------------
    @property
    def version_manager(self):
        return self.cluster.version_manager

    def vm_stats(self):
        """Service-side version-manager counters (requests vs batches) —
        accumulated across timing resets; see :class:`repro.vm.VMStats`."""
        return self.cluster.version_manager.vm_stats()

    @property
    def provider_manager(self):
        return self.cluster.provider_manager

    @property
    def metadata_provider(self):
        return self.cluster.metadata_provider

    @property
    def page_size(self) -> int:
        return self.config.page_size

    # -- blob setup (untimed) -------------------------------------------------------
    def create_blob(self) -> str:
        """CREATE a blob on the simulated deployment."""
        return self.version_manager.create_blob(self.config.page_size).blob_id

    def populate_blob(
        self, blob_id: str, total_bytes: int, append_bytes: int | None = None
    ) -> int:
        """Grow a blob with page-aligned appends, without charging any time.

        Used to prepare the read experiments (the paper grows the blob to
        64 GB before measuring reads).  Runs the real allocation, versioning
        and metadata-weaving code; only the page payloads are virtual.
        Returns the final published version.
        """
        page_size = self.config.page_size
        if append_bytes is None:
            append_bytes = 64 * 1024 * 1024
        append_bytes = max(page_size, (append_bytes // page_size) * page_size)
        remaining = (total_bytes // page_size) * page_size
        version = self.version_manager.get_recent(blob_id)
        while remaining > 0:
            chunk = min(append_bytes, remaining)
            version = self.untimed_append(blob_id, chunk)
            remaining -= chunk
        return version

    def untimed_append(self, blob_id: str, nbytes: int) -> int:
        """One page-aligned virtual append executed instantaneously."""
        vm = self.version_manager
        meta = self.metadata_provider
        record = vm.get_record(blob_id)
        page_size = record.page_size
        if nbytes <= 0 or nbytes % page_size != 0:
            raise ValueError(
                "untimed appends must be a positive multiple of the page size"
            )
        page_count = nbytes // page_size
        replica_sets = self.provider_manager.allocate_replicas(
            page_count, self.config.page_replication
        )
        ticket = vm.register_update(blob_id, nbytes, is_append=True)
        descriptors = []
        for index, replicas in enumerate(replica_sets):
            page_id = self.cluster._ids.next_page_id()
            descriptors.append(
                PageDescriptor(
                    page_index=ticket.page_offset + index,
                    page_id=page_id,
                    provider_id=replicas[0],
                    length=page_size,
                    provider_ids=replicas,
                )
            )
        self.provider_manager.multi_store_virtual(
            [
                (provider_id, descriptor.page_id, page_size)
                for descriptor in descriptors
                for provider_id in descriptor.provider_ids
            ]
        )
        needed, dangling = border_targets(
            ticket.page_offset, ticket.page_count, ticket.span, ticket.prev_num_pages
        )
        plan = border_plan(
            needed,
            dangling,
            ticket.published_version if ticket.published_version else None,
            ticket.published_num_pages,
            ticket.inflight_tuples(),
        )
        spec = drive_plan(
            plan,
            fetch_many=lambda refs: meta.get_nodes(
                [
                    NodeKey(
                        resolve_owner(record, ref.version),
                        ref.version,
                        ref.offset,
                        ref.size,
                    )
                    for ref in refs
                ]
            ),
        )
        build = build_nodes(
            ticket.version,
            ticket.page_offset,
            ticket.page_count,
            ticket.span,
            descriptors,
            spec,
        )
        meta.put_nodes(
            [
                (NodeKey(record.blob_id, ref.version, ref.offset, ref.size), node)
                for ref, node in build.nodes
            ]
        )
        vm.complete_update(blob_id, ticket.version)
        return ticket.version
