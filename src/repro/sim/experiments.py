"""Reusable simulated experiments behind the paper's figures.

* :func:`run_append_growth_experiment` — Figure 2(a): a single client keeps
  appending to a growing blob; the per-append bandwidth is reported against
  the number of pages the blob holds.
* :func:`run_read_concurrency_experiment` — Figure 2(b): a blob is grown
  first, then 1 / N / M concurrent readers each read a distinct chunk and
  the average per-reader bandwidth is reported.

Both functions return plain dataclasses so that the benchmark harness, the
pytest-benchmark targets and the examples can share them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MiB, SimConfig
from .client import SimClient
from .deployment import SimDeployment


@dataclass(frozen=True)
class AppendSample:
    """One point of the Figure 2(a) curve."""

    pages_total: int
    page_size: int
    num_providers: int
    bandwidth_mbps: float
    elapsed: float
    metadata_nodes_written: int
    border_nodes_fetched: int
    #: Batched round trips of this append: one multi-page store per provider
    #: touched, and one metadata trip per border frontier + publish.
    data_round_trips: int = 0
    metadata_round_trips: int = 0
    #: Version-manager round trips: the group-committed ticket request plus
    #: the one-way (pipelined) completion notice.
    vm_round_trips: int = 0


@dataclass(frozen=True)
class ReadConcurrencySample:
    """One point of the Figure 2(b) curve.

    The ``avg_*`` fields describe the *cold* pass (empty client caches);
    the ``warm_*`` fields, filled when the experiment runs with
    ``measure_warm=True``, describe an identical second pass that reuses
    the clients' now-warm metadata caches — the repeated-read regime where
    traversals skip the DHT entirely.
    """

    readers: int
    page_size: int
    num_providers: int
    avg_bandwidth_mbps: float
    min_bandwidth_mbps: float
    aggregate_bandwidth_mbps: float
    avg_metadata_nodes_fetched: float
    #: Batched round trips per READ, averaged over the readers: one
    #: multi-page fetch per provider touched / one metadata trip per
    #: frontier of the tree traversal.
    avg_data_round_trips: float = 0.0
    avg_metadata_round_trips: float = 0.0
    #: Version-manager round trips per READ (1 cold — the combined
    #: publication check — and 0 once the machine's version lease holds
    #: the snapshot's published size).
    avg_vm_round_trips: float = 0.0
    #: Metadata cache hit rate of the cold pass (~0 on a cold start).
    avg_cache_hit_rate: float = 0.0
    #: Page cache hit rate of the cold pass (~0 on a cold start).
    avg_page_cache_hit_rate: float = 0.0
    #: Simulated seconds the cold pass spent in its metadata descent,
    #: averaged over the readers — the serialized cold-path latency that
    #: speculative frontier prefetch attacks (DESIGN.md §9).
    avg_meta_latency: float = 0.0
    #: Speculatively fetched tree nodes the cold traversals consumed /
    #: never consumed, averaged per read (0 with ``speculative_prefetch``
    #: off).  Hits still count in ``avg_metadata_nodes_fetched``; wasted
    #: nodes are pure over-fetch and count nowhere else.
    avg_speculative_hits: float = 0.0
    avg_speculative_wasted: float = 0.0
    #: Consumed speculative fetches over ALL speculative fetches of the
    #: cold pass (aggregated over the readers, not a mean of ratios).
    speculative_hit_rate: float = 0.0
    #: Page ranges served by a co-located peer machine's cache during the
    #: cold pass, averaged per read, and their share of all page ranges
    #: (aggregated over the readers).  ~0 for disjoint-chunk readers; the
    #: ABL-coldpath popular-chunk scenario is where peers shine.
    avg_peer_cache_hits: float = 0.0
    peer_cache_hit_rate: float = 0.0
    #: Warm repeated-read pass (zeros unless ``measure_warm=True``).
    warm_avg_bandwidth_mbps: float = 0.0
    warm_avg_metadata_nodes_fetched: float = 0.0
    warm_avg_metadata_round_trips: float = 0.0
    #: Batched data round trips of the warm pass — 0 when every page range
    #: is served by the machine's page cache (warm reads skip the
    #: providers entirely).
    warm_avg_data_round_trips: float = 0.0
    warm_avg_vm_round_trips: float = 0.0
    warm_avg_cache_hit_rate: float = 0.0
    warm_avg_page_cache_hit_rate: float = 0.0


@dataclass(frozen=True)
class MixedWorkloadSample:
    """One point of the mixed readers + appenders experiment."""

    readers: int
    writers: int
    page_size: int
    num_providers: int
    avg_read_bandwidth_mbps: float
    avg_append_bandwidth_mbps: float
    versions_published: int


def run_append_growth_experiment(
    num_provider_nodes: int,
    page_size: int,
    append_bytes: int,
    num_appends: int,
    sim_config: SimConfig | None = None,
    co_deploy_metadata: bool = True,
) -> list[AppendSample]:
    """Single-client append throughput while the blob grows (Figure 2(a)).

    A fresh deployment is built, one client appends ``append_bytes`` per
    APPEND, ``num_appends`` times; every append produces one sample.
    """
    deployment = SimDeployment(
        num_provider_nodes=num_provider_nodes,
        page_size=page_size,
        sim_config=sim_config,
        co_deploy_metadata=co_deploy_metadata,
    )
    blob_id = deployment.create_blob()
    client = SimClient(deployment, 0)
    samples: list[AppendSample] = []
    pages_total = 0
    for _ in range(num_appends):
        outcome = deployment.simulator.run_process(
            client.append_process(blob_id, append_bytes)
        )
        pages_total += outcome.pages_written
        samples.append(
            AppendSample(
                pages_total=pages_total,
                page_size=page_size,
                num_providers=num_provider_nodes,
                bandwidth_mbps=outcome.bandwidth / MiB,
                elapsed=outcome.elapsed,
                metadata_nodes_written=outcome.metadata_nodes_written,
                border_nodes_fetched=outcome.border_nodes_fetched,
                data_round_trips=outcome.data_round_trips,
                metadata_round_trips=outcome.metadata_round_trips,
                vm_round_trips=outcome.vm_round_trips,
            )
        )
    return samples


def run_read_concurrency_experiment(
    num_provider_nodes: int,
    page_size: int,
    blob_bytes: int,
    chunk_bytes: int,
    reader_counts: list[int],
    sim_config: SimConfig | None = None,
    co_locate_clients: bool = True,
    populate_append_bytes: int | None = None,
    measure_warm: bool = False,
    page_replication: int = 1,
    metadata_replication: int | None = None,
    speculative_prefetch: bool = False,
    replica_routing: bool = True,
    peer_caching: bool = True,
) -> list[ReadConcurrencySample]:
    """Concurrent-reader throughput on disjoint chunks (Figure 2(b)).

    The blob is grown (untimed) to ``blob_bytes``; then for each entry of
    ``reader_counts`` that many clients simultaneously read disjoint
    ``chunk_bytes`` ranges and the per-reader bandwidth is averaged.  The
    blob must be large enough for the largest reader count
    (``max(reader_counts) * chunk_bytes <= blob_bytes``).

    Client metadata caches are cleared before each reader count, so the
    primary pass is always cold.  With ``measure_warm=True`` the same
    readers immediately re-read the same ranges on fresh NICs but warm
    caches, filling the sample's ``warm_*`` fields — the repeated-read
    regime where metadata traversals skip the DHT entirely.

    The replication and cold-path knobs (``page_replication``,
    ``metadata_replication``, ``speculative_prefetch``,
    ``replica_routing``, ``peer_caching``) pass straight through to the
    :class:`SimDeployment`'s :class:`~repro.config.BlobSeerConfig`; the
    defaults reproduce the single-home, non-speculative model exactly.
    """
    if max(reader_counts) * chunk_bytes > blob_bytes:
        raise ValueError(
            "blob is too small for the requested reader count and chunk size"
        )
    deployment = SimDeployment(
        num_provider_nodes=num_provider_nodes,
        page_size=page_size,
        sim_config=sim_config,
        co_locate_clients=co_locate_clients,
        page_replication=page_replication,
        metadata_replication=metadata_replication,
        speculative_prefetch=speculative_prefetch,
        replica_routing=replica_routing,
        peer_caching=peer_caching,
    )
    blob_id = deployment.create_blob()
    version = deployment.populate_blob(
        blob_id, blob_bytes, append_bytes=populate_append_bytes
    )

    def run_pass(readers: int):
        deployment.reset_timing()
        simulator = deployment.simulator
        processes = []
        for index in range(readers):
            client = SimClient(deployment, index)
            processes.append(
                simulator.process(
                    client.read_process(
                        blob_id, version, index * chunk_bytes, chunk_bytes
                    )
                )
            )
        simulator.run()
        outcomes = [process.event.value for process in processes]
        if any(outcome is None for outcome in outcomes):
            raise RuntimeError("a simulated reader did not finish")
        return outcomes

    def mean(values) -> float:
        values = list(values)
        return sum(values) / len(values)

    def _ratio(numerator: float, denominator: float) -> float:
        return numerator / denominator if denominator else 0.0

    samples: list[ReadConcurrencySample] = []
    for readers in reader_counts:
        deployment.clear_node_caches()  # a cold start for every data point
        outcomes = run_pass(readers)
        warm = run_pass(readers) if measure_warm else []
        bandwidths = [outcome.bandwidth / MiB for outcome in outcomes]
        total_elapsed = max(outcome.elapsed for outcome in outcomes)
        total_bytes = sum(outcome.bytes_read for outcome in outcomes)
        aggregate = total_bytes / total_elapsed / MiB
        samples.append(
            ReadConcurrencySample(
                readers=readers,
                page_size=page_size,
                num_providers=num_provider_nodes,
                avg_bandwidth_mbps=mean(bandwidths),
                min_bandwidth_mbps=min(bandwidths),
                aggregate_bandwidth_mbps=aggregate,
                avg_metadata_nodes_fetched=mean(
                    outcome.metadata_nodes_fetched for outcome in outcomes
                ),
                avg_data_round_trips=mean(
                    outcome.data_round_trips for outcome in outcomes
                ),
                avg_metadata_round_trips=mean(
                    outcome.metadata_round_trips for outcome in outcomes
                ),
                avg_vm_round_trips=mean(
                    outcome.vm_round_trips for outcome in outcomes
                ),
                avg_cache_hit_rate=mean(
                    outcome.cache_hit_rate for outcome in outcomes
                ),
                avg_page_cache_hit_rate=mean(
                    outcome.page_cache_hit_rate for outcome in outcomes
                ),
                avg_meta_latency=mean(
                    outcome.meta_latency for outcome in outcomes
                ),
                avg_speculative_hits=mean(
                    outcome.speculative_hits for outcome in outcomes
                ),
                avg_speculative_wasted=mean(
                    outcome.speculative_wasted for outcome in outcomes
                ),
                speculative_hit_rate=_ratio(
                    sum(outcome.speculative_hits for outcome in outcomes),
                    sum(
                        outcome.speculative_hits + outcome.speculative_wasted
                        for outcome in outcomes
                    ),
                ),
                avg_peer_cache_hits=mean(
                    outcome.peer_cache_hits for outcome in outcomes
                ),
                peer_cache_hit_rate=_ratio(
                    sum(outcome.peer_cache_hits for outcome in outcomes),
                    sum(outcome.pages_fetched for outcome in outcomes),
                ),
                warm_avg_bandwidth_mbps=(
                    mean(outcome.bandwidth / MiB for outcome in warm)
                    if warm
                    else 0.0
                ),
                warm_avg_metadata_nodes_fetched=(
                    mean(outcome.metadata_nodes_fetched for outcome in warm)
                    if warm
                    else 0.0
                ),
                warm_avg_metadata_round_trips=(
                    mean(outcome.metadata_round_trips for outcome in warm)
                    if warm
                    else 0.0
                ),
                warm_avg_data_round_trips=(
                    mean(outcome.data_round_trips for outcome in warm)
                    if warm
                    else 0.0
                ),
                warm_avg_vm_round_trips=(
                    mean(outcome.vm_round_trips for outcome in warm)
                    if warm
                    else 0.0
                ),
                warm_avg_cache_hit_rate=(
                    mean(outcome.cache_hit_rate for outcome in warm)
                    if warm
                    else 0.0
                ),
                warm_avg_page_cache_hit_rate=(
                    mean(outcome.page_cache_hit_rate for outcome in warm)
                    if warm
                    else 0.0
                ),
            )
        )
    return samples


def run_mixed_workload_experiment(
    num_provider_nodes: int,
    page_size: int,
    blob_bytes: int,
    chunk_bytes: int,
    readers: int,
    writer_counts: list[int],
    append_bytes: int,
    appends_per_writer: int = 2,
    sim_config: SimConfig | None = None,
) -> list[MixedWorkloadSample]:
    """Concurrent readers and appenders on the same blob.

    The paper's closing section announces experiments "demonstrating the
    benefits of data and metadata distribution" under mixed load; this
    experiment quantifies the isolation argument of Section 4.3: because
    updates never modify existing pages or metadata, readers of a published
    snapshot should be almost unaffected by concurrent appenders (and vice
    versa), apart from fair sharing of the provider NICs.
    """
    samples: list[MixedWorkloadSample] = []
    for writers in writer_counts:
        deployment = SimDeployment(
            num_provider_nodes=num_provider_nodes,
            page_size=page_size,
            sim_config=sim_config,
            co_locate_clients=True,
        )
        blob_id = deployment.create_blob()
        version = deployment.populate_blob(blob_id, blob_bytes)
        simulator = deployment.simulator

        read_processes = []
        for index in range(readers):
            client = SimClient(deployment, index)
            read_processes.append(
                simulator.process(
                    client.read_process(
                        blob_id, version, index * chunk_bytes, chunk_bytes
                    )
                )
            )

        def writer(index: int):
            client = SimClient(deployment, readers + index)
            outcomes = []
            for _ in range(appends_per_writer):
                outcome = yield from client.append_process(blob_id, append_bytes)
                outcomes.append(outcome)
            return outcomes

        write_processes = [
            simulator.process(writer(index)) for index in range(writers)
        ]
        simulator.run()

        read_outcomes = [process.event.value for process in read_processes]
        append_outcomes = [
            outcome
            for process in write_processes
            for outcome in process.event.value
        ]
        read_bandwidths = [outcome.bandwidth / MiB for outcome in read_outcomes]
        append_bandwidths = [outcome.bandwidth / MiB for outcome in append_outcomes]
        samples.append(
            MixedWorkloadSample(
                readers=readers,
                writers=writers,
                page_size=page_size,
                num_providers=num_provider_nodes,
                avg_read_bandwidth_mbps=sum(read_bandwidths) / len(read_bandwidths),
                avg_append_bandwidth_mbps=(
                    sum(append_bandwidths) / len(append_bandwidths)
                    if append_bandwidths
                    else 0.0
                ),
                versions_published=deployment.version_manager.get_recent(blob_id)
                - version,
            )
        )
    return samples
