"""Simulated BlobSeer clients.

A :class:`SimClient` executes the client-side algorithms of the paper —
Algorithm 2 (WRITE/APPEND) and Algorithms 1 and 3 (READ) — as discrete-event
processes: every page transfer, metadata round trip and version-manager call
is charged to the simulated network, while the state changes (placement,
version assignment, metadata weaving) run through the same real components
used by the threaded client.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

from ..cache import CacheTally, VirtualPagePayload, complete_frontier, split_frontier
from ..errors import InvalidRangeError
from ..metadata.build import border_plan, border_targets, build_nodes
from ..metadata.geometry import pages_for_size, span_for_pages
from ..metadata.node import Frontier, NodeKey, PageDescriptor
from ..metadata.read_plan import plan_walker, read_plan
from ..util.ranges import covering_page_range
from ..version.records import CompletionNotice, RegisterRequest, resolve_owner
from .deployment import SimDeployment
from .engine import Event


@dataclass(frozen=True)
class AppendOutcome:
    """Result of one simulated APPEND."""

    version: int
    bytes_written: int
    elapsed: float
    pages_written: int
    metadata_nodes_written: int
    #: Border nodes that actually travelled from the DHT (cache hits are
    #: counted in ``metadata_cache_hits`` and skip the NIC pipes).
    border_nodes_fetched: int
    #: Batched metadata round trips: one per border-plan frontier with at
    #: least one cache miss, plus one for the batched publish.
    metadata_round_trips: int = 0
    #: Batched data round trips: one multi-page store per provider touched.
    data_round_trips: int = 0
    #: Border-node lookups served by the client machine's metadata cache.
    metadata_cache_hits: int = 0
    #: Version-manager round trips of this append: the (group-committed)
    #: ticket request plus the (one-way, pipelined) completion notice.  The
    #: VM endpoint's serialized service time is charged once per office
    #: *batch*, so N concurrent appends cost O(batches) VM rounds.
    vm_round_trips: int = 0

    @property
    def bandwidth(self) -> float:
        """Achieved bandwidth in bytes/second."""
        return self.bytes_written / self.elapsed if self.elapsed > 0 else 0.0


@dataclass(frozen=True)
class ReadOutcome:
    """Result of one simulated READ."""

    version: int
    bytes_read: int
    elapsed: float
    pages_fetched: int
    #: Tree nodes that actually travelled from the DHT; cache hits are
    #: counted in ``metadata_cache_hits`` and skip the NIC pipes, so a warm
    #: repeated read reports ~0 here.
    metadata_nodes_fetched: int
    #: Batched metadata round trips of the traversal: one per frontier with
    #: at least one cache miss (zero for a fully cached traversal).
    metadata_round_trips: int = 0
    #: Batched data round trips: one multi-page fetch per provider touched.
    data_round_trips: int = 0
    #: Tree-node lookups served by the client machine's metadata cache.
    metadata_cache_hits: int = 0
    #: Page ranges served by the client machine's page cache — those pages
    #: skip the provider NIC pipes entirely, so a fully cached read reports
    #: ``data_round_trips == 0``.
    page_cache_hits: int = 0
    #: Tree nodes whose DHT fetch was issued SPECULATIVELY — predicted from
    #: the requested range's geometry one level before the authoritative
    #: parent resolved (DESIGN.md §9) — and then consumed by the traversal.
    #: These nodes still count in ``metadata_nodes_fetched`` and their
    #: frontiers in ``metadata_round_trips``; speculation changes when the
    #: fetch *starts*, never what is fetched.  Always 0 with
    #: ``speculative_prefetch`` off.
    speculative_hits: int = 0
    #: Speculative fetches the traversal never consumed (the guessed child
    #: span or version was wrong, or the node was cached after all).  Pure
    #: over-fetch: the wasted nodes burn NIC time but are NOT counted in
    #: ``metadata_nodes_fetched`` and never enter the metadata cache.
    speculative_wasted: int = 0
    #: Page ranges served by a co-located PEER machine's page cache
    #: (cooperative peer caching, DESIGN.md §9) — one cheap peer hop
    #: instead of a provider round.  Disjoint from ``page_cache_hits``
    #: (own machine) and not counted in ``data_round_trips``.
    peer_cache_hits: int = 0
    #: Simulated seconds the read spent in its metadata descent — the
    #: cold-path latency that speculative prefetch attacks; ~0 on a warm
    #: (fully cached) traversal.
    meta_latency: float = 0.0
    #: Version-manager round trips: 1 when the publication check travelled
    #: to the VM node, 0 when the machine's version lease served it — the
    #: warm repeated-read regime skips the VM entirely.  Note the sim has
    #: always modelled the blob *record* as client-stub state (never a
    #: charged RPC), so this counts only the publication check; the
    #: threaded ``ReadStats.vm_round_trips`` also counts the record lookup
    #: and reports up to 2 cold.
    vm_round_trips: int = 0

    @property
    def bandwidth(self) -> float:
        """Achieved bandwidth in bytes/second."""
        return self.bytes_read / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over all node lookups of this read's traversal."""
        total = self.metadata_cache_hits + self.metadata_nodes_fetched
        return self.metadata_cache_hits / total if total else 0.0

    @property
    def page_cache_hit_rate(self) -> float:
        """Page-cache hits over all page ranges this read needed."""
        return (
            self.page_cache_hits / self.pages_fetched
            if self.pages_fetched
            else 0.0
        )

    @property
    def speculative_hit_rate(self) -> float:
        """Consumed speculative fetches over all speculative fetches."""
        predicted = self.speculative_hits + self.speculative_wasted
        return self.speculative_hits / predicted if predicted else 0.0

    @property
    def peer_cache_hit_rate(self) -> float:
        """Peer-served page ranges over all page ranges this read needed."""
        return (
            self.peer_cache_hits / self.pages_fetched
            if self.pages_fetched
            else 0.0
        )


class SimClient:
    """One simulated client process slot."""

    def __init__(self, deployment: SimDeployment, index: int = 0):
        self._dep = deployment
        self.index = index
        self.node = deployment.client_node(index)
        # The machine-wide metadata cache: co-located clients share it, and
        # it survives reset_timing (it is client state, not NIC state).
        self._node_cache = deployment.node_cache_for(self.node)
        # The machine-wide page cache (None when disabled): same sharing
        # and lifetime as the node cache; cached ranges skip the NIC pipes.
        self._page_cache = deployment.page_cache_for(self.node)
        # The machine-wide version-lease cache (None when leasing is
        # disabled): same sharing and lifetime as the node cache.
        self._version_lease = deployment.version_lease_for(self.node)

    # ------------------------------------------------------------------ APPEND
    def append_process(
        self, blob_id: str, nbytes: int
    ) -> Generator[Event, object, AppendOutcome]:
        """Simulate one page-aligned APPEND of ``nbytes`` (Algorithm 2).

        Pages are pushed to their providers in parallel; the version manager
        is then contacted to obtain the snapshot version, border hints are
        resolved against the metadata DHT, the new tree nodes are written,
        and the version manager is notified of completion.
        """
        dep = self._dep
        sim = dep.simulator
        net = dep.network
        cfg = dep.sim_config
        vm = dep.version_manager
        meta = dep.metadata_provider
        record = vm.get_record(blob_id)
        page_size = record.page_size
        if nbytes <= 0 or nbytes % page_size != 0:
            raise InvalidRangeError(
                "simulated appends must be a positive multiple of the page size"
            )
        page_count = nbytes // page_size
        start = sim.now

        # Phase 1: store the pages on providers chosen by the provider
        # manager — one allocation request, then ONE batched multi-page push
        # per provider, all providers in parallel (Algorithm 2, line 4).
        # With page_replication > 1 every replica gets its own push, so the
        # writer honestly pays the replication bandwidth.
        yield from net.small_rpc(
            self.node, dep.pmgr_node, cfg.version_manager_service_time
        )
        replica_sets = dep.provider_manager.allocate_replicas(
            page_count, dep.config.page_replication
        )
        page_ids = [dep.cluster._ids.next_page_id() for _ in replica_sets]
        by_provider: dict[str, list[str]] = {}
        for page_id, replicas in zip(page_ids, replica_sets):
            for provider_id in replicas:
                by_provider.setdefault(provider_id, []).append(page_id)
        transfers = [
            sim.process(
                net.multi_push(
                    self.node,
                    dep.node_for_provider(provider_id),
                    page_size * len(batch_page_ids),
                    count=len(batch_page_ids),
                    item_service_time=cfg.page_service_time,
                )
            )
            for provider_id, batch_page_ids in by_provider.items()
        ]
        yield sim.all_of([process.event for process in transfers])
        data_round_trips = dep.provider_manager.multi_store_virtual(
            [
                (provider_id, page_id, page_size)
                for page_id, replicas in zip(page_ids, replica_sets)
                for provider_id in replicas
            ]
        )

        # Phase 2: obtain the snapshot version (and the border hints)
        # through the VM's group-commit ticket office: the request leg
        # travels individually, but the VM's serialized service time is
        # charged once per *batch* of concurrently arrived registrations.
        yield from net.small_request(self.node, dep.vm_node)
        ticket = yield from dep.ticket_office.submit(
            RegisterRequest(blob_id=blob_id, size=nbytes, is_append=True)
        )
        yield sim.timeout(cfg.latency)  # the ticket's response leg
        descriptors = [
            PageDescriptor(
                page_index=ticket.page_offset + index,
                page_id=page_id,
                provider_id=replicas[0],
                length=page_size,
                provider_ids=replicas,
            )
            for index, (page_id, replicas) in enumerate(zip(page_ids, replica_sets))
        ]

        # Phase 3: resolve border nodes by descending the published tree.
        needed, dangling = border_targets(
            ticket.page_offset, ticket.page_count, ticket.span, ticket.prev_num_pages
        )
        plan = border_plan(
            needed,
            dangling,
            ticket.published_version if ticket.published_version else None,
            ticket.published_num_pages,
            ticket.inflight_tuples(),
        )
        spec, border_tally = yield from self._drive_plan_timed(record, plan)

        # Phase 4: weave and write the new metadata tree nodes — one batched
        # multi-put (Algorithm 4 line 34 "in parallel"): the items are
        # grouped per serving metadata node and each group travels as a
        # single message, all groups concurrently.
        build = build_nodes(
            ticket.version,
            ticket.page_offset,
            ticket.page_count,
            ticket.span,
            descriptors,
            spec,
        )
        items = [
            (NodeKey(record.blob_id, ref.version, ref.offset, ref.size), node)
            for ref, node in build.nodes
        ]
        meta.put_nodes(items)
        # Write-through: the published nodes are immutable from here on, so
        # this machine's subsequent traversals over them are warm.  Keys go
        # through the cluster namespace, same as the lookups.
        self._node_cache.put_many(
            [(dep.cluster.node_cache_key(key), node) for key, node in items]
        )
        puts = self._batched_meta_rpcs(
            [key for key, _node in items],
            lambda server, count: net.small_rpc(
                self.node,
                server,
                cfg.metadata_service_time * count,
                payload_bytes=cfg.metadata_node_size * count,
            ),
        )
        yield sim.all_of([process.event for process in puts])

        # Phase 5: notify the version manager of success — one-way and
        # pipelined: the writer pays only its send framing; the notice
        # travels behind its back into the publish office, which advances
        # publication in order batches (Algorithm 2 line 12 without the
        # synchronous wait; SYNC still gives read-your-writes).
        yield from net.send_frame(self.node)
        dep.publish_office.post_delayed(
            CompletionNotice(blob_id=blob_id, version=ticket.version),
            cfg.latency,
        )

        return AppendOutcome(
            version=ticket.version,
            bytes_written=nbytes,
            elapsed=sim.now - start,
            pages_written=page_count,
            metadata_nodes_written=build.node_count,
            border_nodes_fetched=border_tally.fetched,
            metadata_round_trips=border_tally.trips + 1,
            data_round_trips=data_round_trips,
            metadata_cache_hits=border_tally.hits,
            vm_round_trips=2,
        )

    # -------------------------------------------------------------------- READ
    def read_process(
        self, blob_id: str, version: int, offset: int, size: int
    ) -> Generator[Event, object, ReadOutcome]:
        """Simulate one READ (Algorithms 1 and 3).

        The version manager is consulted for publication and size, the
        segment tree is traversed node by node through the metadata DHT, then
        the pages are fetched from their providers in parallel.
        """
        dep = self._dep
        sim = dep.simulator
        net = dep.network
        cfg = dep.sim_config
        vm = dep.version_manager
        record = vm.get_record(blob_id)
        page_size = record.page_size
        start = sim.now

        # Publication check: one combined check_read RPC — skipped entirely
        # when this machine's version lease already holds the published
        # size as an immutable fact (the warm repeated-read regime pays
        # ZERO version-manager round trips).
        if self._version_lease is not None:
            snapshot_size, vm_trips = self._version_lease.published_size(
                blob_id, version
            )
        else:
            snapshot_size, vm_trips = vm.check_read(blob_id, version), 1
        if vm_trips:
            yield from net.small_rpc(
                self.node, dep.vm_node, cfg.version_manager_service_time
            )
        vm_end = sim.now
        if offset + size > snapshot_size:
            raise InvalidRangeError(
                f"read range ({offset}, {size}) exceeds snapshot size {snapshot_size}"
            )

        page_offset, page_count = covering_page_range(offset, size, page_size)
        span = span_for_pages(pages_for_size(snapshot_size, page_size))
        meta_start = sim.now
        plan_result, tally, spec_hits, spec_wasted = (
            yield from self._timed_read_descent(
                record, version, span, page_offset, page_count
            )
        )
        meta_latency = sim.now - meta_start

        # Consult the machine's page cache BEFORE building provider
        # batches: a cached range is served locally in zero simulated time
        # (pages are immutable, so the copy can never be stale) and never
        # enters a batch.  Own-cache misses then probe co-located PEER
        # machines' page caches (one cheap hop, DESIGN.md §9) before the
        # remainder travels with ONE batched multi-page request per chosen
        # replica provider, all providers in parallel — the data-path
        # counterpart of the batched metadata frontiers above — and is
        # write-through-cached on the way back, so the repeated-read
        # regime skips the providers entirely.
        data_start = sim.now
        requests = [
            (
                descriptor,
                dep.cluster.page_cache_key(
                    descriptor.page_id, 0, min(descriptor.length, page_size)
                ),
            )
            for descriptor in plan_result.descriptors
        ]
        if self._page_cache is not None:
            cached = self._page_cache.get_many([key for _desc, key in requests])
        else:
            cached = [None] * len(requests)
        page_cache_hits = sum(1 for value in cached if value is not None)
        hit_bytes = sum(
            len(value) for value in cached if value is not None
        )
        if hit_bytes:
            # Serving cached ranges is not free: the bytes still cross the
            # machine's memory bus.  Fully warm reads are therefore bounded
            # by memory_bandwidth instead of the NIC — orders of magnitude
            # faster, not infinitely fast.
            yield sim.timeout(hit_bytes / cfg.memory_bandwidth)
        peer_cache_hits = 0
        by_peer: dict = {}  # serving peer SimNode -> [lengths]
        local_lengths: list[int] = []  # replica on this machine: no NIC
        by_provider: dict[str, list[int]] = {}
        route = dep.config.feature_enabled("replica_routing")
        probe_peers = dep.has_peer_caches(self.node)
        for (descriptor, key), value in zip(requests, cached):
            if value is not None:
                continue
            length = min(descriptor.length, page_size)
            if probe_peers:
                peer = dep.peer_page_source(key, self.node)
                if peer is not None:
                    by_peer.setdefault(peer, []).append(length)
                    peer_cache_hits += 1
                    continue
            replicas = descriptor.provider_ids
            if route and len(replicas) > 1:
                # Cache-aware replica routing (DESIGN.md §9): a replica on
                # this very machine is served over the memory bus instead
                # of the NIC; otherwise readers deterministically spread
                # across the replica set instead of hammering replica 0.
                nodes = [dep.node_for_provider(pid) for pid in replicas]
                if self.node in nodes:
                    local_lengths.append(length)
                    continue
                chosen = replicas[self.index % len(replicas)]
            else:
                chosen = descriptor.provider_id
            by_provider.setdefault(chosen, []).append(length)
        fetches = [
            sim.process(
                net.multi_fetch(
                    self.node,
                    dep.node_for_provider(provider_id),
                    sum(lengths),
                    count=len(lengths),
                    item_service_time=cfg.page_service_time,
                )
            )
            for provider_id, lengths in by_provider.items()
        ]
        fetches.extend(
            sim.process(
                net.peer_fetch(self.node, peer, sum(lengths), len(lengths))
            )
            for peer, lengths in by_peer.items()
        )
        if local_lengths:
            fetches.append(
                sim.process(
                    net.local_fetch(
                        sum(local_lengths),
                        len(local_lengths),
                        item_service_time=cfg.page_service_time,
                    )
                )
            )
        yield sim.all_of([process.event for process in fetches])
        if self._page_cache is not None:
            self._page_cache.put_many(
                [
                    (key, VirtualPagePayload(key[-1]))
                    for (_desc, key), value in zip(requests, cached)
                    if value is None
                ]
            )

        # Generator processes interleave outside any contextvars context,
        # so the legs are recorded retroactively from the virtual-clock
        # timestamps captured above (see SimDeployment.tracer).
        tracer = dep.tracer
        if tracer is not None:
            root = tracer.record(
                "sim.read",
                start,
                sim.now,
                blob_id=blob_id,
                version=version,
                offset=offset,
                size=size,
                client=self.index,
            )
            if vm_trips:
                tracer.record(
                    "sim.read.vm", start, vm_end, parent=root, trips=vm_trips
                )
            tracer.record(
                "sim.read.meta",
                meta_start,
                meta_start + meta_latency,
                parent=root,
                nodes=tally.fetched,
                trips=tally.trips,
                cache_hits=tally.hits,
            )
            tracer.record(
                "sim.read.data",
                data_start,
                sim.now,
                parent=root,
                pages=len(plan_result.descriptors),
                providers=len(by_provider),
                page_cache_hits=page_cache_hits,
                peer_cache_hits=peer_cache_hits,
            )

        return ReadOutcome(
            version=version,
            bytes_read=size,
            elapsed=sim.now - start,
            pages_fetched=len(plan_result.descriptors),
            metadata_nodes_fetched=tally.fetched,
            metadata_round_trips=tally.trips,
            data_round_trips=len(by_provider),
            metadata_cache_hits=tally.hits,
            page_cache_hits=page_cache_hits,
            vm_round_trips=vm_trips,
            speculative_hits=spec_hits,
            speculative_wasted=spec_wasted,
            peer_cache_hits=peer_cache_hits,
            meta_latency=meta_latency,
        )

    # --------------------------------------------------------------- internals
    def _batched_meta_rpcs(self, keys, rpc):
        """Spawn one batched metadata message per serving node.

        ``keys`` are grouped by the node that hosts their DHT bucket and
        ``rpc(server, count)`` builds the timed exchange for one group — all
        of a batch's groups proceed concurrently, which is what makes a
        frontier (or a tree publish) cost one round trip.  Returns the
        spawned processes for the caller to join.
        """
        dep = self._dep
        by_node: dict = {}
        for key in keys:
            server = dep.metadata_node_for_key(key)
            by_node[server] = by_node.get(server, 0) + 1
        return [
            dep.simulator.process(rpc(server, count))
            for server, count in by_node.items()
        ]

    def _drive_plan_timed(self, record, plan):
        """Drive a sans-IO metadata plan, charging one batched network round
        trip per frontier *that has at least one cache miss*.

        Cached keys are filtered before anything touches the network: a hit
        is served from the client machine's shared
        :class:`~repro.cache.NodeCache` and skips the NIC pipes entirely, so
        a fully cached frontier costs zero simulated time.  The misses are
        grouped per serving metadata node, each group travels as one request
        carrying all its nodes, and the groups proceed concurrently — so a
        frontier costs (roughly) one round-trip latency regardless of how
        many nodes it holds, exactly the parallel metadata access the
        paper's DHT design is meant to enable.  Fetched nodes are inserted
        into the cache on the way back.  A legacy plan yielding single refs
        is handled the same way.

        Returns ``(plan_result, tally)`` where the
        :class:`~repro.cache.CacheTally` carries the traversal's hit/fetch/
        trip counts.
        """
        dep = self._dep
        sim = dep.simulator
        net = dep.network
        cfg = dep.sim_config
        meta = dep.metadata_provider
        cache = self._node_cache
        cluster = dep.cluster
        tally = CacheTally()
        try:
            request = next(plan)
            while True:
                batched = isinstance(request, Frontier)
                refs = list(request.refs) if batched else [request]
                keys = [
                    NodeKey(
                        resolve_owner(record, ref.version),
                        ref.version,
                        ref.offset,
                        ref.size,
                    )
                    for ref in refs
                ]
                cache_keys = [cluster.node_cache_key(key) for key in keys]
                nodes, miss_indices = split_frontier(cache, cache_keys, tally)
                if miss_indices:
                    miss_keys = [keys[index] for index in miss_indices]
                    fetches = self._batched_meta_rpcs(
                        miss_keys,
                        lambda server, count: net.fetch(
                            self.node,
                            server,
                            cfg.metadata_node_size * count,
                            service_time=cfg.metadata_service_time * count,
                        ),
                    )
                    yield sim.all_of([process.event for process in fetches])
                    fetched = meta.get_nodes(miss_keys)
                    complete_frontier(
                        cache, cache_keys, miss_indices, fetched, nodes, tally
                    )
                request = plan.send(nodes if batched else nodes[0])
        except StopIteration as stop:
            return stop.value, tally

    def _meta_server_for_key(self, key: NodeKey):
        """The machine a READ fetches ``key`` from, with cache-aware
        replica routing (DESIGN.md §9).

        With ``replica_routing`` on and a replicated metadata DHT, a bucket
        replica hosted on THIS machine wins (the node is served over the
        memory bus); otherwise clients deterministically spread across the
        replica set by their index instead of all hammering the primary.
        Unreplicated deployments (and routing off) keep the primary —
        bit-identical to the pre-routing model.
        """
        dep = self._dep
        if not (
            dep.config.feature_enabled("replica_routing")
            and dep.config.metadata_replication > 1
        ):
            return dep.metadata_node_for_key(key)
        buckets = dep.cluster.dht.buckets_for(key.to_string())
        nodes = [dep.node_for_bucket(bucket) for bucket in buckets]
        for node in nodes:
            if node is self.node:
                return node
        return nodes[self.index % len(nodes)]

    def _spawn_meta_fetches(self, keys):
        """Spawn one timed batched node fetch per chosen serving machine.

        Returns ``[(process, keys_of_batch), ...]``; when cache-aware
        replica routing is active (replicated DHT, ``replica_routing`` on),
        a batch served by THIS machine's co-located metadata provider
        travels over the memory bus
        (:meth:`~repro.sim.network.Network.local_fetch`) instead of the
        NIC.  Unreplicated deployments always pay the NIC — bit-identical
        to the pre-routing model even when a bucket's primary happens to
        live on the client's machine.
        """
        dep = self._dep
        sim = dep.simulator
        net = dep.network
        cfg = dep.sim_config
        routed = (
            dep.config.feature_enabled("replica_routing")
            and dep.config.metadata_replication > 1
        )
        by_node: dict = {}
        for key in keys:
            by_node.setdefault(self._meta_server_for_key(key), []).append(key)
        spawned = []
        for server, group in by_node.items():
            count = len(group)
            if routed and server is self.node:
                exchange = net.local_fetch(
                    cfg.metadata_node_size * count,
                    count,
                    item_service_time=cfg.metadata_service_time,
                )
            else:
                exchange = net.fetch(
                    self.node,
                    server,
                    cfg.metadata_node_size * count,
                    service_time=cfg.metadata_service_time * count,
                )
            spawned.append((sim.process(exchange), group))
        return spawned

    def _timed_read_descent(self, record, version, span, page_offset, page_count):
        """The READ traversal of Algorithm 3 with the cold-path treatment
        of DESIGN.md §9: cache-aware replica routing for every node fetch
        and (when ``speculative_prefetch`` is on) speculative frontier
        prefetch.

        Speculation predicts the wanted children of every missed frontier
        ref from the requested range's geometry
        (:meth:`~repro.metadata.read_plan.FrontierWalker.predicted_children`)
        and spawns their fetches BEFORE waiting on the parents' frontier.
        When the next frontier arrives, misses whose fetch is already in
        flight just join the running process — typically finished, because
        it departed one round trip earlier — so the descent covers two
        tree levels per round-trip latency instead of one.  Wrong guesses
        keep burning their NIC time in the background but are never waited
        on, never cached and never counted in the traversal tally: the
        authoritative plan decides what is fetched, speculation only moves
        the start time.  Returns ``(plan_result, tally, hits, wasted)``.
        """
        dep = self._dep
        sim = dep.simulator
        meta = dep.metadata_provider
        cache = self._node_cache
        cluster = dep.cluster
        tally = CacheTally()
        predictor = (
            plan_walker(version, span, [(page_offset, page_count)])
            if dep.config.feature_enabled("speculative_prefetch") and page_count > 0
            else None
        )
        inflight: dict = {}  # NodeKey -> running speculative fetch process
        seen: set = set()  # every key ever predicted (dedupe)
        spec_hits = 0
        spec_predicted = 0
        plan = read_plan(version, span, page_offset, page_count)
        try:
            request = next(plan)
            while True:
                batched = isinstance(request, Frontier)
                refs = list(request.refs) if batched else [request]
                keys = [
                    NodeKey(
                        resolve_owner(record, ref.version),
                        ref.version,
                        ref.offset,
                        ref.size,
                    )
                    for ref in refs
                ]
                cache_keys = [cluster.node_cache_key(key) for key in keys]
                nodes, miss_indices = split_frontier(cache, cache_keys, tally)
                if miss_indices:
                    miss_keys = [keys[index] for index in miss_indices]
                    if predictor is not None:
                        # Predict the misses' children NOW, before this
                        # frontier's own fetch departs — that head start is
                        # the entire win.
                        predictions = []
                        for index in miss_indices:
                            for child in predictor.predicted_children(
                                refs[index]
                            ):
                                child_key = NodeKey(
                                    resolve_owner(record, child.version),
                                    child.version,
                                    child.offset,
                                    child.size,
                                )
                                if child_key in seen:
                                    continue
                                seen.add(child_key)
                                predictions.append(child_key)
                        spec_predicted += len(predictions)
                        for process, group in self._spawn_meta_fetches(
                            predictions
                        ):
                            for child_key in group:
                                inflight[child_key] = process
                    waits = []
                    normal_keys = []
                    for key in miss_keys:
                        process = inflight.pop(key, None)
                        if process is None:
                            normal_keys.append(key)
                        else:
                            spec_hits += 1
                            if process not in waits:
                                waits.append(process)
                    waits.extend(
                        process
                        for process, _group in self._spawn_meta_fetches(
                            normal_keys
                        )
                    )
                    yield sim.all_of([process.event for process in waits])
                    fetched = meta.get_nodes(miss_keys)
                    complete_frontier(
                        cache, cache_keys, miss_indices, fetched, nodes, tally
                    )
                request = plan.send(nodes if batched else nodes[0])
        except StopIteration as stop:
            # Wasted speculative fetches (wrong version guess, or the node
            # was cached after all) keep running in the background — their
            # NIC cost is honest over-fetch — but nobody waits on them.
            return stop.value, tally, spec_hits, spec_predicted - spec_hits
