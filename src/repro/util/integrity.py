"""Checksum helpers used to (optionally) verify page payload integrity."""

from __future__ import annotations

import hashlib
import zlib

from ..errors import IntegrityError


def checksum(data: bytes, algorithm: str = "crc32") -> str:
    """Compute a checksum of *data*.

    ``crc32`` is the cheap default used on the hot path; ``sha256`` is
    available for stronger end-to-end verification in tests.
    """
    if algorithm == "crc32":
        return f"crc32:{zlib.crc32(data) & 0xFFFFFFFF:08x}"
    if algorithm == "sha256":
        return f"sha256:{hashlib.sha256(data).hexdigest()}"
    raise ValueError(f"unknown checksum algorithm: {algorithm!r}")


def verify_checksum(data: bytes, expected: str, what: str = "page") -> None:
    """Verify that *data* matches the *expected* checksum string.

    Raises :class:`repro.errors.IntegrityError` on mismatch.
    """
    algorithm = expected.split(":", 1)[0]
    actual = checksum(data, algorithm)
    if actual != expected:
        raise IntegrityError(what, expected, actual)
