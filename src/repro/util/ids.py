"""Globally unique identifier generation for blobs and pages.

The paper requires blob ids to be globally unique and every WRITE/APPEND to
generate fresh, globally unique page ids.  Two mechanisms are provided:

* :func:`new_blob_id` / :func:`new_page_id` — UUID4-based ids for real
  (threaded) deployments.
* :class:`IdGenerator` — a deterministic, seedable generator used by the
  discrete-event simulator and by tests that need reproducible runs.
"""

from __future__ import annotations

import itertools
import threading
import uuid


def new_blob_id() -> str:
    """Return a fresh globally unique blob identifier."""
    return f"blob-{uuid.uuid4().hex}"


def new_page_id() -> str:
    """Return a fresh globally unique page identifier."""
    return f"page-{uuid.uuid4().hex}"


class IdGenerator:
    """Deterministic, thread-safe id generator.

    Ids are of the form ``"{prefix}-{counter:08d}"``.  A single generator is
    shared by a deployment so that ids never collide; determinism makes
    simulator runs and tests reproducible.
    """

    def __init__(self, prefix: str = "id"):
        self._prefix = prefix
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def next(self, kind: str = "") -> str:
        """Return the next id, optionally tagged with a *kind* label."""
        with self._lock:
            value = next(self._counter)
        if kind:
            return f"{self._prefix}-{kind}-{value:08d}"
        return f"{self._prefix}-{value:08d}"

    def next_blob_id(self) -> str:
        return self.next("blob")

    def next_page_id(self) -> str:
        return self.next("page")
