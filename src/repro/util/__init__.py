"""Utility helpers shared by every subsystem (ranges, ids, checksums)."""

from .ranges import (
    ByteRange,
    PageRange,
    ceil_div,
    covering_page_range,
    intersects,
    intersection,
    is_aligned,
    next_power_of_two,
    split_aligned,
)
from .ids import IdGenerator, new_blob_id, new_page_id
from .integrity import checksum, verify_checksum

__all__ = [
    "ByteRange",
    "PageRange",
    "ceil_div",
    "covering_page_range",
    "intersects",
    "intersection",
    "is_aligned",
    "next_power_of_two",
    "split_aligned",
    "IdGenerator",
    "new_blob_id",
    "new_page_id",
    "checksum",
    "verify_checksum",
]
