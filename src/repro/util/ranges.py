"""Range and page arithmetic.

BlobSeer stripes blobs into fixed-size pages.  All metadata is expressed in
terms of *page ranges* ``(offset, size)`` where both values are counted in
pages, while the public API works in bytes.  This module centralizes the
conversions and the interval arithmetic used by the segment tree (halving,
intersection, alignment checks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidRangeError


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative *a* and positive *b*."""
    return -(-a // b)


def next_power_of_two(value: int) -> int:
    """Return the smallest power of two >= *value* (and >= 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def intersects(offset_a: int, size_a: int, offset_b: int, size_b: int) -> bool:
    """Return True when the half-open ranges [a, a+size_a) and [b, b+size_b)
    overlap.  Empty ranges never intersect anything."""
    if size_a <= 0 or size_b <= 0:
        return False
    return offset_a < offset_b + size_b and offset_b < offset_a + size_a


def intersection(
    offset_a: int, size_a: int, offset_b: int, size_b: int
) -> tuple[int, int] | None:
    """Return the (offset, size) of the overlap of two ranges, or None."""
    start = max(offset_a, offset_b)
    end = min(offset_a + size_a, offset_b + size_b)
    if end <= start:
        return None
    return start, end - start


def is_aligned(offset: int, size: int, page_size: int) -> bool:
    """Return True when a byte range covers a whole number of pages."""
    return offset % page_size == 0 and size % page_size == 0


def covering_page_range(offset: int, size: int, page_size: int) -> tuple[int, int]:
    """Return the (first_page, page_count) covering a byte range.

    The returned range is the smallest aligned page range that fully contains
    ``[offset, offset + size)``.
    """
    if offset < 0 or size < 0:
        raise InvalidRangeError(f"negative offset/size: ({offset}, {size})")
    if size == 0:
        return offset // page_size, 0
    first = offset // page_size
    last = (offset + size - 1) // page_size
    return first, last - first + 1


def split_aligned(offset: int, size: int, page_size: int) -> list[tuple[int, int, int]]:
    """Split a byte range into per-page pieces.

    Returns a list of ``(page_index, offset_in_page, length)`` tuples covering
    exactly ``[offset, offset + size)`` in order.
    """
    if offset < 0 or size < 0:
        raise InvalidRangeError(f"negative offset/size: ({offset}, {size})")
    pieces: list[tuple[int, int, int]] = []
    position = offset
    end = offset + size
    while position < end:
        page_index = position // page_size
        offset_in_page = position % page_size
        length = min(page_size - offset_in_page, end - position)
        pieces.append((page_index, offset_in_page, length))
        position += length
    return pieces


@dataclass(frozen=True, order=True)
class ByteRange:
    """A half-open byte range ``[offset, offset + size)`` within a blob."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size < 0:
            raise InvalidRangeError(
                f"invalid byte range ({self.offset}, {self.size})"
            )

    @property
    def end(self) -> int:
        return self.offset + self.size

    def is_empty(self) -> bool:
        return self.size == 0

    def intersects(self, other: "ByteRange") -> bool:
        return intersects(self.offset, self.size, other.offset, other.size)

    def intersection(self, other: "ByteRange") -> "ByteRange | None":
        hit = intersection(self.offset, self.size, other.offset, other.size)
        if hit is None:
            return None
        return ByteRange(*hit)

    def contains(self, other: "ByteRange") -> bool:
        """True when *other* lies entirely within this range."""
        if other.is_empty():
            return self.offset <= other.offset <= self.end
        return self.offset <= other.offset and other.end <= self.end

    def to_pages(self, page_size: int) -> "PageRange":
        """Smallest aligned page range covering this byte range."""
        first, count = covering_page_range(self.offset, self.size, page_size)
        return PageRange(first, count)


@dataclass(frozen=True, order=True)
class PageRange:
    """A half-open range of pages ``[offset, offset + size)``, in page units."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size < 0:
            raise InvalidRangeError(
                f"invalid page range ({self.offset}, {self.size})"
            )

    @property
    def end(self) -> int:
        return self.offset + self.size

    def is_empty(self) -> bool:
        return self.size == 0

    def intersects(self, other: "PageRange") -> bool:
        return intersects(self.offset, self.size, other.offset, other.size)

    def intersection(self, other: "PageRange") -> "PageRange | None":
        hit = intersection(self.offset, self.size, other.offset, other.size)
        if hit is None:
            return None
        return PageRange(*hit)

    def contains(self, other: "PageRange") -> bool:
        if other.is_empty():
            return self.offset <= other.offset <= self.end
        return self.offset <= other.offset and other.end <= self.end

    def pages(self) -> range:
        """Iterate over the page indices in the range."""
        return range(self.offset, self.end)

    def to_bytes(self, page_size: int) -> ByteRange:
        return ByteRange(self.offset * page_size, self.size * page_size)
