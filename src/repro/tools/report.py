"""Cluster-wide storage and load reporting."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cluster import Cluster


@dataclass(frozen=True)
class ClusterReport:
    """A point-in-time summary of a deployment's storage and load."""

    blobs: int
    published_versions: int
    data_providers: int
    metadata_buckets: int
    pages_stored: int
    bytes_stored: int
    metadata_nodes: int
    logical_bytes: int
    page_load_imbalance: float
    metadata_load_imbalance: float
    per_provider_bytes: dict[str, int] = field(default_factory=dict)
    per_bucket_nodes: dict[str, int] = field(default_factory=dict)
    #: Occupancy and lifetime hit rate of the cluster's metadata node cache.
    #: With default budgets the cache is process-wide, so these numbers
    #: cover every cluster sharing it.
    cache_entries: int = 0
    cache_bytes: int = 0
    cache_hit_rate: float = 0.0
    cache_evictions: int = 0

    @property
    def physical_to_logical_ratio(self) -> float:
        """Physical bytes stored per logical byte of the latest snapshots.

        Values close to 1.0 mean old versions cost almost nothing extra
        beyond the live data (heavy page sharing); large values mean the
        version history dominates storage.
        """
        if self.logical_bytes == 0:
            return 0.0
        return self.bytes_stored / self.logical_bytes

    def format(self) -> str:
        lines = [
            "cluster report",
            f"  blobs:               {self.blobs} "
            f"({self.published_versions} published versions)",
            f"  data providers:      {self.data_providers} "
            f"holding {self.pages_stored} pages / {self.bytes_stored} bytes",
            f"  metadata buckets:    {self.metadata_buckets} "
            f"holding {self.metadata_nodes} tree nodes",
            f"  logical bytes:       {self.logical_bytes} "
            f"(physical/logical = {self.physical_to_logical_ratio:.2f})",
            f"  page load imbalance: {self.page_load_imbalance:.2f} (max/mean)",
            f"  node load imbalance: {self.metadata_load_imbalance:.2f} (max/mean)",
            f"  metadata cache:      {self.cache_entries} nodes / "
            f"{self.cache_bytes} bytes "
            f"(hit rate {self.cache_hit_rate:.2f}, "
            f"{self.cache_evictions} evictions)",
        ]
        return "\n".join(lines)


def cluster_report(cluster: Cluster) -> ClusterReport:
    """Collect a :class:`ClusterReport` from a live deployment."""
    vm = cluster.version_manager
    blob_ids = vm.blob_ids()
    published_versions = 0
    logical_bytes = 0
    for blob_id in blob_ids:
        recent = vm.get_recent(blob_id)
        published_versions += recent
        logical_bytes += vm.get_size(blob_id, recent)

    page_loads = cluster.page_load_distribution()
    node_loads = cluster.metadata_load_distribution()
    cache_stats = cluster.node_cache.stats()
    return ClusterReport(
        blobs=len(blob_ids),
        published_versions=published_versions,
        data_providers=len(cluster.provider_manager),
        metadata_buckets=len(cluster.dht.bucket_ids()),
        pages_stored=cluster.stored_page_count(),
        bytes_stored=cluster.storage_bytes_used(),
        metadata_nodes=cluster.metadata_node_count(),
        logical_bytes=logical_bytes,
        page_load_imbalance=_imbalance(page_loads),
        metadata_load_imbalance=_imbalance(node_loads),
        per_provider_bytes=dict(page_loads),
        per_bucket_nodes=dict(node_loads),
        cache_entries=cache_stats.entries,
        cache_bytes=cache_stats.bytes,
        cache_hit_rate=cache_stats.hit_rate,
        cache_evictions=cache_stats.evictions,
    )


def _imbalance(loads: dict[str, int]) -> float:
    values = [value for value in loads.values()]
    if not values or sum(values) == 0:
        return 0.0
    mean = sum(values) / len(values)
    return max(values) / mean
