"""Snapshot comparison by walking the shared segment trees.

Because unmodified subtrees are physically shared between snapshot versions
(same node identity: version, offset, size), two snapshots can be compared
without touching the shared parts at all: the walk only descends where the
two trees reference *different* node versions.  This gives a page-granular
diff in time proportional to the amount of change plus the tree depth — the
same property that makes BlobSeer's versioning cheap makes diffing cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cluster import Cluster
from ..errors import VersionNotPublishedError
from ..metadata.geometry import pages_for_size, span_for_pages
from ..metadata.node import InnerNode, LeafNode, NodeKey, PageDescriptor
from ..metadata.read_plan import drive_plan, read_plan
from ..version.records import resolve_owner


@dataclass(frozen=True)
class ChangedRange:
    """A maximal run of consecutive pages that differ between two snapshots.

    ``kind`` is ``"modified"`` when both snapshots have the pages but with
    different contents (different page ids), ``"added"`` when only the newer
    snapshot has them, and ``"removed"`` when only the older one does.
    """

    page_offset: int
    page_count: int
    kind: str

    def byte_range(self, page_size: int) -> tuple[int, int]:
        return self.page_offset * page_size, self.page_count * page_size


def version_manifest(
    cluster: Cluster, blob_id: str, version: int
) -> list[PageDescriptor]:
    """Return the page descriptors of every page of one published snapshot.

    This is the flat "page table" view of a snapshot, obtained by traversing
    its segment tree; it is what the garbage collector and the diff tool
    build on.
    """
    vm = cluster.version_manager
    if not vm.is_published(blob_id, version):
        raise VersionNotPublishedError(blob_id, version)
    record = vm.get_record(blob_id)
    size = vm.get_size(blob_id, version)
    num_pages = pages_for_size(size, record.page_size)
    if num_pages == 0:
        return []
    span = span_for_pages(num_pages)

    def fetch_many(refs):
        return cluster.metadata_provider.get_nodes(
            [
                NodeKey(
                    resolve_owner(record, ref.version),
                    ref.version,
                    ref.offset,
                    ref.size,
                )
                for ref in refs
            ]
        )

    result = drive_plan(read_plan(version, span, 0, num_pages), fetch_many=fetch_many)
    return result.sorted_descriptors()


def diff_versions(
    cluster: Cluster, blob_id: str, old_version: int, new_version: int
) -> list[ChangedRange]:
    """Compare two published snapshots of a blob at page granularity.

    Physically shared subtrees (identical node identity in both trees) are
    skipped without being read.  Returns maximal changed runs ordered by
    page offset.
    """
    vm = cluster.version_manager
    record = vm.get_record(blob_id)
    page_size = record.page_size
    for version in (old_version, new_version):
        if not vm.is_published(blob_id, version):
            raise VersionNotPublishedError(blob_id, version)

    old_pages = pages_for_size(vm.get_size(blob_id, old_version), page_size)
    new_pages = pages_for_size(vm.get_size(blob_id, new_version), page_size)

    changed_pages: set[int] = set()

    def fetch(version: int, offset: int, size: int):
        owner = resolve_owner(record, version)
        return cluster.metadata_provider.get_node(
            NodeKey(owner, version, offset, size)
        )

    def walk(old_ref, new_ref, offset: int, size: int) -> None:
        """Descend both trees in lock step under the node range (offset, size).

        ``old_ref`` / ``new_ref`` are (version) ids of the node covering the
        range in each snapshot, or None when that snapshot has no node there.
        """
        if old_ref == new_ref:
            return  # physically shared subtree: nothing can differ
        old_in_range = old_ref is not None and offset < old_pages
        new_in_range = new_ref is not None and offset < new_pages
        if not old_in_range and not new_in_range:
            return
        if size == 1:
            if not old_in_range or not new_in_range:
                changed_pages.add(offset)
            else:
                old_leaf = fetch(old_ref, offset, size)
                new_leaf = fetch(new_ref, offset, size)
                if (
                    not isinstance(old_leaf, LeafNode)
                    or not isinstance(new_leaf, LeafNode)
                    or old_leaf.page_id != new_leaf.page_id
                ):
                    changed_pages.add(offset)
            return
        half = size // 2
        old_node = fetch(old_ref, offset, size) if old_in_range else None
        new_node = fetch(new_ref, offset, size) if new_in_range else None
        old_left = old_node.left_version if isinstance(old_node, InnerNode) else None
        old_right = old_node.right_version if isinstance(old_node, InnerNode) else None
        new_left = new_node.left_version if isinstance(new_node, InnerNode) else None
        new_right = new_node.right_version if isinstance(new_node, InnerNode) else None
        walk(old_left, new_left, offset, half)
        walk(old_right, new_right, offset + half, half)

    def covering_node_version(version: int, version_pages: int, size: int):
        """Version id of the node covering (0, size) inside a snapshot's tree.

        The snapshot's own span is at least ``size``; the covering node is
        reached by descending the left spine from the snapshot's root.
        """
        current_version = version
        current_size = span_for_pages(version_pages)
        while current_size > size:
            node = fetch(current_version, 0, current_size)
            if not isinstance(node, InnerNode) or node.left_version is None:
                return None
            current_version = node.left_version
            current_size //= 2
        return current_version

    # Only the pages present in *both* snapshots can be "modified"; everything
    # beyond the smaller snapshot is an addition (or removal) by definition.
    common_pages = min(old_pages, new_pages)
    if common_pages > 0:
        compare_span = span_for_pages(common_pages)
        old_root = covering_node_version(old_version, old_pages, compare_span)
        new_root = covering_node_version(new_version, new_pages, compare_span)
        walk(old_root, new_root, 0, compare_span)

    low, high = sorted((old_pages, new_pages))
    changed_pages.update(range(low, high))

    return _runs(changed_pages, old_pages, new_pages)


def _runs(pages: set[int], old_pages: int, new_pages: int) -> list[ChangedRange]:
    """Coalesce a set of changed page indices into maximal same-kind runs."""

    def kind_of(page: int) -> str:
        if page >= old_pages:
            return "added"
        if page >= new_pages:
            return "removed"
        return "modified"

    runs: list[ChangedRange] = []
    start = None
    previous = None
    for page in sorted(pages):
        if start is None:
            start, previous = page, page
            continue
        if page == previous + 1 and kind_of(page) == kind_of(start):
            previous = page
            continue
        runs.append(ChangedRange(start, previous - start + 1, kind_of(start)))
        start, previous = page, page
    if start is not None:
        runs.append(ChangedRange(start, previous - start + 1, kind_of(start)))
    return runs
