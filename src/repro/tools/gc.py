"""Garbage collection of unreachable pages and metadata nodes.

BlobSeer never overwrites data, so dropping old snapshots is a *policy*
decision layered on top: once the application decides which snapshots it
still needs, every page and tree node reachable from none of them can be
reclaimed.  This module implements that mark-and-sweep:

* **mark** — walk the segment tree of every kept ``(blob, version)`` pair,
  collecting reachable page ids and metadata node keys;
* **sweep** — delete unreferenced pages from the data providers and
  unreferenced nodes from the metadata DHT.

The collector refuses to run while updates are in flight (their pages and
nodes are not yet reachable from any published version) and requires every
blob of the cluster to be listed in ``keep`` — branches share metadata and
pages with their ancestors, so collecting "just one blob" is never safe.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from ..core.cluster import Cluster
from ..errors import ConcurrencyError, ProviderUnavailableError, UnknownBlobError
from ..metadata.geometry import pages_for_size, span_for_pages
from ..metadata.node import InnerNode, LeafNode, NodeKey
from ..version.records import resolve_owner

logger = logging.getLogger("repro.tools.gc")


@dataclass(frozen=True)
class GarbageCollectionReport:
    """What a collection pass kept and what it reclaimed."""

    kept_versions: int
    reachable_pages: int
    reachable_nodes: int
    deleted_pages: int
    deleted_nodes: int
    reclaimed_bytes: int
    #: Providers whose sweep was skipped because they were dead (at the
    #: start of the pass or mid-sweep).  Their unreachable pages stay put;
    #: the pass is idempotent, so a later run reclaims them once the
    #: provider rejoins — one dead provider never aborts the whole sweep.
    skipped_providers: tuple[str, ...] = ()


def collect_garbage(
    cluster: Cluster,
    keep: Mapping[str, Iterable[int]],
    dry_run: bool = False,
) -> GarbageCollectionReport:
    """Reclaim everything not reachable from the kept snapshots.

    Parameters
    ----------
    cluster:
        The deployment to collect.
    keep:
        Maps every blob id of the cluster to the published versions of it
        that must remain readable.  Version 0 (the empty snapshot) needs no
        resources and may be omitted.  Unknown blob ids raise; blobs missing
        from the mapping raise too (see the module docstring).
    dry_run:
        When True, nothing is deleted; the report shows what would happen.
    """
    vm = cluster.version_manager
    known_blobs = set(vm.blob_ids())
    requested_blobs = set(keep)
    unknown = requested_blobs - known_blobs
    if unknown:
        raise UnknownBlobError(sorted(unknown)[0])
    missing = known_blobs - requested_blobs
    if missing:
        raise ConcurrencyError(
            "collect_garbage needs a keep-set entry for every blob "
            f"(missing: {sorted(missing)}); branches share storage with "
            "their ancestors"
        )
    for blob_id in known_blobs:
        if vm.inflight_count(blob_id) > 0:
            raise ConcurrencyError(
                f"blob {blob_id!r} has in-flight updates; run the collector "
                "only when the system is quiescent"
            )

    reachable_pages: dict[str, tuple[str, ...]] = {}   # page id -> replica ids
    reachable_nodes: set[str] = set()
    kept_versions = 0

    for blob_id, versions in keep.items():
        record = vm.get_record(blob_id)
        for version in sorted(set(versions)):
            if version == 0:
                continue
            vm.get_size(blob_id, version)  # raises if not published
            kept_versions += 1
            _mark_version(cluster, record, version, reachable_pages, reachable_nodes)

    logger.debug(
        "gc mark done: %d kept versions, %d reachable pages, %d reachable "
        "nodes%s",
        kept_versions,
        len(reachable_pages),
        len(reachable_nodes),
        " (dry run)" if dry_run else "",
    )
    deleted_pages = 0
    reclaimed_bytes = 0
    skipped_providers: list[str] = []
    for provider in cluster.provider_manager.providers():
        # A dead provider must not abort the sweep: the pages already
        # deleted from live providers are unreachable garbage either way,
        # and re-running the pass later (the sweep is idempotent) reclaims
        # whatever the dead provider still holds once it rejoins.
        if not provider.alive:
            skipped_providers.append(provider.provider_id)
            continue
        try:
            for page_id in provider.page_ids():
                if page_id in reachable_pages:
                    continue
                size = provider.page_size_of(page_id)
                if not dry_run:
                    provider.delete_page(page_id)
                    # The page cache never invalidates on its own (stored
                    # pages are immutable); GC — the one event that removes
                    # pages — must drop every cached sub-range of each page
                    # it deletes, exactly like the node-cache twin below.
                    cluster.discard_cached_page(page_id)
                deleted_pages += 1
                reclaimed_bytes += size
        except ProviderUnavailableError:
            # Died mid-sweep: keep what this pass already reclaimed and
            # move on to the next provider.
            skipped_providers.append(provider.provider_id)
            logger.debug(
                "gc sweep: provider %s died mid-sweep, skipping",
                provider.provider_id,
            )
            continue
    logger.debug(
        "gc page sweep done: %d pages (%d bytes) reclaimed, %d providers "
        "skipped",
        deleted_pages,
        reclaimed_bytes,
        len(skipped_providers),
    )

    deleted_nodes = 0
    for bucket_id in cluster.dht.bucket_ids():
        bucket = cluster.dht.bucket(bucket_id)
        for key in bucket.keys():
            if key in reachable_nodes:
                continue
            if not dry_run:
                bucket.delete(key)
                # The client cache never invalidates on its own (published
                # nodes are immutable), so GC — the one event that removes
                # nodes — must drop them from the shared cache and every
                # per-store override cache, or reads of collected versions
                # could be wrongly served from memory.
                cluster.discard_cached_node(NodeKey.from_string(key))
            deleted_nodes += 1
    logger.debug("gc node sweep done: %d metadata nodes reclaimed", deleted_nodes)

    return GarbageCollectionReport(
        kept_versions=kept_versions,
        reachable_pages=len(reachable_pages),
        reachable_nodes=len(reachable_nodes),
        deleted_pages=deleted_pages,
        deleted_nodes=deleted_nodes,
        reclaimed_bytes=reclaimed_bytes,
        skipped_providers=tuple(skipped_providers),
    )


def _mark_version(
    cluster: Cluster,
    record,
    version: int,
    reachable_pages: dict[str, tuple[str, ...]],
    reachable_nodes: set[str],
) -> None:
    """Mark every node and page reachable from one snapshot's tree."""
    vm = cluster.version_manager
    meta = cluster.metadata_provider
    page_size = record.page_size
    num_pages = pages_for_size(vm.get_size(record.blob_id, version), page_size)
    if num_pages == 0:
        return
    span = span_for_pages(num_pages)
    stack = [(version, 0, span)]
    while stack:
        node_version, offset, size = stack.pop()
        owner = resolve_owner(record, node_version)
        key = NodeKey(owner, node_version, offset, size)
        key_string = key.to_string()
        if key_string in reachable_nodes:
            continue  # shared subtree already marked through another version
        reachable_nodes.add(key_string)
        node = meta.get_node(key)
        if isinstance(node, LeafNode):
            # Record the FULL replica set: the sweep walks every provider
            # and reclaims by page id, so each replica of a swept page is
            # deleted wherever it lives.
            reachable_pages[node.page_id] = node.provider_ids
            continue
        if isinstance(node, InnerNode):
            half = size // 2
            if node.left_version is not None:
                stack.append((node.left_version, offset, half))
            if node.right_version is not None:
                stack.append((node.right_version, offset + half, half))
