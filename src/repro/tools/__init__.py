"""Operational tooling built on top of the core library.

* :mod:`repro.tools.diff` — compare two snapshots (of the same blob or of a
  blob and its branch) at page granularity by walking their segment trees,
  skipping physically shared subtrees.
* :mod:`repro.tools.gc` — reclaim pages and metadata nodes that are no
  longer reachable from any snapshot the caller wants to keep.
* :mod:`repro.tools.report` — cluster-wide storage and load reports.
"""

from .diff import ChangedRange, diff_versions, version_manifest
from .gc import GarbageCollectionReport, collect_garbage
from .report import ClusterReport, cluster_report

__all__ = [
    "ChangedRange",
    "diff_versions",
    "version_manifest",
    "GarbageCollectionReport",
    "collect_garbage",
    "ClusterReport",
    "cluster_report",
]
