"""BlobSeer reproduction: versioned large-object storage under heavy
concurrency (Nicolae, Antoniu, Bougé — EDBT/ICDT workshops 2009).

Quickstart::

    from repro import BlobStore, Cluster

    cluster = Cluster.in_memory(num_data_providers=8, page_size=4096)
    with BlobStore(cluster) as store:
        blob_id = store.create()
        v1 = store.append(blob_id, b"hello world")
        print(store.read(blob_id, v1, 0, 11))

Async quickstart — the same primitives as awaitables, sharing one event
loop instead of one thread per client::

    import asyncio
    from repro import AsyncBlobStore, Cluster

    async def main():
        cluster = Cluster.in_memory(num_data_providers=8, page_size=4096)
        async with AsyncBlobStore(cluster) as store:
            blob_id = await store.create()
            v1 = await store.append(blob_id, b"hello world")
            print(await store.read(blob_id, v1, 0, 11))

    asyncio.run(main())

Migration guide (asyncio-native core)
-------------------------------------

The client core is now asyncio-native: :class:`~repro.core.AsyncBlobStore`
is the implementation, and the familiar synchronous :class:`BlobStore` is a
thin loop-free bridge over it (see :mod:`repro.aio`).  What this means for
existing code:

* **Nothing breaks.**  Every ``BlobStore`` method keeps its exact
  signature, semantics, error behaviour and ``*_ex`` trip counters; no
  event loop is created and no thread is parked on the sync path.  The
  ``*_ex`` methods (``write_ex`` / ``append_ex`` / ``read_ex``) are the
  canonical operations; bare ``write`` / ``append`` / ``read`` remain
  supported convenience wrappers that discard the stats.
* **To go async**, replace ``BlobStore(cluster)`` with
  ``AsyncBlobStore(cluster)`` and ``await`` the same method names.  Use
  ``async with`` (or ``await store.aclose()``) for lifecycle; the sync
  class gained the matching ``with`` / ``close()`` support.  Both classes
  raise :class:`~repro.errors.StoreClosedError` after close.
* **Concurrency model**: ``asyncio.gather`` thousands of operations on one
  ``AsyncBlobStore`` — reads pipeline their metadata-tree descent across
  DHT buckets and writes overlap their metadata publish with the page
  stores, with zero per-operation threads.  The ``parallel_io`` thread
  pool remains a sync-``BlobStore``-only knob.
* **Deprecation**: ``BlobSeerConfig(replication=...)`` now emits a
  ``DeprecationWarning``; spell it ``metadata_replication=`` (and
  ``page_replication=`` for the data path).  The alias still resolves
  identically while it lasts.

Package layout:

* :mod:`repro.core` — client API (CREATE/WRITE/APPEND/READ/SYNC/BRANCH),
  async and sync, and in-process cluster wiring.
* :mod:`repro.aio` — the I/O runtime seam: one async code path, two
  execution modes (event loop vs suspension-free trampoline).
* :mod:`repro.cache` — the shared, sharded, LRU-bounded caches for
  immutable metadata tree nodes AND immutable page payloads that every
  client reads through (one common sharded-LRU core).
* :mod:`repro.metadata` — the distributed segment tree (the paper's core
  contribution).
* :mod:`repro.version` — version manager (total order, publication, SYNC).
* :mod:`repro.vm` — the version-manager *service* layer: group-commit
  ticketing, pipelined publication and client version leases.
* :mod:`repro.providers` — data providers and the provider manager.
* :mod:`repro.fault` — data-path fault tolerance: retry with backoff,
  provider failure detection, background replication repair (DESIGN.md).
* :mod:`repro.dht` — the custom DHT storing metadata.
* :mod:`repro.sim` — discrete-event simulator of the Grid'5000-like testbed
  used for the paper's throughput experiments.
* :mod:`repro.baselines` — centralized-metadata and full-copy baselines.
* :mod:`repro.bench` — harnesses regenerating the paper's figures.
* :mod:`repro.obs` — observability: span tracing, the process-wide metrics
  registry and its exporters (``python -m repro.obs dump``); opt-in via
  ``BlobSeerConfig(tracing=True)``, bit-identical no-op when off.
* :mod:`repro.analysis` — the repo's invariant analyzer: an AST lint pass
  (``python -m repro.analysis src benchmarks``, rules RPR001–RPR005) plus
  the runtime lock-order/lock-across-await sanitizer used by the test
  suite.  Contributors: run the lint pass before sending a change — CI's
  ``static-analysis`` job fails on any unsuppressed finding — and see
  DESIGN.md §12 for the rule ↔ invariant map and the suppression policy.

Logging: every module logs under the ``repro.*`` hierarchy; the package
root carries a :class:`logging.NullHandler`, so nothing is printed unless
the application configures handlers (e.g. ``logging.basicConfig``).
"""

import logging as _logging

from .cache import (
    CacheStats,
    NodeCache,
    PageCache,
    shared_node_cache,
    shared_page_cache,
)
from .config import BlobSeerConfig, SimConfig, GRID5000_PROFILE, KiB, MiB, GiB
from .core import AsyncBlobStore, Blob, BlobStore, Cluster
from .fault import (
    HealthStats,
    ProviderHealth,
    RepairReport,
    RepairService,
    RepairStats,
    RetryPolicy,
)
from .vm import LeaseCache, VersionManagerService, VMStats
from .errors import (
    BlobSeerError,
    ConfigurationError,
    InvalidRangeError,
    StoreClosedError,
    UnknownBlobError,
    UpdateAbortedError,
    VersionNotPublishedError,
)

__version__ = "1.0.0"

# The library never configures logging for the application: modules log
# under ``repro.*`` and the root of the hierarchy swallows records until
# the application attaches its own handlers.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "AsyncBlobStore",
    "Blob",
    "BlobStore",
    "CacheStats",
    "Cluster",
    "NodeCache",
    "PageCache",
    "shared_node_cache",
    "shared_page_cache",
    "BlobSeerConfig",
    "HealthStats",
    "ProviderHealth",
    "RepairReport",
    "RepairService",
    "RepairStats",
    "RetryPolicy",
    "LeaseCache",
    "VersionManagerService",
    "VMStats",
    "SimConfig",
    "GRID5000_PROFILE",
    "KiB",
    "MiB",
    "GiB",
    "BlobSeerError",
    "ConfigurationError",
    "InvalidRangeError",
    "StoreClosedError",
    "UnknownBlobError",
    "UpdateAbortedError",
    "VersionNotPublishedError",
    "__version__",
]
