"""BlobSeer reproduction: versioned large-object storage under heavy
concurrency (Nicolae, Antoniu, Bougé — EDBT/ICDT workshops 2009).

Quickstart::

    from repro import BlobStore, Cluster

    cluster = Cluster.in_memory(num_data_providers=8, page_size=4096)
    store = BlobStore(cluster)
    blob_id = store.create()
    v1 = store.append(blob_id, b"hello world")
    print(store.read(blob_id, v1, 0, 11))

Package layout:

* :mod:`repro.core` — client API (CREATE/WRITE/APPEND/READ/SYNC/BRANCH) and
  in-process cluster wiring.
* :mod:`repro.cache` — the shared, sharded, LRU-bounded caches for
  immutable metadata tree nodes AND immutable page payloads that every
  client reads through (one common sharded-LRU core).
* :mod:`repro.metadata` — the distributed segment tree (the paper's core
  contribution).
* :mod:`repro.version` — version manager (total order, publication, SYNC).
* :mod:`repro.vm` — the version-manager *service* layer: group-commit
  ticketing, pipelined publication and client version leases.
* :mod:`repro.providers` — data providers and the provider manager.
* :mod:`repro.fault` — data-path fault tolerance: retry with backoff,
  provider failure detection, background replication repair (DESIGN.md).
* :mod:`repro.dht` — the custom DHT storing metadata.
* :mod:`repro.sim` — discrete-event simulator of the Grid'5000-like testbed
  used for the paper's throughput experiments.
* :mod:`repro.baselines` — centralized-metadata and full-copy baselines.
* :mod:`repro.bench` — harnesses regenerating the paper's figures.
"""

from .cache import (
    CacheStats,
    NodeCache,
    PageCache,
    shared_node_cache,
    shared_page_cache,
)
from .config import BlobSeerConfig, SimConfig, GRID5000_PROFILE, KiB, MiB, GiB
from .core import Blob, BlobStore, Cluster
from .fault import ProviderHealth, RepairReport, RepairService, RetryPolicy
from .vm import LeaseCache, VersionManagerService, VMStats
from .errors import (
    BlobSeerError,
    ConfigurationError,
    InvalidRangeError,
    UnknownBlobError,
    UpdateAbortedError,
    VersionNotPublishedError,
)

__version__ = "1.0.0"

__all__ = [
    "Blob",
    "BlobStore",
    "CacheStats",
    "Cluster",
    "NodeCache",
    "PageCache",
    "shared_node_cache",
    "shared_page_cache",
    "BlobSeerConfig",
    "ProviderHealth",
    "RepairReport",
    "RepairService",
    "RetryPolicy",
    "LeaseCache",
    "VersionManagerService",
    "VMStats",
    "SimConfig",
    "GRID5000_PROFILE",
    "KiB",
    "MiB",
    "GiB",
    "BlobSeerError",
    "ConfigurationError",
    "InvalidRangeError",
    "UnknownBlobError",
    "UpdateAbortedError",
    "VersionNotPublishedError",
    "__version__",
]
