"""Deterministic retry with exponential backoff and jitter.

A :class:`RetryPolicy` wraps one I/O call (a provider batch, a DHT bucket
request) and re-issues it when it fails with a *transient* error — one whose
class opted into retryability via :class:`repro.errors.TransientError`.
Deterministic errors (bad ranges, missing pages, checksum mismatches) are
re-raised immediately: retrying them cannot succeed and only hides bugs.

The policy is deterministic by construction: the clock (``sleep``) and the
randomness source (``rng``) are injected, so tests drive it with a recording
fake and a seeded generator and never wall-sleep.  The default
``attempts=1`` means a single try and no sleeping at all — behaviour (and
timing) identical to a deployment without the fault-tolerance layer.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections.abc import Callable
from typing import TypeVar

from ..errors import ConfigurationError, is_retryable
from ..obs.trace import span

T = TypeVar("T")


class RetryPolicy:
    """Retry transient failures with capped exponential backoff.

    Parameters
    ----------
    attempts:
        Maximum number of tries (initial call + retries).  ``1`` disables
        retries.
    backoff_base / backoff_max:
        Retry *n* (1-based) sleeps ``min(backoff_base * 2**(n-1),
        backoff_max)`` seconds before jitter.
    jitter:
        Fraction (0..1) of each delay randomized away so concurrent clients
        do not retry in lockstep: the actual sleep is uniformly drawn from
        ``[delay * (1 - jitter), delay]``.
    sleep / rng:
        Injected clock and randomness (``rng`` is a :class:`random.Random`);
        tests pass fakes for determinism.
    """

    def __init__(
        self,
        attempts: int = 1,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        jitter: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ):
        if attempts < 1:
            raise ConfigurationError("retry attempts must be >= 1")
        if backoff_base < 0 or backoff_max < backoff_base:
            raise ConfigurationError(
                "retry backoff must satisfy 0 <= base <= max"
            )
        if not 0 <= jitter <= 1:
            raise ConfigurationError("retry jitter must be between 0 and 1")
        self.attempts = attempts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    @classmethod
    def from_config(
        cls,
        config,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> "RetryPolicy":
        """Build a policy from a :class:`repro.config.BlobSeerConfig`."""
        return cls(
            attempts=config.retry_attempts,
            backoff_base=config.retry_backoff_base,
            backoff_max=config.retry_backoff_max,
            jitter=config.retry_jitter,
            sleep=sleep,
            rng=rng,
        )

    @property
    def is_noop(self) -> bool:
        """True when the policy never retries (``attempts == 1``)."""
        return self.attempts == 1

    def delay(self, retry_index: int) -> float:
        """Jittered backoff before retry number *retry_index* (1-based)."""
        base = min(
            self.backoff_base * (2 ** (retry_index - 1)), self.backoff_max
        )
        if base <= 0:
            return 0.0
        if self.jitter:
            base *= 1 - self.jitter * self._rng.random()
        return base

    def run(
        self,
        call: Callable[[], T],
        on_failure: Callable[[Exception, int], None] | None = None,
    ) -> T:
        """Invoke *call*, retrying transient failures up to the budget.

        ``on_failure(error, attempt)`` is invoked for every failed attempt
        that will be retried (the hook feeds
        :class:`repro.fault.ProviderHealth`); the final failure — retryable
        or not — is re-raised to the caller unchanged.
        """
        attempt = 1
        while True:
            try:
                return call()
            except Exception as error:
                if not is_retryable(error) or attempt >= self.attempts:
                    raise
                if on_failure is not None:
                    on_failure(error, attempt)
                delay = self.delay(attempt)
                with span("retry.sleep", attempt=attempt, delay=delay):
                    self._sleep(delay)
                attempt += 1

    async def arun(
        self,
        call: Callable[[], T],
        on_failure: Callable[[Exception, int], None] | None = None,
        sleep: Callable[[float], "object"] | None = None,
    ) -> T:
        """Awaitable twin of :meth:`run` for event-loop callers.

        Identical budget, transient-error and ``on_failure`` semantics; the
        backoff awaits ``sleep`` (``asyncio.sleep`` by default) so a
        retrying operation parks on the loop instead of blocking the thread
        and every other in-flight operation with it.
        """
        attempt = 1
        while True:
            try:
                return call()
            except Exception as error:
                if not is_retryable(error) or attempt >= self.attempts:
                    raise
                if on_failure is not None:
                    on_failure(error, attempt)
                delay = self.delay(attempt)
                with span("retry.sleep", attempt=attempt, delay=delay):
                    if sleep is not None:
                        await sleep(delay)
                    else:
                        await asyncio.sleep(delay)
                attempt += 1
