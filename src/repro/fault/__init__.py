"""Data-path fault tolerance: retry, failure detection, background repair.

The paper defers volatility and failures to future work; this package holds
the fault-tolerance extensions the reproduction adds on the data leg
(documented in DESIGN.md), complementing the metadata leg's replicated DHT:

* :class:`RetryPolicy` — deterministic retry with exponential backoff and
  jitter, applied only to errors classified retryable
  (:func:`repro.errors.is_retryable`);
* :class:`ProviderHealth` — a consecutive-failure suspicion registry that
  steers page allocation away from providers that keep failing;
* :class:`RepairService` — a background scan that re-replicates pages that
  lost copies to provider churn, reporting a :class:`RepairReport`;
* :func:`rank_replicas` — the shared replica-routing score (locality
  first, suspects last) used by the DHT and data read paths.
"""

from .health import HealthStats, ProviderHealth
from .repair import RepairReport, RepairService, RepairStats
from .retry import RetryPolicy
from .routing import rank_replicas

__all__ = [
    "HealthStats",
    "ProviderHealth",
    "RepairReport",
    "RepairService",
    "RepairStats",
    "RetryPolicy",
    "rank_replicas",
]
