"""Cache-aware replica routing: rank a replica set before fetching.

Replicated reads used to start at replica 0 unconditionally, which hammers
primaries under cold concurrent load and walks straight into suspected
providers on failover.  :func:`rank_replicas` is the single ranking policy
shared by the metadata DHT (:meth:`repro.dht.DHT.multi_get`), the data-path
batched fetch (:meth:`repro.providers.ProviderManager.multi_fetch_into`),
and the simulator's client (which supplies the locality preference: the
replica co-located with the reading machine).  DESIGN.md §9 documents the
score.

The ranking is a *stable partition*, not a shuffle: preferred replicas
first, suspects last, and the original replica order breaks ties in both
groups.  With no preference and no suspects the input order is returned
unchanged, so an unreplicated (or signal-free) deployment behaves
bit-identically to the pre-routing system.
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Sequence

__all__ = ["rank_replicas"]


def rank_replicas(
    replicas: Sequence,
    prefer: Callable[[object], bool] | None = None,
    suspects: Collection | None = None,
) -> tuple:
    """Return *replicas* reordered by the routing score, as a tuple.

    ``prefer(replica)`` returning True marks a replica *local* (ranked
    first); membership in ``suspects`` marks it suspect (ranked last).  A
    replica that is both local and suspect ranks with the suspects — a
    flapping node is a bad first choice even when co-located.  Sorting is
    stable, so equal-scoring replicas keep their original relative order.
    """
    if not suspects and prefer is None:
        return tuple(replicas)
    suspect_set = suspects if suspects else ()

    def score(replica) -> int:
        if replica in suspect_set:
            return 1
        if prefer is not None and prefer(replica):
            return -1
        return 0

    return tuple(sorted(replicas, key=score))
