"""Background repair: re-replicate pages that lost copies to churn.

After a provider dies (or rejoins), pages whose replica set intersects the
casualty are *under-replicated*: still readable through the surviving
copies (degraded reads), but one failure closer to data loss.  The
:class:`RepairService` closes that gap in the background:

* **scan** — walk the segment tree of every published ``(blob, version)``
  snapshot (the same mark phase as :func:`repro.tools.gc.collect_garbage`),
  collecting each unique leaf once;
* **repair** — for every leaf with fewer than ``page_replication`` live
  copies, fetch the page from a surviving replica and store it onto
  healthy providers that do not hold it yet;
* **republish** — rewrite the leaf with the extended replica set.

Leaf rewrite is the one documented exception to node immutability: a
leaf's identity (key, page id, length) never changes, only its replica
locations, and a reader holding the stale leaf still succeeds — the old
replica set is a subset of the new one, so its live entries keep serving
and its dead entries fail over.  Nothing a reader can observe changes
mid-repair.  Because the scan starts from published versions only, pages
deleted by GC are unreachable by construction and can never be
resurrected; in-flight updates are invisible to the scan for the same
reason and need no quiescence.

Replicas on *dead* providers are kept in the leaf (the provider may rejoin
with its pages intact — reads simply fail over past it); repair counts
only live copies toward the target, so a rejoining holder temporarily
yields more copies than ``page_replication``, which is harmless.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import MetadataNotFoundError, ProviderUnavailableError
from ..metadata.geometry import pages_for_size, span_for_pages
from ..metadata.node import InnerNode, LeafNode, NodeKey
from ..version.records import resolve_owner

if TYPE_CHECKING:
    from ..core.cluster import Cluster

    from .health import ProviderHealth

logger = logging.getLogger("repro.fault.repair")


@dataclass(frozen=True)
class RepairStats:
    """Frozen lifetime counters of one :class:`RepairService`.

    Accumulated across every :meth:`RepairService.repair` pass; each
    field is the running sum of the corresponding
    :class:`RepairReport` field, plus the number of passes run.
    """

    #: Repair passes completed.
    passes: int = 0
    #: Unique pages scanned, summed over all passes.
    pages_scanned: int = 0
    #: Pages found already at target, summed over all passes.
    pages_healthy: int = 0
    #: Pages topped back up to target, summed over all passes.
    pages_re_replicated: int = 0
    #: New page copies written, summed over all passes.
    copies_created: int = 0
    #: Pages found with no live copy, summed over all passes.
    pages_unrecoverable: int = 0
    #: Pages left short of target, summed over all passes.
    pages_still_under_replicated: int = 0
    #: DHT leaves rewritten, summed over all passes.
    leaves_rewritten: int = 0


@dataclass(frozen=True)
class RepairReport:
    """What one repair pass scanned and what it fixed."""

    #: Unique pages reachable from published snapshots.
    pages_scanned: int
    #: Pages that already had ``page_replication`` live copies.
    pages_healthy: int
    #: Pages topped back up to the replication target this pass.
    pages_re_replicated: int
    #: New page copies written (>= ``pages_re_replicated``).
    copies_created: int
    #: Pages with NO live copy: nothing to repair from.  They become
    #: readable again only if a dead holder rejoins.
    pages_unrecoverable: int
    #: Pages left short of the target because the cluster has too few
    #: live providers outside the existing replica set.
    pages_still_under_replicated: int
    #: Leaves rewritten in the DHT with an extended replica set.
    leaves_rewritten: int

    @property
    def backlog(self) -> int:
        """Pages that still need repair attention after this pass."""
        return self.pages_unrecoverable + self.pages_still_under_replicated


class RepairService:
    """Scans published snapshots and restores page replication.

    Parameters
    ----------
    cluster:
        The deployment to repair.
    health:
        Optional :class:`~repro.fault.ProviderHealth` used to steer new
        copies away from suspect providers; defaults to the cluster's
        registry.
    """

    def __init__(self, cluster: "Cluster", health: "ProviderHealth | None" = None):
        self._cluster = cluster
        self._health = (
            health
            if health is not None
            else getattr(cluster, "provider_health", None)
        )
        self._stats = RepairStats()
        # A traced cluster surfaces this service's lifetime counters in
        # the process-wide metrics registry (DESIGN.md §11).
        metrics = getattr(cluster, "metrics", None)
        if metrics is not None:
            metrics.register_source(
                "repro.repair",
                self,
                lambda service: service.stats(),
                {"cluster": cluster.cache_namespace},
            )

    def stats(self) -> RepairStats:
        """Frozen lifetime counters accumulated over every repair pass."""
        return self._stats

    def repair(self, target: int | None = None) -> RepairReport:
        """Run one scan-and-repair pass; return what it did.

        ``target`` overrides the replication target (defaults to the
        cluster's ``page_replication``).  The pass is idempotent: a healthy
        cluster reports everything healthy and rewrites nothing.
        """
        cluster = self._cluster
        if target is None:
            target = cluster.config.page_replication
        leaves = self._collect_leaves()
        logger.debug(
            "repair pass: %d unique leaves reachable, target=%d",
            len(leaves),
            target,
        )

        pm = cluster.provider_manager
        meta = cluster.metadata_provider
        healthy = re_replicated = unrecoverable = 0
        still_under = copies_created = leaves_rewritten = 0

        for key, leaf in leaves:
            live_holders = self._live_holders(leaf)
            if not live_holders:
                unrecoverable += 1
                continue
            needed = target - len(live_holders)
            if needed <= 0:
                healthy += 1
                continue
            recruits = self._recruits(leaf, needed)
            if not recruits:
                still_under += 1
                continue
            payload = pm.provider(live_holders[0]).fetch_page(leaf.page_id)
            stored: list[str] = []
            for provider_id in recruits:
                try:
                    pm.provider(provider_id).store_page(leaf.page_id, payload)
                except ProviderUnavailableError:
                    # Died between selection and store: count the failure
                    # and carry on with the other recruits.
                    if self._health is not None:
                        self._health.record_failure(provider_id)
                    continue
                stored.append(provider_id)
            if not stored:
                still_under += 1
                continue
            new_leaf = LeafNode(
                page_id=leaf.page_id,
                provider_id=leaf.provider_ids[0],
                length=leaf.length,
                provider_ids=leaf.provider_ids + tuple(stored),
            )
            meta.put_node(key, new_leaf)
            # Readers caching the stale leaf stay correct (see module
            # docstring); dropping it just routes them to the new copies.
            cluster.discard_cached_node(key)
            logger.debug(
                "re-replicated page %s onto %s (now %d live copies)",
                leaf.page_id,
                stored,
                len(live_holders) + len(stored),
            )
            copies_created += len(stored)
            leaves_rewritten += 1
            if len(stored) >= needed:
                re_replicated += 1
            else:
                still_under += 1

        report = RepairReport(
            pages_scanned=len(leaves),
            pages_healthy=healthy,
            pages_re_replicated=re_replicated,
            copies_created=copies_created,
            pages_unrecoverable=unrecoverable,
            pages_still_under_replicated=still_under,
            leaves_rewritten=leaves_rewritten,
        )
        previous = self._stats
        self._stats = RepairStats(
            passes=previous.passes + 1,
            pages_scanned=previous.pages_scanned + report.pages_scanned,
            pages_healthy=previous.pages_healthy + report.pages_healthy,
            pages_re_replicated=(
                previous.pages_re_replicated + report.pages_re_replicated
            ),
            copies_created=previous.copies_created + report.copies_created,
            pages_unrecoverable=(
                previous.pages_unrecoverable + report.pages_unrecoverable
            ),
            pages_still_under_replicated=(
                previous.pages_still_under_replicated
                + report.pages_still_under_replicated
            ),
            leaves_rewritten=previous.leaves_rewritten + report.leaves_rewritten,
        )
        logger.debug(
            "repair pass done: %d healthy, %d re-replicated, %d copies "
            "created, backlog %d",
            healthy,
            re_replicated,
            copies_created,
            report.backlog,
        )
        return report

    def under_replicated(self, target: int | None = None) -> int:
        """Count pages short of the replication target (read-only scan).

        The churn ablation polls this as the "repair backlog"; it is the
        number of pages a :meth:`repair` pass would try to fix.
        """
        if target is None:
            target = self._cluster.config.page_replication
        return sum(
            1
            for _key, leaf in self._collect_leaves()
            if len(self._live_holders(leaf)) < target
        )

    # -- scan ----------------------------------------------------------------
    def _collect_leaves(self) -> list[tuple[NodeKey, LeafNode]]:
        """Every unique leaf reachable from a published snapshot."""
        cluster = self._cluster
        vm = cluster.version_manager
        meta = cluster.metadata_provider
        seen: set[str] = set()
        leaves: list[tuple[NodeKey, LeafNode]] = []
        for blob_id in vm.blob_ids():
            record = vm.get_record(blob_id)
            for version in range(1, vm.get_recent(blob_id) + 1):
                if not vm.is_published(blob_id, version):
                    continue  # aborted version: its pages are garbage
                num_pages = pages_for_size(
                    vm.get_size(blob_id, version), record.page_size
                )
                if num_pages == 0:
                    continue
                stack = [(version, 0, span_for_pages(num_pages))]
                while stack:
                    node_version, offset, size = stack.pop()
                    owner = resolve_owner(record, node_version)
                    key = NodeKey(owner, node_version, offset, size)
                    key_string = key.to_string()
                    if key_string in seen:
                        continue  # shared subtree already scanned
                    seen.add(key_string)
                    try:
                        node = meta.get_node(key)
                    except MetadataNotFoundError:
                        # The version stays "published" in the VM after GC
                        # collected its tree; a missing node (probed live on
                        # every replica) means exactly that — nothing left
                        # to repair under it.  A dead metadata bucket raises
                        # ProviderUnavailableError instead and still aborts
                        # the scan: the subtree may exist.
                        continue
                    if isinstance(node, LeafNode):
                        leaves.append((key, node))
                    elif isinstance(node, InnerNode):
                        half = size // 2
                        if node.left_version is not None:
                            stack.append((node.left_version, offset, half))
                        if node.right_version is not None:
                            stack.append(
                                (node.right_version, offset + half, half)
                            )
        return leaves

    # -- per-leaf helpers ----------------------------------------------------
    def _live_holders(self, leaf: LeafNode) -> list[str]:
        """Replicas that are alive AND still hold the page."""
        pm = self._cluster.provider_manager
        holders: list[str] = []
        for provider_id in leaf.provider_ids:
            try:
                provider = pm.provider(provider_id)
            except KeyError:
                continue  # deregistered and forgotten
            if provider.alive and provider.has_page(leaf.page_id):
                holders.append(provider_id)
        return holders

    def _recruits(self, leaf: LeafNode, needed: int) -> list[str]:
        """Pick up to *needed* live providers outside the replica set,
        least-loaded first, steering around health suspects."""
        pm = self._cluster.provider_manager
        current = set(leaf.provider_ids)
        allocatable = set(pm.allocatable_ids())
        candidates = [
            provider.provider_id
            for provider in pm.providers()
            if provider.alive
            and provider.provider_id not in current
            and provider.provider_id in allocatable
        ]
        if self._health is not None:
            candidates = self._health.prefer_healthy(candidates)
        candidates.sort(
            key=lambda pid: (pm.provider(pid).bytes_used(), pid)
        )
        return candidates[:needed]
