"""Failure detection: a consecutive-failure suspicion registry.

:class:`ProviderHealth` is the client-side answer to "which providers should
I stop trusting?": every failed provider call records a failure, every
successful one clears the count, and a provider whose *consecutive* failures
reach ``suspect_after`` becomes **suspect**.  Allocation steers new pages
away from suspects (:meth:`prefer_healthy`) so fresh writes do not pile onto
a flapping node, while reads still try suspects last-resort — suspicion is a
hint, never a verdict.

Suspicion clears on the first successful call, or explicitly through a
revival probe (:meth:`probe`, invoked by
:meth:`repro.core.cluster.Cluster.revive_data_provider`).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class HealthStats:
    """Frozen snapshot of a :class:`ProviderHealth` registry.

    ``failures_recorded``/``successes_recorded`` are lifetime counters;
    ``suspected`` counts every *transition* into suspicion (a provider
    flapping in and out is counted each time it crosses the threshold).
    ``tracked``/``suspects`` describe the registry right now.
    """

    #: Lifetime failed calls recorded against any provider.
    failures_recorded: int = 0
    #: Lifetime successful calls recorded for any provider.
    successes_recorded: int = 0
    #: Lifetime transitions of some provider INTO suspect state.
    suspected: int = 0
    #: Providers currently carrying at least one consecutive failure.
    tracked: int = 0
    #: Providers currently at or past the suspicion threshold.
    suspects: int = 0


class ProviderHealth:
    """Tracks consecutive per-provider failures and flags suspects."""

    def __init__(self, suspect_after: int = 3):
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        self.suspect_after = suspect_after
        self._failures: dict[str, int] = {}
        self._lock = threading.Lock()
        self._failures_recorded = 0
        self._successes_recorded = 0
        self._suspected = 0

    def record_failure(self, provider_id: str) -> bool:
        """Record one failed call; return True when the provider is now
        suspect."""
        with self._lock:
            count = self._failures.get(provider_id, 0) + 1
            self._failures[provider_id] = count
            self._failures_recorded += 1
            if count == self.suspect_after:
                self._suspected += 1
            return count >= self.suspect_after

    def record_success(self, provider_id: str) -> None:
        """Record one successful call, clearing any suspicion."""
        with self._lock:
            self._successes_recorded += 1
            self._failures.pop(provider_id, None)

    def consecutive_failures(self, provider_id: str) -> int:
        with self._lock:
            return self._failures.get(provider_id, 0)

    def is_suspect(self, provider_id: str) -> bool:
        with self._lock:
            return self._failures.get(provider_id, 0) >= self.suspect_after

    def suspects(self) -> frozenset[str]:
        with self._lock:
            return frozenset(
                pid
                for pid, count in self._failures.items()
                if count >= self.suspect_after
            )

    def stats(self) -> HealthStats:
        """Frozen :class:`HealthStats` snapshot (lifetime + current)."""
        with self._lock:
            return HealthStats(
                failures_recorded=self._failures_recorded,
                successes_recorded=self._successes_recorded,
                suspected=self._suspected,
                tracked=len(self._failures),
                suspects=sum(
                    1
                    for count in self._failures.values()
                    if count >= self.suspect_after
                ),
            )

    def prefer_healthy(self, provider_ids: Sequence[str]) -> list[str]:
        """Filter suspects out of a candidate list — unless that would empty
        it, in which case the original order is returned: a suspect provider
        is still better than failing the operation outright."""
        suspects = self.suspects()
        if not suspects:
            return list(provider_ids)
        healthy = [pid for pid in provider_ids if pid not in suspects]
        return healthy if healthy else list(provider_ids)

    def probe(self, providers: Iterable) -> list[str]:
        """Revival probe: ask each provider whether it is alive and clear
        (or deepen) suspicion accordingly; return the ids found alive.

        ``providers`` yields objects with ``provider_id`` and ``alive``
        attributes (:class:`repro.providers.data_provider.DataProvider`).
        """
        revived: list[str] = []
        for provider in providers:
            if provider.alive:
                self.record_success(provider.provider_id)
                revived.append(provider.provider_id)
            else:
                self.record_failure(provider.provider_id)
        return revived
