"""Command-line entry point for the benchmark harness.

Examples::

    blobseer-bench fig2a                 # scaled-down Figure 2(a)
    blobseer-bench fig2b --scale paper   # full 173-provider Figure 2(b)
    blobseer-bench all --scale small     # every experiment, CI-sized
    python -m repro.bench fig2a          # equivalent module form
"""

from __future__ import annotations

import argparse
import sys
import time

from .ablations import (
    run_ablation_allocation,
    run_ablation_cache,
    run_ablation_churn,
    run_ablation_concurrent_writers,
    run_ablation_dht_placement,
    run_ablation_metadata,
    run_ablation_mixed_workload,
    run_ablation_page_cache,
    run_ablation_page_size,
    run_ablation_storage_space,
    run_ablation_vm,
)
from .fig2a import run_fig2a
from .fig2b import run_fig2b
from .runner import SCALES

_EXPERIMENTS = {
    "fig2a": run_fig2a,
    "fig2b": run_fig2b,
    "ablation-cache": run_ablation_cache,
    "ablation-churn": run_ablation_churn,
    "ablation-metadata": run_ablation_metadata,
    "ablation-space": run_ablation_storage_space,
    "ablation-writers": run_ablation_concurrent_writers,
    "ablation-pagecache": run_ablation_page_cache,
    "ablation-pagesize": run_ablation_page_size,
    "ablation-allocation": run_ablation_allocation,
    "ablation-dht": run_ablation_dht_placement,
    "ablation-mixed": run_ablation_mixed_workload,
    "ablation-vm": run_ablation_vm,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blobseer-bench",
        description="Regenerate the figures and ablations of the BlobSeer paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="experiment scale: small (seconds), default, or paper (minutes)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        result = _EXPERIMENTS[name](scale=args.scale)
        elapsed = time.perf_counter() - started
        print(result.format())
        print(f"(ran in {elapsed:.1f}s at scale={args.scale})")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
