"""Command-line entry point for the benchmark harness.

Examples::

    blobseer-bench fig2a                 # scaled-down Figure 2(a)
    blobseer-bench fig2b --scale paper   # full 173-provider Figure 2(b)
    blobseer-bench all --scale small     # every experiment, CI-sized
    python -m repro.bench fig2a          # equivalent module form
    python -m repro.bench fig2b --baseline BENCH_pr5.json
                                         # + delta table vs that snapshot
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .ablations import (
    run_ablation_allocation,
    run_ablation_cache,
    run_ablation_churn,
    run_ablation_coldpath,
    run_ablation_concurrent_writers,
    run_ablation_dht_placement,
    run_ablation_metadata,
    run_ablation_mixed_workload,
    run_ablation_page_cache,
    run_ablation_page_size,
    run_ablation_storage_space,
    run_ablation_vm,
)
from .fig2a import run_fig2a
from .fig2b import run_fig2b
from .runner import SCALES

_EXPERIMENTS = {
    "fig2a": run_fig2a,
    "fig2b": run_fig2b,
    "ablation-cache": run_ablation_cache,
    "ablation-churn": run_ablation_churn,
    "ablation-coldpath": run_ablation_coldpath,
    "ablation-metadata": run_ablation_metadata,
    "ablation-space": run_ablation_storage_space,
    "ablation-writers": run_ablation_concurrent_writers,
    "ablation-pagecache": run_ablation_page_cache,
    "ablation-pagesize": run_ablation_page_size,
    "ablation-allocation": run_ablation_allocation,
    "ablation-dht": run_ablation_dht_placement,
    "ablation-mixed": run_ablation_mixed_workload,
    "ablation-vm": run_ablation_vm,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blobseer-bench",
        description="Regenerate the figures and ablations of the BlobSeer paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="experiment scale: small (seconds), default, or paper (minutes)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="BENCH_JSON",
        help="a committed BENCH_prN.json snapshot; after each experiment "
        "that the snapshot covers, print a per-row delta table (baseline "
        "-> current, percent change) against its rows at --scale",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="after the experiments, run a traced single-reader pass "
        "(tracing=True) and print a per-leg latency breakdown for a cold "
        "and a warm read — wall clock against an in-memory cluster, then "
        "virtual clock against the simulated testbed",
    )
    return parser


#: Keys identifying a row within one experiment's baseline rows.
_BASELINE_MATCH_KEYS = {
    "fig2a": ("series", "pages_total"),
    "fig2b": ("readers",),
}


def _baseline_rows(path: Path, name: str, scale: str) -> list[dict] | None:
    """Rows of a ``BENCH_prN.json`` snapshot for one experiment and scale.

    Returns None (not an error) when the snapshot simply does not cover the
    experiment or scale — the snapshots only record the figure tables.
    """
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read baseline {path}: {error}") from error
    section = document.get("scales", {}).get(scale, {}).get(f"{name}_rows")
    if section is None:
        return None
    if isinstance(section, dict):
        # Snapshots keep a before/after pair; "after" is the state that PR
        # shipped, i.e. the baseline every later run compares against.
        return section.get("after", section.get("before", []))
    return section


def format_delta(then: float, value: float) -> str:
    """Percent change of ``then -> value``, safe at a zero baseline.

    A zero baseline cannot anchor a percentage: those cells read ``new``
    when the metric appeared and ``+0.0%`` when both sides are zero —
    never ``inf``, ``nan`` or a ZeroDivisionError.
    """
    if then:
        return f"{(float(value) / float(then) - 1.0) * 100:+.1f}%"
    return "new" if value else "+0.0%"


def _print_deltas(name: str, rows: list[dict], baseline: list[dict]) -> None:
    """Print the per-row, per-metric delta table against a baseline."""
    match_keys = _BASELINE_MATCH_KEYS.get(name, ())
    if not match_keys:
        return
    by_key = {
        tuple(row.get(key) for key in match_keys): row for row in baseline
    }
    for row in rows:
        key = tuple(row.get(k) for k in match_keys)
        base = by_key.get(key)
        if base is None:
            continue
        label = ", ".join(f"{k}={v}" for k, v in zip(match_keys, key))
        print(f"  [{label}]")
        for metric, value in row.items():
            if metric in match_keys or not isinstance(value, (int, float)):
                continue
            then = base.get(metric)
            if not isinstance(then, (int, float)):
                continue
            delta = format_delta(then, value)
            print(f"    {metric:<28} {then:>12.4f} -> {value:>12.4f}  {delta}")


#: Blob size (in pages) for the traced single-reader pass, by scale.
_TRACE_PAGES = {"small": 8, "default": 32, "paper": 128}


def _leg_table(rows: list[tuple[str, dict[str, float], dict[str, int]]]) -> str:
    """Format cold/warm rows of per-leg durations (already in ms)."""
    legs = sorted({leg for _label, durations, _counts in rows for leg in durations})
    header = "  row  " + "".join(f"{leg + '_ms':>16}" for leg in legs)
    lines = [header]
    for label, durations, counts in rows:
        cells = "".join(f"{durations.get(leg, 0.0):>16.3f}" for leg in legs)
        spans = ", ".join(
            f"{name} x{count}" for name, count in sorted(counts.items())
        )
        lines.append(f"  {label:<5}{cells}    [{spans}]")
    return "\n".join(lines)


def _trace_legs(tracer, unit_scale: float) -> tuple[dict[str, float], dict[str, int]]:
    """Per-leg durations and span counts of the LAST trace in the buffer.

    Direct children of the root span are the legs; their durations are
    summed per name (a read with several metadata levels has several
    ``meta.fetch`` spans) and the root's own duration appears as
    ``total``.  ``unit_scale`` converts the tracer's clock units to ms.
    """
    roots = [item for item in tracer.spans() if item.parent_id is None]
    root = roots[-1]
    members = [item for item in tracer.spans() if item.trace_id == root.trace_id]
    durations = {"total": root.duration * unit_scale}
    counts: dict[str, int] = {}
    for item in members:
        if item.parent_id == root.span_id:
            key = item.name.rsplit(".", 1)[1] if "." in item.name else item.name
            durations[key] = durations.get(key, 0.0) + item.duration * unit_scale
        if item is not root:
            counts[item.name] = counts.get(item.name, 0) + 1
    return durations, counts


def _print_trace_breakdown(scale: str) -> None:
    """Run one traced reader cold and warm and print the leg breakdown.

    Two passes: wall clock against a real in-memory cluster (the spans
    the async core emits through the ``contextvars`` helper), then
    virtual clock against the simulated testbed (the retroactive spans
    the sim client records from ``simulator.now``).
    """
    from ..config import KiB
    from ..core.blob_store import BlobStore
    from ..core.cluster import Cluster
    from ..obs import Tracer
    from ..sim.client import SimClient
    from ..sim.deployment import SimDeployment

    pages = _TRACE_PAGES.get(scale, _TRACE_PAGES["small"])
    page_size = 4 * KiB
    nbytes = pages * page_size

    cluster = Cluster.in_memory(
        num_data_providers=8,
        num_metadata_providers=8,
        page_size=page_size,
        tracing=True,
    )
    rows = []
    with BlobStore(cluster) as store:
        blob_id = store.create()
        version = store.append(blob_id, b"\xa5" * nbytes)
        for label in ("cold", "warm"):
            cluster.tracer.clear()
            store.read(blob_id, version, 0, nbytes)
            rows.append((label, *_trace_legs(cluster.tracer, 1000.0)))
    print(f"traced read breakdown, wall clock ({pages} pages, in-memory):")
    print(_leg_table(rows))

    deployment = SimDeployment(num_provider_nodes=8, page_size=page_size)
    deployment.tracer = Tracer(clock=lambda: deployment.simulator.now)
    blob_id = deployment.create_blob()
    sim_version = deployment.populate_blob(blob_id, nbytes)
    rows = []
    for label in ("cold", "warm"):
        deployment.tracer.clear()
        deployment.simulator.run_process(
            SimClient(deployment, 0).read_process(blob_id, sim_version, 0, nbytes)
        )
        rows.append((label, *_trace_legs(deployment.tracer, 1000.0)))
    print(f"traced read breakdown, sim virtual clock ({pages} pages):")
    print(_leg_table(rows))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        result = _EXPERIMENTS[name](scale=args.scale)
        elapsed = time.perf_counter() - started
        print(result.format())
        print(f"(ran in {elapsed:.1f}s at scale={args.scale})")
        if args.baseline is not None:
            baseline = _baseline_rows(args.baseline, name, args.scale)
            if baseline is None:
                print(
                    f"(baseline {args.baseline} has no {name} rows at "
                    f"scale={args.scale} — no delta table)"
                )
            else:
                print(f"deltas vs {args.baseline} ({args.scale}):")
                _print_deltas(name, result.rows, baseline)
        print()
    if args.trace:
        _print_trace_breakdown(args.scale)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
