"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's two figures and quantify the arguments made in
its text:

* ABL-meta    — distributed segment-tree metadata vs. a centralized metadata
                server (read scalability and metadata write work).
* ABL-space   — page sharing across versions vs. full-copy versioning
                (storage footprint; contents are cross-checked for equality).
* ABL-writers — aggregate throughput with concurrent appenders (the "no
                synchronization between writers" claim).
* ABL-psize   — page-size sweep (the access-granularity/overhead trade-off).
* ABL-alloc   — page-to-provider allocation strategies (the provider
                manager's "even distribution of pages" goal, Section 3.1).
* ABL-dht     — metadata key placement (static modulo vs. consistent
                hashing) and the resulting load spread over DHT buckets.
* ABL-cache   — the shared metadata node cache: warm-read hit rates, DHT
                traffic saved, and LRU entry/byte budget enforcement.
* ABL-vm      — the version-manager service: per-read VM round trips with
                and without client leases, and the group-commit window's
                requests-vs-batches amortization under concurrent writers.
* ABL-pagecache — the shared page payload cache: provider traffic saved on
                warm repeated reads, hit rates, and byte-budget enforcement
                under eviction pressure.
* ABL-churn   — data-path fault tolerance under provider churn: availability
                of published reads while a data provider is down (failed vs
                degraded reads, replica failovers), and how fast background
                repair drains the under-replication backlog.
* ABL-coldpath — the cold-read optimizations of DESIGN.md §9 one at a time
                (speculative frontier prefetch, cache-aware replica routing,
                cooperative peer caching): each piece alone must not regress
                the cold baseline, and a hot-page scenario shows peer caches
                diffusing a flash crowd off the page's home provider.
"""

from __future__ import annotations

import random
import threading
import time

from ..baselines.centralized import (
    CentralizedMetadataServer,
    run_centralized_read_experiment,
)
from ..baselines.fullcopy import FullCopyVersionedStore
from ..cache import NodeCache, PageCache
from ..config import BlobSeerConfig, KiB, MiB
from ..core.blob_store import BlobStore
from ..core.cluster import Cluster
from ..errors import ProviderUnavailableError
from ..fault import RepairService
from ..metadata.node import PageDescriptor
from ..sim.client import SimClient
from ..sim.deployment import SimDeployment
from ..sim.experiments import (
    run_append_growth_experiment,
    run_mixed_workload_experiment,
    run_read_concurrency_experiment,
)
from ..version.version_manager import VersionManager
from ..vm import LeaseCache
from .runner import ExperimentResult, check_scale


# --------------------------------------------------------------------- ABL-meta
_META_PRESETS = {
    "small": (24, 64 * KiB, 256 * MiB, 8 * MiB, (1, 12, 24)),
    "default": (60, 64 * KiB, 1024 * MiB, 16 * MiB, (1, 30, 60)),
    "paper": (173, 64 * KiB, 12 * 1024 * MiB, 64 * MiB, (1, 100, 175)),
}


def run_ablation_metadata(scale: str = "small") -> ExperimentResult:
    """Distributed segment tree (DHT) vs. centralized metadata server."""
    check_scale(scale)
    providers, page_size, blob_bytes, chunk_bytes, reader_counts = _META_PRESETS[scale]
    result = ExperimentResult(
        "ABL-meta",
        "Metadata scheme: distributed segment tree (DHT) vs. centralized server",
    )

    distributed = run_read_concurrency_experiment(
        num_provider_nodes=providers,
        page_size=page_size,
        blob_bytes=blob_bytes,
        chunk_bytes=chunk_bytes,
        reader_counts=list(reader_counts),
    )
    centralized = run_centralized_read_experiment(
        num_provider_nodes=providers,
        page_size=page_size,
        blob_bytes=blob_bytes,
        chunk_bytes=chunk_bytes,
        reader_counts=list(reader_counts),
    )
    for dist, cent in zip(distributed, centralized):
        result.add(
            readers=dist.readers,
            blobseer_avg_mbps=dist.avg_bandwidth_mbps,
            centralized_avg_mbps=cent.avg_bandwidth_mbps,
            blobseer_retention=(
                dist.avg_bandwidth_mbps / distributed[0].avg_bandwidth_mbps
            ),
            centralized_retention=(
                cent.avg_bandwidth_mbps / centralized[0].avg_bandwidth_mbps
            ),
        )

    # Metadata write work per update: BlobSeer touches O(update + log blob),
    # a flat centralized table re-serializes O(blob).
    pages_total = blob_bytes // page_size
    update_pages = chunk_bytes // page_size
    server = CentralizedMetadataServer(page_size)
    server.create_blob("blob")
    server.publish_update(
        "blob",
        [
            PageDescriptor(i, f"page-{i}", f"data-{i % providers:04d}", page_size)
            for i in range(pages_total)
        ],
        blob_bytes,
    )
    before = server.descriptor_writes
    server.publish_update(
        "blob",
        [
            PageDescriptor(i, f"page-x{i}", f"data-{i % providers:04d}", page_size)
            for i in range(update_pages)
        ],
        blob_bytes,
    )
    centralized_write_work = server.descriptor_writes - before

    deployment = SimDeployment(num_provider_nodes=providers, page_size=page_size)
    blob_id = deployment.create_blob()
    deployment.populate_blob(blob_id, blob_bytes, append_bytes=chunk_bytes)
    outcome = deployment.simulator.run_process(
        SimClient(deployment, 0).append_process(blob_id, chunk_bytes)
    )
    result.note(
        f"metadata write work for one {update_pages}-page update on a "
        f"{pages_total}-page blob: "
        f"BlobSeer {outcome.metadata_nodes_written} tree nodes, "
        f"centralized flat table {centralized_write_work} descriptors"
    )
    return result


# -------------------------------------------------------------------- ABL-space
_SPACE_PRESETS = {
    "small": (64 * KiB, 4 * KiB, 12, 0.125),
    "default": (512 * KiB, 16 * KiB, 24, 0.125),
    "paper": (4 * MiB, 64 * KiB, 32, 0.125),
}


def run_ablation_storage_space(scale: str = "small") -> ExperimentResult:
    """Storage footprint of page-sharing versioning vs. full-copy versioning.

    Both systems receive the same workload: an initial blob followed by a
    series of partial overwrites, each touching ``overwrite_fraction`` of the
    blob at a random aligned offset.  Contents are cross-checked after every
    version so the space comparison is between *equivalent* systems.
    """
    check_scale(scale)
    blob_bytes, page_size, versions, overwrite_fraction = _SPACE_PRESETS[scale]
    rng = random.Random(2009)
    result = ExperimentResult(
        "ABL-space",
        "Bytes stored vs. number of versions: page sharing vs. full copy",
    )

    cluster = Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=page_size
    )
    store = BlobStore(cluster)
    blob_id = store.create()
    baseline = FullCopyVersionedStore()

    initial = bytes(rng.getrandbits(8) for _ in range(blob_bytes))
    store.append(blob_id, initial)
    baseline.append(initial)

    overwrite_bytes = max(page_size, int(blob_bytes * overwrite_fraction))
    overwrite_bytes = (overwrite_bytes // page_size) * page_size
    for version in range(1, versions + 1):
        result.add(
            version=version,
            blobseer_bytes=cluster.storage_bytes_used(),
            fullcopy_bytes=baseline.bytes_stored(),
            ratio=baseline.bytes_stored() / max(cluster.storage_bytes_used(), 1),
        )
        max_offset_pages = (blob_bytes - overwrite_bytes) // page_size
        offset = rng.randint(0, max_offset_pages) * page_size
        payload = bytes(rng.getrandbits(8) for _ in range(overwrite_bytes))
        v_new = store.write(blob_id, payload, offset)
        store.sync(blob_id, v_new)
        v_base = baseline.write(payload, offset)
        if store.read(blob_id, v_new, 0, blob_bytes) != baseline.read(
            v_base, 0, blob_bytes
        ):
            raise AssertionError("BlobSeer and full-copy contents diverged")
    result.add(
        version=versions + 1,
        blobseer_bytes=cluster.storage_bytes_used(),
        fullcopy_bytes=baseline.bytes_stored(),
        ratio=baseline.bytes_stored() / max(cluster.storage_bytes_used(), 1),
    )
    result.note(
        "BlobSeer stores only newly written pages per version; the full-copy "
        "baseline stores the whole blob per version (contents verified equal)"
    )
    return result


# ------------------------------------------------------------------ ABL-writers
_WRITER_PRESETS = {
    "small": (24, 64 * KiB, 2 * MiB, 3, (1, 4, 12)),
    "default": (60, 64 * KiB, 8 * MiB, 4, (1, 8, 32)),
    "paper": (173, 64 * KiB, 64 * MiB, 4, (1, 32, 128)),
}


def run_ablation_concurrent_writers(scale: str = "small") -> ExperimentResult:
    """Aggregate append throughput with concurrent writers.

    The paper argues WRITEs/APPENDs proceed in parallel with no
    synchronization other than version assignment; aggregate throughput
    should therefore scale with the number of concurrent appenders until the
    providers' NICs saturate.
    """
    check_scale(scale)
    providers, page_size, append_bytes, appends_each, writer_counts = _WRITER_PRESETS[
        scale
    ]
    result = ExperimentResult(
        "ABL-writers",
        "Aggregate append throughput vs. number of concurrent appenders",
    )
    for writers in writer_counts:
        deployment = SimDeployment(
            num_provider_nodes=providers, page_size=page_size
        )
        blob_id = deployment.create_blob()
        simulator = deployment.simulator

        def writer(index: int):
            client = SimClient(deployment, index)
            outcomes = []
            for _ in range(appends_each):
                outcome = yield from client.append_process(blob_id, append_bytes)
                outcomes.append(outcome)
            return outcomes

        processes = [simulator.process(writer(index)) for index in range(writers)]
        simulator.run()
        makespan = simulator.now
        total_bytes = writers * appends_each * append_bytes
        per_writer = [
            sum(outcome.bandwidth for outcome in process.event.value)
            / len(process.event.value)
            / MiB
            for process in processes
        ]
        result.add(
            writers=writers,
            aggregate_mbps=total_bytes / makespan / MiB,
            avg_writer_mbps=sum(per_writer) / len(per_writer),
            final_version=deployment.version_manager.get_recent(blob_id),
            makespan_s=makespan,
        )
    result.note("final_version equals writers × appends_each: every update published")
    return result


# -------------------------------------------------------------------- ABL-psize
_PSIZE_PRESETS = {
    "small": (24, (16 * KiB, 64 * KiB, 256 * KiB), 4 * MiB),
    "default": (60, (16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB), 16 * MiB),
    "paper": (173, (16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB), 64 * MiB),
}


def run_ablation_page_size(scale: str = "small") -> ExperimentResult:
    """Append and read bandwidth across page sizes (granularity trade-off)."""
    check_scale(scale)
    providers, page_sizes, io_bytes = _PSIZE_PRESETS[scale]
    result = ExperimentResult(
        "ABL-psize",
        "Page-size sweep: per-operation bandwidth and metadata cost",
    )
    for page_size in page_sizes:
        append_samples = run_append_growth_experiment(
            num_provider_nodes=providers,
            page_size=page_size,
            append_bytes=io_bytes,
            num_appends=3,
        )
        read_samples = run_read_concurrency_experiment(
            num_provider_nodes=providers,
            page_size=page_size,
            blob_bytes=io_bytes * 4,
            chunk_bytes=io_bytes,
            reader_counts=[1],
            measure_warm=True,
        )
        result.add(
            page_size_kib=page_size // KiB,
            append_mbps=append_samples[-1].bandwidth_mbps,
            read_mbps=read_samples[0].avg_bandwidth_mbps,
            warm_read_mbps=read_samples[0].warm_avg_bandwidth_mbps,
            metadata_nodes_per_append=append_samples[-1].metadata_nodes_written,
            metadata_nodes_per_read=read_samples[0].avg_metadata_nodes_fetched,
            warm_cache_hit_rate=read_samples[0].warm_avg_cache_hit_rate,
        )
    result.note(
        "larger pages amortize per-request overhead (higher bandwidth) at the "
        "cost of coarser sharing granularity and fewer, larger transfers"
    )
    return result


# -------------------------------------------------------------------- ABL-alloc
_ALLOC_PRESETS = {
    "small": (12, 4 * KiB, 48, 6),
    "default": (24, 16 * KiB, 96, 12),
    "paper": (50, 64 * KiB, 200, 24),
}


def run_ablation_allocation(scale: str = "small") -> ExperimentResult:
    """Compare page-to-provider allocation strategies.

    The provider manager aims at "ensuring an even distribution of pages
    among providers" (Section 3.1) because balanced providers minimize the
    serialization that happens when concurrent clients hit the same provider
    (Section 4.3).  The rows report, after the same multi-blob workload, the
    max/mean byte-load imbalance and the share of bytes on the busiest
    provider for each strategy.
    """
    check_scale(scale)
    providers, page_size, appends, pages_per_append = _ALLOC_PRESETS[scale]
    result = ExperimentResult(
        "ABL-alloc",
        "Page-to-provider allocation strategies: load balance after the same workload",
    )
    for strategy in ("round_robin", "least_loaded", "random"):
        cluster = Cluster(
            BlobSeerConfig(
                page_size=page_size,
                num_data_providers=providers,
                num_metadata_providers=providers,
                allocation_strategy=strategy,
            ),
            seed=2009,
        )
        store = BlobStore(cluster)
        blob_a = store.create()
        blob_b = store.create()
        for index in range(appends):
            target = blob_a if index % 2 == 0 else blob_b
            # Vary the append size so strategies that only work well for
            # uniform requests are penalized realistically.
            pages = 1 + (index % pages_per_append)
            store.append(target, b"x" * (pages * page_size))
        loads = sorted(cluster.page_load_distribution().values())
        total = sum(loads)
        result.add(
            strategy=strategy,
            providers=providers,
            total_pages=cluster.stored_page_count(),
            imbalance_max_over_mean=cluster.provider_manager.imbalance(),
            busiest_provider_share=loads[-1] / total if total else 0.0,
            idle_providers=sum(1 for load in loads if load == 0),
        )
    result.note(
        "round_robin and least_loaded should stay near 1.0 imbalance; random "
        "is the strawman that concentrates load by chance"
    )
    return result


# ---------------------------------------------------------------------- ABL-dht
_DHT_PRESETS = {
    "small": (16, 4 * KiB, 512),
    "default": (64, 16 * KiB, 4096),
    "paper": (173, 64 * KiB, 16384),
}


def run_ablation_dht_placement(scale: str = "small") -> ExperimentResult:
    """Compare metadata key placement schemes over the DHT buckets.

    The paper's custom DHT uses a "simple static distribution scheme"; a
    consistent-hashing ring is the common alternative when buckets churn.
    Both must spread the segment-tree nodes evenly, otherwise hot buckets
    reintroduce the centralized-metadata bottleneck.
    """
    check_scale(scale)
    buckets, page_size, total_pages = _DHT_PRESETS[scale]
    result = ExperimentResult(
        "ABL-dht",
        "Metadata node placement: static modulo hashing vs. consistent hashing",
    )
    for strategy in ("static", "consistent"):
        cluster = Cluster(
            BlobSeerConfig(
                page_size=page_size,
                num_data_providers=buckets,
                num_metadata_providers=buckets,
                dht_strategy=strategy,
            )
        )
        store = BlobStore(cluster)
        blob_id = store.create()
        appended = 0
        while appended < total_pages:
            chunk = min(64, total_pages - appended)
            store.append(blob_id, b"m" * (chunk * page_size))
            appended += chunk
        loads = sorted(cluster.metadata_load_distribution().values())
        total_nodes = sum(loads)
        mean = total_nodes / len(loads)
        result.add(
            strategy=strategy,
            buckets=buckets,
            metadata_nodes=total_nodes,
            max_over_mean=loads[-1] / mean if mean else 0.0,
            min_over_mean=loads[0] / mean if mean else 0.0,
            empty_buckets=sum(1 for load in loads if load == 0),
        )
    result.note(
        "both schemes must keep max/mean close to 1; consistent hashing "
        "additionally limits key movement when buckets join or leave "
        "(covered by unit tests)"
    )
    return result


# -------------------------------------------------------------------- ABL-mixed
_MIXED_PRESETS = {
    "small": (24, 64 * KiB, 256 * MiB, 8 * MiB, 12, (0, 4, 12), 4 * MiB),
    "default": (60, 64 * KiB, 1024 * MiB, 16 * MiB, 30, (0, 10, 30), 16 * MiB),
    "paper": (173, 64 * KiB, 8 * 1024 * MiB, 64 * MiB, 100, (0, 25, 75), 64 * MiB),
}


def run_ablation_mixed_workload(scale: str = "small") -> ExperimentResult:
    """Readers under a growing number of concurrent appenders.

    Because updates only add new pages and new metadata, readers of an
    already-published snapshot should keep most of their bandwidth while
    appenders hammer the same blob — the isolation claim of Section 4.3 and
    the "further experimentation" direction announced in the paper's
    conclusion.
    """
    check_scale(scale)
    (providers, page_size, blob_bytes, chunk_bytes, readers, writer_counts,
     append_bytes) = _MIXED_PRESETS[scale]
    result = ExperimentResult(
        "ABL-mixed",
        "Per-reader bandwidth while concurrent appenders grow the same blob",
    )
    samples = run_mixed_workload_experiment(
        num_provider_nodes=providers,
        page_size=page_size,
        blob_bytes=blob_bytes,
        chunk_bytes=chunk_bytes,
        readers=readers,
        writer_counts=list(writer_counts),
        append_bytes=append_bytes,
    )
    for sample in samples:
        result.add(
            readers=sample.readers,
            writers=sample.writers,
            avg_read_mbps=sample.avg_read_bandwidth_mbps,
            avg_append_mbps=sample.avg_append_bandwidth_mbps,
            versions_published=sample.versions_published,
        )
    result.note(
        "readers keep a large fraction of their writer-free bandwidth; every "
        "concurrent append is published (versions_published = writers x appends)"
    )
    return result


# -------------------------------------------------------------------- ABL-cache
#: (page_size, pages, windows) per scale: the blob holds ``pages`` pages and
#: is read in ``windows`` equal windows per pass.
_CACHE_PRESETS = {
    "small": (4 * KiB, 256, 8),
    "default": (16 * KiB, 1024, 16),
    "paper": (64 * KiB, 4096, 32),
}


def run_ablation_cache(scale: str = "small") -> ExperimentResult:
    """The shared metadata node cache: hit rates, DHT traffic, LRU budgets.

    The same read workload (two full passes over the blob, window by
    window) runs against three cache regimes on one threaded cluster:

    * ``uncached`` — every traversal pays the full DHT cost (the pre-cache
      baseline);
    * ``roomy``    — the budget fits the whole tree, so the second pass is
      served entirely from the cache;
    * ``tight``    — the budget holds only a quarter of the tree, forcing
      LRU evictions while occupancy must stay within the byte budget.
    """
    check_scale(scale)
    page_size, pages, windows = _CACHE_PRESETS[scale]
    result = ExperimentResult(
        "ABL-cache",
        "Shared metadata cache: DHT traffic and hit rate per regime, "
        "LRU budget enforcement",
    )

    cluster = Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=page_size
    )
    writer = BlobStore(cluster, cache_metadata=False)
    blob_id = writer.create()
    append_pages = max(1, pages // 8)
    appended = 0
    while appended < pages:
        chunk = min(append_pages, pages - appended)
        version = writer.append(blob_id, b"c" * (chunk * page_size))
        appended += chunk
    writer.sync(blob_id, version)
    total_bytes = pages * page_size
    window_bytes = total_bytes // windows

    # Size the bounded regimes from the measured tree: the roomy cache fits
    # every node, the tight one holds only a quarter of them.
    total_nodes = cluster.metadata_node_count()
    regimes = [
        ("uncached", None),
        ("roomy", NodeCache(max_entries=4 * total_nodes, shards=4)),
        ("tight", NodeCache(max_entries=max(8, total_nodes // 4), shards=4)),
    ]
    for regime, cache in regimes:
        store = BlobStore(
            cluster,
            cache_metadata=cache is not None,
            node_cache=cache,
        )
        for pass_index in ("cold", "warm"):
            gets_before = cluster.dht.stats().gets
            nodes_fetched = hits = 0
            for window in range(windows):
                _, stats = store.read_ex(
                    blob_id, version, window * window_bytes, window_bytes
                )
                nodes_fetched += stats.metadata_nodes_fetched
                hits += stats.metadata_cache_hits
            lookups = nodes_fetched + hits
            cache_stats = store.cache_stats()
            result.add(
                regime=regime,
                read_pass=pass_index,
                meta_nodes_per_read=nodes_fetched / windows,
                cache_hit_rate=hits / lookups if lookups else 0.0,
                dht_gets=cluster.dht.stats().gets - gets_before,
                cache_entries=cache_stats.entries,
                cache_bytes=cache_stats.bytes,
                budget_entries=cache.max_entries if cache is not None else 0,
                evictions=cache_stats.evictions,
                within_budget=(
                    cache is None
                    or (
                        cache_stats.entries <= cache.max_entries
                        and cache_stats.bytes <= cache.max_bytes
                    )
                ),
            )
    result.note(
        f"one blob of {pages} pages ({total_nodes} tree nodes), read twice in "
        f"{windows} windows per regime; the tight regime must evict but stay "
        "within its entry/byte budgets"
    )
    result.note(
        "roomy warm pass: dht_gets == 0 — repeated reads never touch the DHT"
    )
    return result


# ----------------------------------------------------------------- ABL-pagecache
#: (page_size, pages, windows) per scale: the blob holds ``pages`` pages and
#: is read in ``windows`` equal windows per pass.
_PAGECACHE_PRESETS = {
    "small": (4 * KiB, 256, 8),
    "default": (16 * KiB, 1024, 16),
    "paper": (64 * KiB, 4096, 32),
}


def run_ablation_page_cache(scale: str = "small") -> ExperimentResult:
    """The shared page payload cache: provider traffic, hit rates, budgets.

    The same read workload (two full passes over the blob, window by
    window) runs against three page-cache regimes on one threaded cluster
    (metadata caching pinned off so data-path effects are isolated):

    * ``uncached`` — every read pays its provider fetches (the pre-cache
      baseline);
    * ``roomy``    — the byte budget fits every page, so the second pass
      issues ZERO provider requests;
    * ``tight``    — the budget holds only a quarter of the payload bytes,
      forcing LRU evictions while occupancy must stay within budget.
    """
    check_scale(scale)
    page_size, pages, windows = _PAGECACHE_PRESETS[scale]
    result = ExperimentResult(
        "ABL-pagecache",
        "Shared page cache: provider traffic and hit rate per regime, "
        "byte-budget enforcement",
    )

    cluster = Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=page_size
    )
    writer = BlobStore(cluster, cache_metadata=False, cache_pages=False)
    blob_id = writer.create()
    append_pages = max(1, pages // 8)
    appended = 0
    while appended < pages:
        chunk = min(append_pages, pages - appended)
        version = writer.append(blob_id, b"p" * (chunk * page_size))
        appended += chunk
    writer.sync(blob_id, version)
    total_bytes = pages * page_size
    window_bytes = total_bytes // windows

    def provider_gets() -> int:
        return sum(
            provider.stats().get_requests
            for provider in cluster.provider_manager.providers()
        )

    # Size the bounded regimes from the stored payload: the roomy cache
    # fits every page (plus key/entry overhead), the tight one holds only
    # a quarter of the bytes.
    regimes = [
        ("uncached", None),
        ("roomy", PageCache(max_entries=4 * pages, max_bytes=4 * total_bytes,
                            shards=4)),
        ("tight", PageCache(max_entries=pages,
                            max_bytes=max(4 * page_size, total_bytes // 4),
                            shards=4)),
    ]
    for regime, cache in regimes:
        store = BlobStore(
            cluster,
            cache_metadata=False,
            cache_pages=cache is not None,
            page_cache=cache,
        )
        for pass_index in ("cold", "warm"):
            gets_before = provider_gets()
            data_trips = hits = fetched = 0
            for window in range(windows):
                _, stats = store.read_ex(
                    blob_id, version, window * window_bytes, window_bytes
                )
                data_trips += stats.data_round_trips
                hits += stats.page_cache_hits
                fetched += stats.pages_fetched
            cache_stats = store.page_cache_stats()
            result.add(
                regime=regime,
                read_pass=pass_index,
                data_trips=data_trips,
                provider_gets=provider_gets() - gets_before,
                page_cache_hit_rate=hits / fetched if fetched else 0.0,
                cache_entries=cache_stats.entries,
                cache_bytes=cache_stats.bytes,
                budget_bytes=cache.max_bytes if cache is not None else 0,
                evictions=cache_stats.evictions,
                within_budget=(
                    cache is None
                    or (
                        cache_stats.entries <= cache.max_entries
                        and cache_stats.bytes <= cache.max_bytes
                    )
                ),
            )
    result.note(
        f"one blob of {pages} pages ({total_bytes} payload bytes), read twice "
        f"in {windows} windows per regime; the tight regime must evict but "
        "stay within its entry/byte budgets"
    )
    result.note(
        "roomy warm pass: provider_gets == 0 and data_trips == 0 — repeated "
        "reads never touch the data providers"
    )
    return result


# ----------------------------------------------------------------------- ABL-vm
#: (page_size, pages, reads_per_pass, writers, appends_per_writer) per scale.
_VM_PRESETS = {
    "small": (4 * KiB, 128, 16, 8, 6),
    "default": (16 * KiB, 512, 32, 16, 8),
    "paper": (64 * KiB, 2048, 64, 32, 12),
}


class _NetworkedVersionManager(VersionManager):
    """A version manager whose every lock round costs a serialized delay.

    In-process, a ``multi_register`` takes microseconds and concurrent
    writers rarely pile up behind the window's leader.  A networked
    deployment pays an RPC (latency + serialized service time) per lock
    round — exactly the cost group commit amortizes — so the ablation
    models it with a small sleep per batch, identical for both regimes.
    """

    def __init__(self, config: BlobSeerConfig, round_delay: float):
        super().__init__(config)
        self._round_delay = round_delay

    def multi_register(self, requests):
        time.sleep(self._round_delay)
        return super().multi_register(requests)

    def multi_complete(self, notices):
        time.sleep(self._round_delay)
        return super().multi_complete(notices)


def run_ablation_vm(scale: str = "small") -> ExperimentResult:
    """The version-manager service: leases on the read path, group commit on
    the write path.

    Two regimes run the same threaded workload against fresh clusters whose
    version manager charges a 0.3 ms serialized delay per lock round (the
    networked-VM model — see :class:`_NetworkedVersionManager`):

    * ``unleased`` — every READ pays its version-manager round trips
      (record lookup + combined publication check); group commit still
      batches the writers (it is part of the service now);
    * ``leased``   — the shared :class:`~repro.vm.LeaseCache` additionally
      serves records, published sizes and GET_RECENT, so the warm read
      pass reports ``vm_round_trips == 0``.

    Each regime reports the read-side trips per pass, the write-side
    group-commit counters (``register_requests`` vs ``register_batches``)
    from a burst of concurrent appender threads, and the burst's makespan.
    """
    check_scale(scale)
    page_size, pages, reads_per_pass, writers, appends_each = _VM_PRESETS[scale]
    result = ExperimentResult(
        "ABL-vm",
        "Version-manager service: leased vs unleased reads, group-commit "
        "amortization under concurrent appenders",
    )
    for regime in ("unleased", "leased"):
        config = BlobSeerConfig(
            page_size=page_size, num_data_providers=8, num_metadata_providers=8
        )
        cluster = Cluster(
            config,
            version_manager=_NetworkedVersionManager(config, round_delay=0.3e-3),
        )
        leases = (
            LeaseCache(cluster.version_manager, ttl=300.0)
            if regime == "leased"
            else None
        )
        store = BlobStore(
            cluster,
            cache_metadata=False,
            lease_versions=regime == "leased",
            version_leases=leases,
        )
        blob_id = store.create()
        append_bytes = max(1, pages // 8) * page_size
        version = 0
        appended = 0
        while appended < pages * page_size:
            version = store.append(blob_id, b"v" * append_bytes)
            appended += append_bytes
        store.sync(blob_id, version)
        if leases is not None:
            # The populate phase warmed the lease cache (writer
            # notifications); drop it so the first pass is honestly cold.
            leases.clear()

        window_bytes = pages * page_size // reads_per_pass
        trips_per_pass = []
        for _pass in ("cold", "warm"):
            trips = 0
            for window in range(reads_per_pass):
                _, stats = store.read_ex(
                    blob_id, version, window * window_bytes, window_bytes
                )
                trips += stats.vm_round_trips
            trips_per_pass.append(trips)

        # Write side: a burst of concurrent appenders through the shared
        # ticket window / publish queue.
        before = cluster.version_manager.vm_stats()
        barrier = threading.Barrier(writers)

        def appender(_index):
            barrier.wait()
            for _ in range(appends_each):
                store.append(blob_id, b"w" * page_size)

        threads = [
            threading.Thread(target=appender, args=(index,))
            for index in range(writers)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        makespan = time.perf_counter() - started
        stats = cluster.version_manager.vm_stats()
        lease_stats = store.lease_stats()
        result.add(
            regime=regime,
            cold_vm_trips=trips_per_pass[0],
            warm_vm_trips=trips_per_pass[1],
            reads_per_pass=reads_per_pass,
            register_requests=stats.register_requests - before.register_requests,
            register_batches=stats.register_batches - before.register_batches,
            register_max_batch=stats.register_max_batch,
            lock_rounds_saved=stats.lock_rounds_saved,
            burst_makespan_s=makespan,
            lease_hit_rate=lease_stats.hit_rate if lease_stats else 0.0,
            final_version=store.get_recent(blob_id),
        )
    result.note(
        "leased warm pass must report 0 VM trips (the lease cache serves "
        "records, sizes and GET_RECENT); unleased reads pay 2 per read"
    )
    result.note(
        "register_batches < register_requests: concurrent appenders pile up "
        "behind the ticket window's leader while the (0.3 ms) networked VM "
        "round is in flight, and the next drain takes them all in one batch; "
        "final_version shows every append was still published"
    )
    return result


# -------------------------------------------------------------------- ABL-churn
#: (providers, page_size, pages, windows) per scale: the blob holds ``pages``
#: pages spread over ``providers`` data providers and is read window by
#: window while one provider is down.
_CHURN_PRESETS = {
    "small": (8, 4 * KiB, 128, 16),
    "default": (16, 16 * KiB, 512, 32),
    "paper": (48, 64 * KiB, 2048, 64),
}


def run_ablation_churn(scale: str = "small") -> ExperimentResult:
    """Availability under provider churn: replication, failover, repair.

    The same read workload runs against two regimes of one in-process
    cluster family, ``page_replication=1`` (the paper's baseline: every
    page has a single home) and ``page_replication=2``:

    * populate a blob, then **kill** the data provider holding the most
      pages and read the whole published snapshot window by window.  With
      one replica, windows touching the victim's pages fail
      (``failed_reads``); with two, every read succeeds *degraded* —
      correct bytes served by the surviving replicas (``degraded_reads``,
      ``failovers``).
    * run the :class:`~repro.fault.RepairService` and report how much of
      the under-replication backlog one pass drains, and how long it took
      (``repair_drain_s``).
    * **rejoin** the victim, run a second repair pass (rejoining holders
      may temporarily yield extra copies — harmless), and re-read: the
      final pass must be failure-free in both regimes.

    Every successful read is content-checked against the written payload,
    so availability is never bought with wrong bytes.
    """
    check_scale(scale)
    providers, page_size, pages, windows = _CHURN_PRESETS[scale]
    result = ExperimentResult(
        "ABL-churn",
        "Provider churn: failed vs degraded reads per replication regime, "
        "repair backlog drain",
    )
    rng = random.Random(2009)
    payload = bytes(rng.getrandbits(8) for _ in range(pages * page_size))
    window_bytes = pages * page_size // windows

    for replication in (1, 2):
        cluster = Cluster(
            BlobSeerConfig(
                page_size=page_size,
                num_data_providers=providers,
                num_metadata_providers=providers,
                page_replication=replication,
            ),
            seed=2009,
        )
        store = BlobStore(cluster, cache_metadata=False, cache_pages=False)
        repair_service = RepairService(cluster)
        blob_id = store.create()
        append_bytes = max(1, pages // 8) * page_size
        version = 0
        for start in range(0, pages * page_size, append_bytes):
            version = store.append(
                blob_id, payload[start:start + append_bytes]
            )
        store.sync(blob_id, version)

        def read_pass():
            """One full pass; returns (failed, degraded_reads, failovers)."""
            failed = degraded_reads = failovers = 0
            for window in range(windows):
                offset = window * window_bytes
                try:
                    data, stats = store.read_ex(
                        blob_id, version, offset, window_bytes
                    )
                except ProviderUnavailableError:
                    failed += 1
                    continue
                if data != payload[offset:offset + window_bytes]:
                    raise AssertionError("degraded read returned wrong bytes")
                degraded_reads += 1 if stats.degraded else 0
                failovers += stats.failovers
            return failed, degraded_reads, failovers

        # Kill the provider holding the most pages (deterministic victim).
        victim = max(
            cluster.provider_manager.providers(),
            key=lambda provider: (provider.page_count(), provider.provider_id),
        )
        cluster.kill_data_provider(victim.provider_id)
        failed, degraded_reads, failovers = read_pass()
        backlog_after_kill = repair_service.under_replicated()

        started = time.perf_counter()
        report = repair_service.repair()
        repair_drain_s = time.perf_counter() - started
        backlog_after_repair = repair_service.under_replicated()

        cluster.revive_data_provider(victim.provider_id)
        rejoin_report = repair_service.repair()
        failed_after, degraded_after, _ = read_pass()
        result.add(
            page_replication=replication,
            reads=windows,
            failed_reads=failed,
            degraded_reads=degraded_reads,
            failovers=failovers,
            backlog_after_kill=backlog_after_kill,
            re_replicated=report.pages_re_replicated,
            copies_created=report.copies_created,
            unrecoverable=report.pages_unrecoverable,
            backlog_after_repair=backlog_after_repair,
            repair_drain_s=repair_drain_s,
            rejoin_backlog=rejoin_report.backlog,
            failed_after_rejoin=failed_after,
            degraded_after_rejoin=degraded_after,
        )
    result.note(
        "page_replication=1: the victim's pages are unavailable (failed "
        "reads, unrecoverable backlog) until it rejoins; page_replication=2: "
        "zero failed reads — every read is served degraded by the surviving "
        "replica — and one repair pass drains the backlog to 0"
    )
    result.note(
        "after rejoin + second repair both regimes read failure-free; every "
        "successful read was content-checked against the written payload"
    )
    return result


# ----------------------------------------------------------------- ABL-coldpath
#: (providers, page_size, blob_bytes, chunk_bytes, readers, hot_readers) per
#: scale: the toggle sweep reads ``readers`` disjoint chunks; the hot-page
#: scenario sends ``hot_readers`` concurrent clients at one popular page.
_COLDPATH_PRESETS = {
    "small": (24, 64 * KiB, 256 * MiB, 8 * MiB, 12, 12),
    "default": (60, 64 * KiB, 1024 * MiB, 16 * MiB, 30, 24),
    "paper": (173, 64 * KiB, 8 * 1024 * MiB, 64 * MiB, 100, 48),
}

#: The one-at-a-time toggle sweep of the three cold-path pieces.
_COLDPATH_REGIMES = (
    ("baseline", {}),
    ("+prefetch", {"speculative_prefetch": True}),
    ("+routing", {"replica_routing": True}),
    ("+peer", {"peer_caching": True}),
    ("all-on", {
        "speculative_prefetch": True,
        "replica_routing": True,
        "peer_caching": True,
    }),
)


def run_ablation_coldpath(scale: str = "small") -> ExperimentResult:
    """The three cold-read optimizations of DESIGN.md §9, one at a time.

    Two workloads on replicated deployments (pages on 5 providers,
    metadata buckets on 3 — the fig2b benchmark config):

    * **disjoint-chunks** — the fig2b cold pass (``readers`` concurrent
      clients, each a distinct chunk) per toggle regime: every piece alone
      must be at least as fast as the all-off baseline, and all-on must
      beat every single piece.  Peer caching legitimately reports a ~0 hit
      rate here — disjoint readers share no pages — which is exactly why
      it must also be a no-op in cost.
    * **hot-page** — a flash crowd: one machine reads a page, then
      ``hot_readers`` co-located clients on other machines hit the same
      page at once.  Without peer caching they all queue on the page's
      single home provider; with it the crowd is served by peer caches
      (cheap software path, no marshalling), so the average client sees
      higher bandwidth and the provider sees no requests at all.
    """
    check_scale(scale)
    (providers, page_size, blob_bytes, chunk_bytes, readers,
     hot_readers) = _COLDPATH_PRESETS[scale]
    result = ExperimentResult(
        "ABL-coldpath",
        "Cold-read path: speculative prefetch, replica routing and peer "
        "caching, each piece alone vs all together",
    )

    for regime, toggles in _COLDPATH_REGIMES:
        knobs = {
            "speculative_prefetch": False,
            "replica_routing": False,
            "peer_caching": False,
            **toggles,
        }
        sample = run_read_concurrency_experiment(
            num_provider_nodes=providers,
            page_size=page_size,
            blob_bytes=blob_bytes,
            chunk_bytes=chunk_bytes,
            reader_counts=[readers],
            co_locate_clients=True,
            page_replication=5,
            metadata_replication=3,
            **knobs,
        )[0]
        result.add(
            workload="disjoint-chunks",
            regime=regime,
            readers=readers,
            avg_bandwidth_mbps=sample.avg_bandwidth_mbps,
            cold_meta_latency=sample.avg_meta_latency * 1e3,
            data_trips_per_read=sample.avg_data_round_trips,
            speculative_hit_rate=sample.speculative_hit_rate,
            peer_cache_hit_rate=sample.peer_cache_hit_rate,
        )

    # The hot-page flash crowd: unreplicated pages (one home provider) so
    # the contention the peers absorb is visible, everything else off.
    for regime, peer_on in (("peer-off", False), ("peer-on", True)):
        deployment = SimDeployment(
            num_provider_nodes=providers,
            page_size=page_size,
            co_locate_clients=True,
            speculative_prefetch=False,
            replica_routing=False,
            peer_caching=peer_on,
        )
        blob_id = deployment.create_blob()
        version = deployment.populate_blob(blob_id, 16 * page_size)
        # One machine fetches the page the normal way and write-through
        # caches it; the crowd then hits the same page from other machines.
        deployment.simulator.run_process(
            SimClient(deployment, 0).read_process(blob_id, version, 0, page_size)
        )
        deployment.reset_timing()
        simulator = deployment.simulator
        crowd = [
            simulator.process(
                SimClient(deployment, index).read_process(
                    blob_id, version, 0, page_size
                )
            )
            for index in range(1, hot_readers + 1)
        ]
        simulator.run()
        outcomes = [process.event.value for process in crowd]
        result.add(
            workload="hot-page",
            regime=regime,
            readers=hot_readers,
            avg_bandwidth_mbps=sum(
                outcome.bandwidth for outcome in outcomes
            ) / len(outcomes) / MiB,
            cold_meta_latency=sum(
                outcome.meta_latency for outcome in outcomes
            ) / len(outcomes) * 1e3,
            data_trips_per_read=sum(
                outcome.data_round_trips for outcome in outcomes
            ) / len(outcomes),
            speculative_hit_rate=0.0,
            peer_cache_hit_rate=sum(
                outcome.peer_cache_hits for outcome in outcomes
            ) / sum(outcome.pages_fetched for outcome in outcomes),
        )
    result.note(
        "disjoint-chunks: each piece alone must be >= baseline "
        "avg_bandwidth_mbps (non-regression) and all-on the fastest; "
        "cold_meta_latency is in milliseconds and roughly halves under "
        "+prefetch (two tree levels per round trip)"
    )
    result.note(
        "hot-page: with peer caching the crowd's reads are served by "
        "co-located peer caches (peer_cache_hit_rate 1.0, "
        "data_trips_per_read 0) instead of queueing on the page's single "
        "home provider — cooperative caching diffuses flash crowds"
    )
    return result
