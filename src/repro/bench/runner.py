"""Shared helpers for the benchmark harnesses: scales, results, formatting."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Recognized experiment scales.  ``small`` finishes in a few seconds and is
#: what the pytest-benchmark targets use; ``default`` takes tens of seconds;
#: ``paper`` uses the paper's node counts and data sizes (minutes).
SCALES = ("small", "default", "paper")


def check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return scale


@dataclass
class ExperimentResult:
    """Rows produced by one experiment run, plus free-form notes."""

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def format(self) -> str:
        return format_table(self)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    lines = [f"== {result.experiment}: {result.title} =="]
    if result.rows:
        columns = list(result.rows[0].keys())
        rendered = [
            {column: _fmt(row.get(column)) for column in columns}
            for row in result.rows
        ]
        widths = {
            column: max(len(column), *(len(row[column]) for row in rendered))
            for column in columns
        }
        header = "  ".join(column.ljust(widths[column]) for column in columns)
        lines.append(header)
        lines.append("  ".join("-" * widths[column] for column in columns))
        for row in rendered:
            lines.append(
                "  ".join(row[column].ljust(widths[column]) for column in columns)
            )
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)
