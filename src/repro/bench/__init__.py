"""Benchmark harnesses regenerating the paper's evaluation.

Each module reproduces one figure or one ablation called out in DESIGN.md and
can be run either through the CLI (``python -m repro.bench <experiment>`` or
the ``blobseer-bench`` console script) or through the pytest-benchmark
targets in ``benchmarks/``.

Every ``run_*`` function returns a list of row dictionaries and the
``format_table`` helper renders them the way the paper reports the numbers.
"""

from .runner import ExperimentResult, format_table
from .fig2a import run_fig2a
from .fig2b import run_fig2b
from .ablations import (
    run_ablation_allocation,
    run_ablation_cache,
    run_ablation_churn,
    run_ablation_concurrent_writers,
    run_ablation_dht_placement,
    run_ablation_metadata,
    run_ablation_mixed_workload,
    run_ablation_page_size,
    run_ablation_storage_space,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "run_fig2a",
    "run_fig2b",
    "run_ablation_allocation",
    "run_ablation_cache",
    "run_ablation_churn",
    "run_ablation_concurrent_writers",
    "run_ablation_dht_placement",
    "run_ablation_metadata",
    "run_ablation_mixed_workload",
    "run_ablation_page_size",
    "run_ablation_storage_space",
]
