"""FIG-2b — read throughput under concurrency (Figure 2(b)).

The paper's setup: a blob is grown to 64 GB (64 KB pages); then 1, 100 and
175 concurrent readers, co-deployed with the 173 data/metadata provider
nodes, each read a distinct 64 MB chunk; the average per-reader read
bandwidth is reported.  The paper measures 60 MB/s for a single reader
degrading gently to 49 MB/s for 175 concurrent readers (≈ 18 % drop).

Expected shape: the per-reader bandwidth must degrade only mildly as the
reader count approaches the provider count — far from a 1/N collapse —
because both data pages and metadata tree nodes are spread over all
providers.
"""

from __future__ import annotations

from ..config import GiB, KiB, MiB
from ..sim.experiments import run_read_concurrency_experiment
from .runner import ExperimentResult, check_scale

#: (providers, page_size, blob_bytes, chunk_bytes, reader_counts) per scale.
_PRESETS = {
    "small": (24, 64 * KiB, 512 * MiB, 8 * MiB, (1, 12, 24)),
    "default": (60, 64 * KiB, 2 * GiB, 16 * MiB, (1, 30, 60)),
    "paper": (173, 64 * KiB, 12 * GiB, 64 * MiB, (1, 100, 175)),
}

#: The cold-path treatment of DESIGN.md §9, on for the benchmark since PR 8:
#: pages live on 5 providers and metadata buckets on 3, so cache-aware
#: replica routing has replicas to choose from (a co-located one serves over
#: the memory bus); speculative frontier prefetch overlaps the metadata
#: descent's round trips; co-located readers probe each other's page caches.
_COLD_PATH = {
    "page_replication": 5,
    "metadata_replication": 3,
    "speculative_prefetch": True,
    "replica_routing": True,
    "peer_caching": True,
}


def run_fig2b(scale: str = "small") -> ExperimentResult:
    """Regenerate Figure 2(b) at the requested scale."""
    check_scale(scale)
    providers, page_size, blob_bytes, chunk_bytes, reader_counts = _PRESETS[scale]
    result = ExperimentResult(
        "FIG-2b",
        "Read throughput vs. number of concurrent readers "
        "(disjoint 64 MB-class chunks)",
    )
    samples = run_read_concurrency_experiment(
        num_provider_nodes=providers,
        page_size=page_size,
        blob_bytes=blob_bytes,
        chunk_bytes=chunk_bytes,
        reader_counts=list(reader_counts),
        co_locate_clients=True,
        measure_warm=True,
        **_COLD_PATH,
    )
    for sample in samples:
        result.add(
            readers=sample.readers,
            providers=providers,
            page_size_kib=page_size // KiB,
            chunk_mib=chunk_bytes // MiB,
            avg_bandwidth_mbps=sample.avg_bandwidth_mbps,
            min_bandwidth_mbps=sample.min_bandwidth_mbps,
            aggregate_mbps=sample.aggregate_bandwidth_mbps,
            meta_nodes_per_read=sample.avg_metadata_nodes_fetched,
            meta_trips_per_read=sample.avg_metadata_round_trips,
            data_trips_per_read=sample.avg_data_round_trips,
            vm_trips_per_read=sample.avg_vm_round_trips,
            cache_hit_rate=sample.avg_cache_hit_rate,
            page_cache_hit_rate=sample.avg_page_cache_hit_rate,
            cold_meta_latency=sample.avg_meta_latency * 1e3,
            speculative_hits=sample.avg_speculative_hits,
            speculative_wasted=sample.avg_speculative_wasted,
            speculative_hit_rate=sample.speculative_hit_rate,
            peer_cache_hit_rate=sample.peer_cache_hit_rate,
            warm_avg_bandwidth_mbps=sample.warm_avg_bandwidth_mbps,
            warm_meta_nodes_per_read=sample.warm_avg_metadata_nodes_fetched,
            warm_meta_trips_per_read=sample.warm_avg_metadata_round_trips,
            warm_data_trips_per_read=sample.warm_avg_data_round_trips,
            warm_vm_trips_per_read=sample.warm_avg_vm_round_trips,
            warm_cache_hit_rate=sample.warm_avg_cache_hit_rate,
            warm_page_cache_hit_rate=sample.warm_avg_page_cache_hit_rate,
        )
    if scale != "paper":
        result.note(
            "blob and chunk sizes are scaled down from the paper's 64 GB / 64 MB; "
            "the reader-to-provider ratio (the contention driver) is preserved"
        )
    result.note("paper reference points: 60 MB/s at 1 reader, 49 MB/s at 175 readers")
    result.note(
        "warm_* columns: the same readers re-read the same ranges through the "
        "now-warm shared metadata cache — traversals skip the DHT entirely"
    )
    result.note(
        "warm_data_trips_per_read / page_cache_hit_rate: the machine's page "
        "cache serves every previously fetched page range, so warm repeated "
        "reads skip the data providers too (0 batched data trips, hit rate "
        "1.0 on the warm pass)"
    )
    result.note(
        "vm_trips_per_read: version-manager round trips — 1 cold (the "
        "combined check_read; the sim models the blob record as client-stub "
        "state, so unlike the threaded client's ReadStats it is not a "
        "charged RPC), 0 warm (the machine's version lease serves the "
        "publication check)"
    )
    result.note(
        "cold-path columns (DESIGN.md §9): cold_meta_latency is the cold "
        "metadata descent in MILLISECONDS (speculative prefetch roughly "
        "halves it by overlapping two tree levels per round trip); "
        "speculative_hit_rate = consumed speculative fetches over all "
        "speculative fetches; peer_cache_hit_rate is ~0 here because "
        "disjoint-chunk readers never share pages — see ABL-coldpath for "
        "the popular-chunk scenario where peers serve reads; benchmark "
        "config: page_replication=5, metadata_replication=3, "
        "speculative_prefetch on"
    )
    return result


def shape_checks(result: ExperimentResult) -> dict[str, bool]:
    """Machine-checkable qualitative shape of Figure 2(b)."""
    rows = sorted(result.rows, key=lambda row: row["readers"])
    if len(rows) < 2:
        return {"have_multiple_reader_counts": False}
    single = rows[0]["avg_bandwidth_mbps"]
    most = rows[-1]["avg_bandwidth_mbps"]
    readers = rows[-1]["readers"]
    checks = {
        # Degradation stays mild (the paper drops ~18 %; accept up to 45 %).
        "mild_degradation": most >= 0.55 * single,
        # Far better than a 1/N collapse of per-reader bandwidth.
        "not_collapsing": most >= 5.0 * (single / readers),
        # Aggregate bandwidth scales up with readers.
        "aggregate_scales": rows[-1]["aggregate_mbps"] > 0.5 * readers * most,
    }
    if all("warm_avg_bandwidth_mbps" in row for row in rows):
        # Warm repeated reads must traverse entirely from the shared cache:
        # fewer nodes from the DHT than the cold pass needed round trips
        # (i.e. <= tree depth; in practice ~0) and a never-slower read.
        checks["warm_reads_skip_metadata"] = all(
            row["warm_meta_nodes_per_read"] <= row["meta_trips_per_read"]
            for row in rows
        )
        checks["warm_reads_not_slower"] = all(
            row["warm_avg_bandwidth_mbps"] >= 0.999 * row["avg_bandwidth_mbps"]
            for row in rows
        )
        checks["warm_cache_serves_reads"] = all(
            row["warm_cache_hit_rate"] >= 0.9 for row in rows
        )
    if all("warm_data_trips_per_read" in row for row in rows):
        # Warm repeated reads must be served entirely from the machines'
        # page caches: zero batched provider trips, every page range a hit.
        checks["warm_reads_skip_providers"] = all(
            row["warm_data_trips_per_read"] == 0.0
            and row["warm_page_cache_hit_rate"] == 1.0
            for row in rows
        )
    if all("warm_vm_trips_per_read" in row for row in rows):
        # Warm repeated reads must not pay any version-manager round trip:
        # the machine's lease serves the publication check.  Cold reads pay
        # at most one (the combined check_read).
        checks["warm_reads_skip_version_manager"] = all(
            row["warm_vm_trips_per_read"] == 0.0 for row in rows
        )
        checks["cold_reads_pay_one_vm_trip"] = all(
            row["vm_trips_per_read"] <= 1.0 for row in rows
        )
    if all("speculative_hits" in row for row in rows):
        # Speculative prefetch must earn its keep at the benchmark geometry:
        # the over-fetch (wasted predictions) stays well under the useful
        # work — less than 2x the consumed predictions — and most
        # predictions are consumed.
        checks["speculation_overfetch_bounded"] = all(
            row["speculative_wasted"] < 2.0 * row["speculative_hits"]
            for row in rows
        )
        checks["speculation_mostly_useful"] = all(
            row["speculative_hit_rate"] >= 0.5 for row in rows
        )
    return checks
