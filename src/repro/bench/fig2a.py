"""FIG-2a — append throughput as a blob dynamically grows (Figure 2(a)).

The paper's setup: a single client creates an empty blob and keeps appending
64 MB of data; the version manager and provider manager run on dedicated
nodes, data and metadata providers are co-deployed on 50 or 175 nodes; the
experiment is repeated with 64 KB and 256 KB pages.  The reported curve is
the append bandwidth against the number of pages the blob holds.

Expected shape (what "reproduced" means): bandwidth stays high and roughly
flat while the blob grows, the larger page size is faster, more providers
never hurt, and small dips appear when the page count crosses a power of two
(the metadata tree gains a level).  The dips are most visible with
fine-grained appends, so the harness also emits a fine-grained series.
"""

from __future__ import annotations

from ..config import KiB, MiB
from ..sim.experiments import run_append_growth_experiment
from .runner import ExperimentResult, check_scale

#: (providers, page_sizes, append_bytes, num_appends, fine_append_pages,
#:  fine_num_appends) per scale.
_PRESETS = {
    "small": ((8, 24), (16 * KiB, 64 * KiB), 2 * MiB, 6, 4, 48),
    "default": ((50, 175), (64 * KiB, 256 * KiB), 16 * MiB, 8, 8, 96),
    "paper": ((50, 175), (64 * KiB, 256 * KiB), 64 * MiB, 16, 8, 160),
}


def run_fig2a(scale: str = "small") -> ExperimentResult:
    """Regenerate Figure 2(a) at the requested scale."""
    check_scale(scale)
    providers_list, page_sizes, append_bytes, num_appends, fine_pages, fine_appends = (
        _PRESETS[scale]
    )
    result = ExperimentResult(
        "FIG-2a",
        "Append throughput as the blob dynamically grows (single client)",
    )
    for page_size in page_sizes:
        for providers in providers_list:
            samples = run_append_growth_experiment(
                num_provider_nodes=providers,
                page_size=page_size,
                append_bytes=append_bytes,
                num_appends=num_appends,
            )
            for sample in samples:
                result.add(
                    series=f"{page_size // KiB}K, {providers} providers",
                    page_size_kib=page_size // KiB,
                    providers=providers,
                    pages_total=sample.pages_total,
                    bandwidth_mbps=sample.bandwidth_mbps,
                    metadata_nodes=sample.metadata_nodes_written,
                    border_fetches=sample.border_nodes_fetched,
                    data_trips=sample.data_round_trips,
                    vm_trips=sample.vm_round_trips,
                )
    result.note(
        f"each APPEND writes {append_bytes // MiB} MiB, as in the paper's description"
    )

    # Fine-grained series: small appends make the extra metadata level at
    # power-of-two page counts visible as a dip in the curve.
    page_size = page_sizes[0]
    providers = providers_list[-1]
    fine = run_append_growth_experiment(
        num_provider_nodes=providers,
        page_size=page_size,
        append_bytes=fine_pages * page_size,
        num_appends=fine_appends,
    )
    for sample in fine:
        result.add(
            series=f"fine-grained {page_size // KiB}K, {providers} providers",
            page_size_kib=page_size // KiB,
            providers=providers,
            pages_total=sample.pages_total,
            bandwidth_mbps=sample.bandwidth_mbps,
            metadata_nodes=sample.metadata_nodes_written,
            border_fetches=sample.border_nodes_fetched,
            data_trips=sample.data_round_trips,
            vm_trips=sample.vm_round_trips,
        )
    result.note(
        "fine-grained series appends "
        f"{fine_pages} pages per APPEND to expose the power-of-two dips"
    )
    return result


def shape_checks(result: ExperimentResult) -> dict[str, bool]:
    """Machine-checkable versions of the expected qualitative shape.

    Used by the benchmark tests: they assert the *shape*, not the absolute
    numbers (our substrate is a simulator, not Grid'5000).
    """
    rows = [row for row in result.rows if not row["series"].startswith("fine")]
    by_series: dict[str, list[dict]] = {}
    for row in rows:
        by_series.setdefault(row["series"], []).append(row)

    # 1. Bandwidth stays high while the blob grows: last sample within 15 %
    #    of the first sample for every series.
    flat = all(
        series[-1]["bandwidth_mbps"] >= 0.85 * series[0]["bandwidth_mbps"]
        for series in by_series.values()
    )

    # 2. Larger pages are at least as fast (compare same provider count).
    page_sizes = sorted({row["page_size_kib"] for row in rows})
    providers = sorted({row["providers"] for row in rows})
    larger_pages_faster = True
    if len(page_sizes) >= 2:
        for provider_count in providers:
            small_bw = _mean_bw(rows, page_sizes[0], provider_count)
            large_bw = _mean_bw(rows, page_sizes[-1], provider_count)
            larger_pages_faster &= large_bw >= small_bw

    # 3. More providers never hurt (compare same page size).
    more_providers_ok = True
    if len(providers) >= 2:
        for page_size in page_sizes:
            few = _mean_bw(rows, page_size, providers[0])
            many = _mean_bw(rows, page_size, providers[-1])
            more_providers_ok &= many >= 0.95 * few

    return {
        "bandwidth_flat_as_blob_grows": flat,
        "larger_pages_faster": larger_pages_faster,
        "more_providers_not_worse": more_providers_ok,
    }


def _mean_bw(rows: list[dict], page_size_kib: int, providers: int) -> float:
    values = [
        row["bandwidth_mbps"]
        for row in rows
        if row["page_size_kib"] == page_size_kib and row["providers"] == providers
    ]
    return sum(values) / len(values) if values else 0.0
