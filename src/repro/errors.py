"""Exception hierarchy for the BlobSeer reproduction.

Every error raised by the public API derives from :class:`BlobSeerError`, so
applications can catch a single base class.  More specific subclasses mirror
the failure modes described in the paper's interface specification
(Section 2.1): reading an unpublished version, reading past the end of a
snapshot, writing past the end of the previous snapshot, and so on.
"""

from __future__ import annotations


class BlobSeerError(Exception):
    """Base class for every error raised by this library.

    Every error carries a :attr:`retryable` classification consumed by the
    fault-tolerance layer (:mod:`repro.fault`): retry policies re-issue an
    operation only when the error is *transient* — caused by the momentary
    state of the deployment (a dead provider, a crashed bucket) rather than
    by the request itself.  Deterministic errors (bad ranges, unknown blobs,
    missing pages, checksum mismatches) would fail identically on every
    attempt, so retrying them only hides bugs and burns time.  Errors opt
    into retryability via the :class:`TransientError` mixin; use
    :func:`is_retryable` instead of inspecting the attribute directly.
    """

    #: Deterministic by default: retrying the same call would fail again.
    retryable = False


class TransientError:
    """Mixin marking an error as safe to retry.

    A transient error reflects deployment state that can change between
    attempts (a provider that died may be revived, a replica that missed a
    write may be repaired).  The mixin carries no behaviour of its own — it
    exists so retry code can classify errors structurally
    (``is_retryable(exc)``) instead of special-casing exception types.
    """

    retryable = True


def is_retryable(error: BaseException) -> bool:
    """True when *error* is classified safe to retry.

    Non-BlobSeer exceptions (bugs, ``KeyboardInterrupt``…) are never
    retryable.
    """
    return bool(getattr(error, "retryable", False))


class ConfigurationError(BlobSeerError):
    """A configuration value is invalid (e.g. page size not a power of two)."""


class UnknownBlobError(BlobSeerError):
    """The supplied blob id does not identify any known blob."""

    def __init__(self, blob_id: str):
        super().__init__(f"unknown blob id: {blob_id!r}")
        self.blob_id = blob_id


class VersionNotPublishedError(BlobSeerError):
    """A snapshot version was referenced before being published.

    Raised by READ / GET_SIZE / BRANCH when the version exists but has not
    been published yet, or does not exist at all.
    """

    def __init__(self, blob_id: str, version: int):
        super().__init__(
            f"version {version} of blob {blob_id!r} has not been published"
        )
        self.blob_id = blob_id
        self.version = version


class InvalidRangeError(BlobSeerError):
    """A read or write range is invalid for the targeted snapshot.

    The paper specifies that a READ fails when ``offset + size`` exceeds the
    snapshot size, and a WRITE fails when ``offset`` exceeds the size of the
    previous snapshot.
    """


class PageNotFoundError(BlobSeerError):
    """A data provider was asked for a page id it does not store."""

    def __init__(self, page_id: str, provider_id: str | None = None):
        where = f" on provider {provider_id!r}" if provider_id else ""
        super().__init__(f"page {page_id!r} not found{where}")
        self.page_id = page_id
        self.provider_id = provider_id


class MetadataNotFoundError(BlobSeerError):
    """A metadata tree node is missing from the metadata provider (DHT)."""

    def __init__(self, key: object):
        super().__init__(f"metadata node not found: {key!r}")
        self.key = key


class ProviderUnavailableError(TransientError, BlobSeerError):
    """A data or metadata provider is unreachable (killed / deregistered).

    Transient: the provider may be revived, and with replication another
    replica can serve the same page — this is the error class the failover
    read path and :class:`repro.fault.RetryPolicy` act on.
    """

    def __init__(self, provider_id: str):
        super().__init__(f"provider {provider_id!r} is unavailable")
        self.provider_id = provider_id


class NoProvidersError(BlobSeerError):
    """The provider manager has no registered providers to allocate from."""


class StoreClosedError(BlobSeerError):
    """An operation was issued against a closed client store.

    ``BlobStore.close()`` / ``AsyncBlobStore.aclose()`` are idempotent, but
    a closed store refuses further operations with this error instead of
    failing obscurely deeper in the stack.
    """

    def __init__(self, what: str = "store"):
        super().__init__(f"{what} is closed")


class UpdateAbortedError(BlobSeerError):
    """An in-flight update was aborted (by the client or by a timeout)."""

    def __init__(self, blob_id: str, version: int, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"update for version {version} of blob {blob_id!r} was aborted{detail}"
        )
        self.blob_id = blob_id
        self.version = version
        self.reason = reason


class ConcurrencyError(BlobSeerError):
    """An internal concurrency invariant was violated.

    This should never happen in normal operation; it indicates a bug in the
    version manager or in a caller driving the low-level API out of order
    (e.g. finishing an update that was never registered).
    """


class IntegrityError(BlobSeerError):
    """Stored data failed a checksum verification."""

    def __init__(self, what: str, expected: str, actual: str):
        super().__init__(
            f"integrity check failed for {what}: expected {expected}, got {actual}"
        )
        self.what = what
        self.expected = expected
        self.actual = actual


class ShortReadError(IntegrityError):
    """A page read returned fewer bytes than the requested window.

    Every read request is sized from the metadata tree (a leaf's recorded
    page length bounds what the client asks for), so a provider handing
    back less than the full window means the stored page was truncated or
    corrupted.  Before this error existed, the zero-copy path silently left
    the tail of the destination buffer untouched — serving zeros as data.
    """

    def __init__(self, what: str, expected: int, actual: int):
        super().__init__(what, f"{expected} bytes", f"{actual} bytes")


class SimulationError(BlobSeerError):
    """The discrete-event simulator was driven into an invalid state."""
