"""``python -m repro.obs dump`` — run a tiny traced workload, print metrics.

A fresh process starts with an empty registry, so the dump drives a
small in-memory deployment (one write, one cold read, one warm read)
with ``tracing=True`` before exporting, exactly the workload the
quickstart example uses.  ``--format`` selects the exporter.
"""

from __future__ import annotations

import argparse
import sys


def _demo_workload():
    from ..config import KiB
    from ..core.blob_store import BlobStore
    from ..core.cluster import Cluster

    cluster = Cluster.in_memory(
        tracing=True,
        num_data_providers=4,
        num_metadata_providers=4,
        page_size=4 * KiB,
    )
    with BlobStore(cluster) as store:
        blob_id = store.create()
        payload = bytes(range(256)) * 64  # 16 KiB -> 4 pages
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        store.read(blob_id, version, 0, len(payload))  # cold
        store.read(blob_id, version, 0, len(payload))  # warm
    # The registry holds its pull sources weakly; the caller must keep the
    # cluster alive until after the export or its gauges vanish.
    return cluster


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for the BlobSeer reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    dump = commands.add_parser(
        "dump", help="run a small traced demo workload and print the registry"
    )
    dump.add_argument(
        "--format",
        choices=("human", "prometheus", "json"),
        default="human",
        help="exporter to render the registry with (default: human)",
    )
    options = parser.parse_args(argv)

    from . import get_registry, human_text, json_snapshot, prometheus_text

    cluster = _demo_workload()  # noqa: F841 - keeps the weak sources alive
    registry = get_registry()
    if options.format == "prometheus":
        sys.stdout.write(prometheus_text(registry))
    elif options.format == "json":
        sys.stdout.write(json_snapshot(registry) + "\n")
    else:
        sys.stdout.write(human_text(registry))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
