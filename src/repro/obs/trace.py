"""Span-based tracing for the async core (DESIGN.md §11).

One :class:`Tracer` per traced :class:`~repro.core.cluster.Cluster`
(created only when ``BlobSeerConfig.tracing`` is on).  The store opens a
ROOT span per operation via :meth:`Tracer.trace`; components deeper in
the call graph — the DHT's replica waves, the provider manager's fetch
waves, the retry policy's backoff sleeps — annotate themselves with the
module-level :func:`span` helper, which reads the current span from a
``contextvars.ContextVar``:

* when no trace is active (tracing disabled, or the component was called
  outside a traced operation) :func:`span` yields ``None`` and records
  nothing — components need no tracer reference and no config check;
* under :class:`~repro.aio.AsyncRuntime`, ``asyncio`` copies the context
  into every Task at creation, so spans opened inside ``runtime.start``
  / ``runtime.gather`` branches parent correctly across task boundaries;
* under :class:`~repro.aio.SyncRuntime` everything runs inline in the
  caller's context, so the same instrumentation works unchanged through
  the :func:`~repro.aio.run_sync` bridge.

Timestamps come from the tracer's injectable ``clock``
(``time.perf_counter`` by default); a simulated deployment passes
``lambda: simulator.now`` so spans carry sim virtual-clock timestamps.
The simulator's generator processes interleave outside any context, so
the sim client records its per-leg spans retroactively with
:meth:`Tracer.record` instead of the context-manager API.

Finished spans land in a bounded per-tracer buffer (oldest evicted);
:meth:`Tracer.traces` groups them by trace id for inspection.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["Span", "Tracer", "current_span", "span"]

#: The innermost open span of the calling context; None when tracing is
#: disabled or the caller is outside any traced operation.
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


class Span:
    """One timed leg of a traced operation.

    ``attrs`` is a plain dict; instrumentation may add attributes after
    the span opened (e.g. a fetch wave noting how many requests it
    requeued for failover).  ``end`` is None while the span is open.
    """

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start: float,
        attrs: dict,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Seconds between start and finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> None:
        """Attach or update attributes on an open (or finished) span."""
        self.attrs.update(attrs)

    def finish(self) -> None:
        """Stamp ``end`` and move the span to the tracer's buffer."""
        if self.end is None:
            self.end = self.tracer.clock()
            self.tracer._finished(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, start={self.start:.6f}, "
            f"end={self.end if self.end is None else round(self.end, 6)}, "
            f"attrs={self.attrs})"
        )


class Tracer:
    """Collects spans for one cluster; cheap enough to keep always-on.

    ``clock`` is injectable so simulated runs record virtual-clock
    timestamps; ``max_spans`` bounds the finished-span buffer (a traced
    soak run must not grow memory without bound).
    """

    def __init__(
        self, clock: Callable[[], float] | None = None, max_spans: int = 8192
    ):
        self.clock = clock if clock is not None else time.perf_counter
        self._ids = itertools.count(1)
        self._spans: deque[Span] = deque(maxlen=max_spans)

    # -- context-manager API (threaded/async paths) ------------------------
    @contextmanager
    def trace(self, name: str, **attrs) -> Iterator[Span]:
        """Open a ROOT span (a fresh trace id) and make it current."""
        number = next(self._ids)
        root = Span(
            self,
            name,
            trace_id=f"t{number:06d}",
            span_id=f"s{number:06d}",
            parent_id=None,
            start=self.clock(),
            attrs=attrs,
        )
        token = _CURRENT.set(root)
        try:
            yield root
        finally:
            _CURRENT.reset(token)
            root.finish()

    def child(self, parent: Span, name: str, attrs: dict) -> Span:
        """Open (but do not activate) a child span of ``parent``."""
        return Span(
            self,
            name,
            trace_id=parent.trace_id,
            span_id=f"s{next(self._ids):06d}",
            parent_id=parent.span_id,
            start=self.clock(),
            attrs=attrs,
        )

    # -- retroactive API (simulator processes) -----------------------------
    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Span | None = None,
        trace_id: str | None = None,
        **attrs,
    ) -> Span:
        """Record an already-timed span with explicit timestamps.

        The simulator's generator processes interleave outside any
        ``contextvars`` context, so the sim client captures virtual-clock
        timestamps while its read runs and records the legs afterwards.
        """
        number = next(self._ids)
        if parent is not None:
            trace_id = parent.trace_id
        elif trace_id is None:
            trace_id = f"t{number:06d}"
        recorded = Span(
            self,
            name,
            trace_id=trace_id,
            span_id=f"s{number:06d}",
            parent_id=None if parent is None else parent.span_id,
            start=start,
            attrs=attrs,
        )
        recorded.end = end
        self._spans.append(recorded)
        return recorded

    # -- inspection --------------------------------------------------------
    def _finished(self, span: Span) -> None:
        self._spans.append(span)

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans in completion order, optionally by name."""
        if name is None:
            return list(self._spans)
        return [item for item in self._spans if item.name == name]

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by trace id, each sorted by start time."""
        grouped: dict[str, list[Span]] = {}
        for item in self._spans:
            grouped.setdefault(item.trace_id, []).append(item)
        for items in grouped.values():
            items.sort(key=lambda item: (item.start, item.span_id))
        return grouped

    def clear(self) -> None:
        self._spans.clear()


def current_span() -> Span | None:
    """The innermost open span of this context (None outside any trace)."""
    return _CURRENT.get()


@contextmanager
def span(name: str, **attrs) -> Iterator[Span | None]:
    """Open a child of the current span; a no-op outside any trace.

    This is the only hook components need: no tracer reference, no config
    check.  The disabled path costs one ``ContextVar`` read and never
    touches timing, counters or control flow, which is what keeps the
    bit-identity guarantee trivial.
    """
    parent = _CURRENT.get()
    if parent is None:
        yield None
        return
    child = parent.tracer.child(parent, name, attrs)
    token = _CURRENT.set(child)
    try:
        yield child
    finally:
        _CURRENT.reset(token)
        child.finish()
