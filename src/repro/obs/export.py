"""Exporters for the metrics registry: Prometheus text, JSON, human.

All three render the same :meth:`MetricsRegistry.snapshot`.  The
Prometheus exposition follows the text format version 0.0.4 (``# TYPE``
comments, ``_bucket{le=…}``/``_sum``/``_count`` series with *cumulative*
bucket counts); :func:`parse_prometheus` is the matching linter the CI
perf-gate runs over the export — it validates metric-name and label
syntax line by line and returns the parsed samples.

Dotted registry names map to Prometheus names by replacing every
character outside ``[a-zA-Z0-9_:]`` with ``_`` (``repro.read.ops`` →
``repro_read_ops``).  Label values must stay free of ``=``, ``,`` and
``}`` — they are cluster namespaces and provider ids in practice.
"""

from __future__ import annotations

import json
import re

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "human_text",
    "json_snapshot",
    "parse_prometheus",
    "prometheus_text",
]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_PROM_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')
_PROM_TYPE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$"
)


def _split_rendered(rendered: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a snapshot key (``name`` or ``name{k=v,…}``) back apart."""
    if not rendered.endswith("}"):
        return rendered, []
    name, _brace, body = rendered.partition("{")
    pairs = []
    for item in body[:-1].split(","):
        key, _eq, value = item.partition("=")
        pairs.append((key, value))
    return name, pairs


def _prom_name(dotted: str) -> str:
    return _PROM_NAME.sub("_", dotted)


def _prom_labels(pairs: list[tuple[str, str]], extra: str | None = None) -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in pairs]
    if extra is not None:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """Render the registry in the Prometheus text exposition format."""
    snapshot = (registry or get_registry()).snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for rendered, value in snapshot["counters"].items():
        dotted, pairs = _split_rendered(rendered)
        name = _prom_name(dotted)
        emit_type(name, "counter")
        lines.append(f"{name}{_prom_labels(pairs)} {_format_value(value)}")
    for rendered, value in snapshot["gauges"].items():
        dotted, pairs = _split_rendered(rendered)
        name = _prom_name(dotted)
        emit_type(name, "gauge")
        lines.append(f"{name}{_prom_labels(pairs)} {_format_value(value)}")
    for rendered, data in snapshot["histograms"].items():
        dotted, pairs = _split_rendered(rendered)
        name = _prom_name(dotted)
        emit_type(name, "histogram")
        cumulative = 0
        for bound, count in data["buckets"]:
            cumulative += count
            le = "+Inf" if bound == "+Inf" else repr(float(bound))
            le_label = 'le="' + le + '"'
            lines.append(
                f"{name}_bucket{_prom_labels(pairs, extra=le_label)} {cumulative}"
            )
        lines.append(
            f"{name}_sum{_prom_labels(pairs)} {repr(float(data['sum']))}"
        )
        lines.append(f"{name}_count{_prom_labels(pairs)} {data['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Validate a Prometheus text exposition; return its samples.

    Raises :class:`ValueError` naming the first offending line.  Used by
    tests and the CI perf-gate's export-lint step; it checks name and
    label syntax, numeric values, and ``# TYPE`` comment shape — not the
    full openmetrics grammar.
    """
    samples: dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE") and not _PROM_TYPE.match(line):
                raise ValueError(f"line {number}: malformed TYPE comment: {line!r}")
            continue
        match = _PROM_LINE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        labels = match.group("labels")
        if labels:
            for item in _split_label_body(labels):
                if not _PROM_LABEL.match(item):
                    raise ValueError(
                        f"line {number}: malformed label {item!r} in {line!r}"
                    )
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"line {number}: non-numeric value {raw!r} in {line!r}"
            ) from None
        key = match.group("name")
        if labels:
            key = f"{key}{{{labels}}}"
        samples[key] = value
    if not samples:
        raise ValueError("no samples found in exposition")
    return samples


def _split_label_body(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    for char in body:
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def json_snapshot(registry: MetricsRegistry | None = None) -> str:
    """The registry snapshot as a deterministic JSON document."""
    return json.dumps(
        (registry or get_registry()).snapshot(), indent=2, sort_keys=True
    )


def human_text(registry: MetricsRegistry | None = None) -> str:
    """An aligned, sectioned dump for terminals (``repro.obs dump``)."""
    snapshot = (registry or get_registry()).snapshot()
    lines: list[str] = []

    def section(title: str, rows: list[tuple[str, str]]) -> None:
        if not rows:
            return
        lines.append(title)
        width = max(len(name) for name, _value in rows)
        for name, value in rows:
            lines.append(f"  {name:<{width}}  {value}")
        lines.append("")

    section(
        "counters",
        [
            (name, _format_value(value))
            for name, value in snapshot["counters"].items()
        ],
    )
    section(
        "gauges",
        [
            (name, _format_value(value))
            for name, value in snapshot["gauges"].items()
        ],
    )
    section(
        "histograms",
        [
            (
                name,
                "count={} sum={:.6f} mean={:.6f}".format(
                    data["count"],
                    data["sum"],
                    data["sum"] / data["count"] if data["count"] else 0.0,
                ),
            )
            for name, data in snapshot["histograms"].items()
        ],
    )
    if not lines:
        return "(registry is empty)\n"
    return "\n".join(lines).rstrip("\n") + "\n"
