"""Process-wide metrics registry (DESIGN.md §11).

Three instrument kinds under stable dotted names:

* **counters** — monotonically increasing totals (``repro.read.ops``);
* **gauges** — last-write-wins levels (``repro.cache.node.entries``);
* **histograms** — fixed-bucket latency distributions
  (``repro.read.latency_seconds``), cumulative like Prometheus buckets.

Instruments are striped over independently locked shards exactly like
:class:`~repro.cache.ShardedLRUCache` (``hash(key) % shards``), so
hot-path increments from concurrent operations do not contend on one
lock.  Keys are ``(name, labels)`` pairs; labels are plain dicts frozen
into sorted tuples.

Besides push-style instruments the registry accepts *pull sources*:
snapshot callables (``CacheStats``/``VMStats``/``DHTStats``/
``HealthStats``/… providers) registered under a dotted prefix.  Sources
hold their owner only weakly, so short-lived traced clusters (tests,
benchmarks) vanish from the registry with their owner instead of
accumulating forever.  At :meth:`MetricsRegistry.snapshot` time each live
source's numeric dataclass fields are flattened into gauges named
``prefix.field``.

The process-wide instance lives behind :func:`get_registry`; nothing is
registered into it unless a cluster is created with
``BlobSeerConfig.tracing=True``, so the default configuration leaves the
registry empty and the hot paths untouched.
"""

from __future__ import annotations

import dataclasses
import threading
import weakref
from bisect import bisect_left
from collections.abc import Callable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "get_registry",
]

#: Fixed latency buckets (seconds): 100 µs .. 5 s, then +Inf.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, str] | None) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class _Histogram:
    """Cumulative fixed-bucket histogram (one shard's view)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1


class _Shard:
    """One independently locked stripe of the registry."""

    __slots__ = ("lock", "counters", "gauges", "histograms")

    def __init__(self):
        self.lock = threading.Lock()
        self.counters: dict[MetricKey, float] = {}
        self.gauges: dict[MetricKey, float] = {}
        self.histograms: dict[MetricKey, _Histogram] = {}


@dataclasses.dataclass(frozen=True)
class _Source:
    """A registered pull source: ``read(owner())`` at snapshot time."""

    prefix: str
    labels: tuple[tuple[str, str], ...]
    owner: weakref.ref
    read: Callable


class MetricsRegistry:
    """Sharded counters/gauges/histograms plus weakly held pull sources."""

    def __init__(self, shards: int = 8):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._shards = tuple(_Shard() for _ in range(shards))
        self._sources_lock = threading.Lock()
        self._sources: list[_Source] = []

    def _shard_for(self, key: MetricKey) -> _Shard:
        return self._shards[hash(key) % len(self._shards)]

    # -- push instruments --------------------------------------------------
    def inc(
        self, name: str, amount: float = 1, labels: dict[str, str] | None = None
    ) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        key = _key(name, labels)
        shard = self._shard_for(key)
        with shard.lock:
            shard.counters[key] = shard.counters.get(key, 0) + amount

    def set_gauge(
        self, name: str, value: float, labels: dict[str, str] | None = None
    ) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        key = _key(name, labels)
        shard = self._shard_for(key)
        with shard.lock:
            shard.gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        """Record ``value`` into histogram ``name``."""
        key = _key(name, labels)
        shard = self._shard_for(key)
        with shard.lock:
            histogram = shard.histograms.get(key)
            if histogram is None:
                histogram = shard.histograms[key] = _Histogram(buckets)
            histogram.observe(value)

    def count_fields(
        self,
        prefix: str,
        stats: object,
        labels: dict[str, str] | None = None,
        skip: tuple[str, ...] = (),
    ) -> None:
        """Add every numeric field of a stats dataclass as counters.

        Per-operation result structs (``ReadStats``, ``WriteResult``) are
        deltas, so their fields accumulate naturally under
        ``prefix.field`` counters; non-numeric and nested fields are
        skipped (nested snapshots are better served as pull sources), as
        are the field names listed in ``skip`` (identifiers like
        ``version`` that are not additive).
        """
        for field, value in _numeric_fields(stats):
            if field in skip:
                continue
            self.inc(f"{prefix}.{field}", value, labels)

    # -- pull sources ------------------------------------------------------
    def register_source(
        self,
        prefix: str,
        owner: object,
        read: Callable,
        labels: dict[str, str] | None = None,
    ) -> None:
        """Register ``read(owner)`` to be flattened under ``prefix.*``.

        ``owner`` is held weakly; once it is collected the source is
        pruned at the next snapshot.
        """
        source = _Source(
            prefix=prefix,
            labels=_key("", labels)[1],
            owner=weakref.ref(owner),
            read=read,
        )
        with self._sources_lock:
            self._sources.append(source)

    def _pull_gauges(self) -> dict[MetricKey, float]:
        gauges: dict[MetricKey, float] = {}
        with self._sources_lock:
            live = []
            for source in self._sources:
                owner = source.owner()
                if owner is None:
                    continue
                live.append((source, owner))
            self._sources = [source for source, _owner in live]
        for source, owner in live:
            stats = source.read(owner)
            for field, value in _numeric_fields(stats):
                gauges[(f"{source.prefix}.{field}", source.labels)] = value
        return gauges

    # -- snapshot ----------------------------------------------------------
    def snapshot(self) -> dict:
        """One consistent-enough view of every instrument and source.

        Returns ``{"counters": …, "gauges": …, "histograms": …}`` keyed by
        rendered metric names (``name{k=v,…}`` when labelled).  Pull
        sources appear among the gauges.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for shard in self._shards:
            with shard.lock:
                shard_counters = dict(shard.counters)
                shard_gauges = dict(shard.gauges)
                shard_histograms = {
                    key: (
                        histogram.buckets,
                        list(histogram.counts),
                        histogram.total,
                        histogram.count,
                    )
                    for key, histogram in shard.histograms.items()
                }
            for key, value in shard_counters.items():
                counters[render_key(key)] = value
            for key, value in shard_gauges.items():
                gauges[render_key(key)] = value
            for key, (buckets, counts, total, count) in shard_histograms.items():
                histograms[render_key(key)] = {
                    "buckets": [
                        [bound, counted]
                        for bound, counted in zip(buckets, counts)
                    ]
                    + [["+Inf", counts[-1]]],
                    "sum": total,
                    "count": count,
                }
        for key, value in self._pull_gauges().items():
            gauges[render_key(key)] = value
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def reset(self) -> None:
        """Drop every instrument and source (tests and demo tooling)."""
        for shard in self._shards:
            with shard.lock:
                shard.counters.clear()
                shard.gauges.clear()
                shard.histograms.clear()
        with self._sources_lock:
            self._sources.clear()


def render_key(key: MetricKey) -> str:
    """Human/JSON rendering: ``name`` or ``name{k=v,…}``."""
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def _numeric_fields(stats: object):
    """Yield ``(field_name, float)`` for a stats dataclass (or mapping)."""
    if isinstance(stats, dict):
        items = stats.items()
    elif dataclasses.is_dataclass(stats) and not isinstance(stats, type):
        items = (
            (field.name, getattr(stats, field.name))
            for field in dataclasses.fields(stats)
        )
    else:
        raise TypeError(
            f"expected a stats dataclass or mapping, got {type(stats)!r}"
        )
    for name, value in items:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        yield name, value


#: The process-wide registry; empty until a traced cluster registers into it.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _REGISTRY
