"""Unified observability layer: tracing, metrics, exporters.

See DESIGN.md §11.  Everything here is opt-in: a cluster only creates a
:class:`Tracer` and registers metric sources when its
``BlobSeerConfig.tracing`` knob is on, and the module-level :func:`span`
helper is a strict no-op outside a traced operation — with tracing off
(the default) every counter, timing and byte of client behavior is
bit-identical to a build without this package.

Quick tour::

    from repro import BlobStore, Cluster
    from repro.obs import get_registry, human_text

    cluster = Cluster.in_memory(tracing=True)
    store = BlobStore(cluster)
    # ... do work ...
    print(human_text(get_registry()))      # metrics
    for span in cluster.tracer.spans():    # spans
        print(span.name, span.duration)

``python -m repro.obs dump`` runs a small demo workload and prints the
registry in ``--format human|prometheus|json``.
"""

from .export import human_text, json_snapshot, parse_prometheus, prometheus_text
from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, get_registry
from .trace import Span, Tracer, current_span, span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_span",
    "get_registry",
    "human_text",
    "json_snapshot",
    "parse_prometheus",
    "prometheus_text",
    "span",
]
