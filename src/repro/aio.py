"""The I/O runtime seam: ONE async code path, two execution modes.

Every batched component call — the DHT's per-bucket multi-ops, the provider
manager's per-provider batches, the metadata façade, the client's whole
read/write pipeline — is written exactly once, as a coroutine, against the
small :class:`IORuntime` strategy interface defined here.  The runtime then
decides how the coroutine's awaits actually execute:

* :class:`SyncRuntime` never suspends.  Its ``run_batches`` executes the
  per-backend jobs inline (or on the caller's legacy ``run_batches`` hook /
  ``parallel_io`` thread pool), its sleeps block, and its ``start`` runs a
  coroutine eagerly to completion.  Because none of its awaitables ever
  yields, a coroutine driven against it finishes in a SINGLE
  ``coro.send(None)`` — which is what :func:`run_sync` exploits: the sync
  :class:`~repro.core.blob_store.BlobStore` is a loop-free trampoline over
  the async core, not a second implementation.  No event loop is created,
  no thread is parked, and the pre-async timing and trip accounting are
  preserved bit-for-bit.

* :class:`AsyncRuntime` is the event-loop mode behind
  :class:`~repro.core.async_store.AsyncBlobStore`.  ``run_batches`` yields
  to the loop before executing (so thousands of gathered operations
  genuinely interleave without a single pool thread), ``start`` spawns an
  ``asyncio.Task`` (the write path overlaps its metadata publish with the
  page stores this way), ``gather`` fans sub-traversals out concurrently
  (the read path pipelines level N+1 frontier fetches while level N's
  slower buckets resolve), and ``vm_sync`` turns the version manager's
  blocking condition-variable wait into a publish-notification wait that
  never parks a thread.

The legacy ``run_batches=`` keyword of the sync component APIs (a callable
receiving zero-arg SYNC jobs) is preserved: :meth:`SyncRuntime.run_batches`
wraps each async job in a :func:`run_sync` thunk before handing the list to
the hook, so existing callers, tests and the ``parallel_io`` pool observe
exactly the jobs they always did.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections.abc import Callable, Coroutine
from concurrent.futures import ThreadPoolExecutor

from .errors import VersionNotPublishedError


def run_sync(coro: Coroutine):
    """Drive *coro* to completion without an event loop.

    Correct only for coroutines whose awaitables all complete without
    suspending — which every coroutine of this package does when executed
    against a :class:`SyncRuntime`.  A coroutine that actually yields (for
    example one that awaited a real ``asyncio`` primitive) is closed and
    reported as a programming error rather than silently abandoned.
    """
    try:
        coro.send(None)
    except StopIteration as stop:
        return stop.value
    coro.close()
    raise RuntimeError(
        "run_sync() drove a coroutine that suspended; async-only awaitables "
        "must not be reached under SyncRuntime"
    )


class SyncHandle:
    """Result of :meth:`SyncRuntime.start`: the work already ran eagerly."""

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def done(self) -> bool:
        return True

    async def result(self):
        return self._value


class TaskHandle:
    """Result of :meth:`AsyncRuntime.start`: an in-flight ``asyncio.Task``."""

    __slots__ = ("_task",)

    def __init__(self, task: asyncio.Task):
        self._task = task

    def done(self) -> bool:
        return self._task.done()

    async def result(self):
        return await self._task


Handle = SyncHandle | TaskHandle


class SyncRuntime:
    """Suspension-free runtime: the engine's awaits all complete inline.

    Owns the client-side execution strategy the sync ``BlobStore`` used to
    hold directly: the optional legacy ``run_batches`` hook and the lazy
    ``parallel_io`` thread pool (one persistent pool per runtime — spinning
    a fresh pool per batch would put thread create/join cycles on the hot
    path).  ``pipelined`` is False: the level-by-level traversal and the
    store-then-publish write order — and therefore every trip counter —
    stay exactly as they were before the async core existed.
    """

    pipelined = False

    def __init__(
        self,
        run_batches: Callable[[list], list] | None = None,
        parallel_io: int = 0,
    ):
        self._hook = run_batches
        self._parallel_io = max(int(parallel_io), 0)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- batch execution ---------------------------------------------------
    def execute_sync_jobs(self, jobs: list) -> list:
        """Run zero-arg sync jobs — the legacy ``run_batches`` contract."""
        if self._hook is not None:
            return self._hook(jobs)
        if self._parallel_io > 1 and len(jobs) > 1:
            return list(self._executor().map(lambda job: job(), jobs))
        return [job() for job in jobs]

    async def run_batches(self, jobs: list) -> list:
        # Each async job completes synchronously under this runtime, so a
        # run_sync thunk is a faithful zero-arg sync job — the hook and the
        # pool observe one callable per backend exactly as before.
        return self.execute_sync_jobs(
            [lambda job=job: run_sync(job()) for job in jobs]
        )

    async def retry_call(self, retry, attempt, on_failure=None):
        # The policy's own injected clock sleeps (blocking), preserving the
        # deterministic fakes tests wire in.
        return retry.run(attempt, on_failure=on_failure)

    # -- structured concurrency (degenerate, in submission order) ----------
    def start(self, coro: Coroutine) -> SyncHandle:
        """Run *coro* eagerly to completion; errors raise here, at the exact
        point the pre-async code would have raised them."""
        return SyncHandle(run_sync(coro))

    async def gather(self, *coros: Coroutine):
        return [run_sync(coro) for coro in coros]

    async def sleep(self, seconds: float) -> None:
        if seconds > 0:
            # Blocking inline is SyncRuntime's documented contract: awaits
            # complete eagerly on the calling thread (no event loop exists).
            time.sleep(seconds)  # noqa: ASYNC251

    async def vm_sync(self, vm, blob_id: str, version: int, timeout=None) -> None:
        vm.sync(blob_id, version, timeout)

    # -- lifecycle ---------------------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._parallel_io,
                        thread_name_prefix="blobstore-io",
                    )
        return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


class AsyncRuntime:
    """Event-loop runtime: awaits suspend, operations interleave, no pool.

    ``pipelined`` is True: the engine switches its metadata traversal to the
    bucket-grouped recursive descent (level N+1 fetches start while level N
    resolves) and overlaps the write path's batched ``put_nodes`` publish
    with the page stores.
    """

    pipelined = True

    async def run_batches(self, jobs: list) -> list:
        # Yield to the loop BEFORE touching the backends: every concurrent
        # operation parks here once, so 10k gathered reads are all in
        # flight before the first one completes — cooperative concurrency
        # where the thread pool capped out at hundreds.
        await asyncio.sleep(0)
        if not jobs:
            return []
        if len(jobs) == 1:
            return [await jobs[0]()]
        return list(await asyncio.gather(*(job() for job in jobs)))

    async def retry_call(self, retry, attempt, on_failure=None):
        # Awaitable backoff: a retrying operation parks on the loop instead
        # of blocking the thread (and every other in-flight operation).
        return await retry.arun(attempt, on_failure=on_failure)

    def start(self, coro: Coroutine) -> TaskHandle:
        return TaskHandle(asyncio.ensure_future(coro))

    async def gather(self, *coros: Coroutine):
        if not coros:
            return []
        return list(await asyncio.gather(*coros))

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    async def vm_sync(self, vm, blob_id: str, version: int, timeout=None) -> None:
        """SYNC without parking a thread on the VM's condition variable.

        Subscribes to publish notifications and probes the non-blocking
        :meth:`~repro.version.version_manager.VersionManager.poll_sync`
        between wakeups.  A short poll interval backstops the one
        transition notifications do not cover (aborts publish no new
        version, so they fire no notification).
        """
        loop = asyncio.get_running_loop()
        event = asyncio.Event()

        def listener(lease) -> None:
            if lease.blob_id == blob_id:
                loop.call_soon_threadsafe(event.set)

        vm.subscribe_publications(listener)
        try:
            deadline = None if timeout is None else loop.time() + timeout
            while True:
                if vm.poll_sync(blob_id, version):
                    return
                wait = 0.05
                if deadline is not None:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        if vm.poll_sync(blob_id, version):
                            return
                        raise VersionNotPublishedError(blob_id, version)
                    wait = min(wait, remaining)
                try:
                    await asyncio.wait_for(event.wait(), wait)
                except TimeoutError:
                    pass
                event.clear()
        finally:
            vm.unsubscribe_publications(listener)

    def close(self) -> None:
        """Nothing to release — the runtime owns no threads."""


IORuntime = SyncRuntime | AsyncRuntime


def ensure_runtime(run_batches=None, runtime: IORuntime | None = None) -> IORuntime:
    """Resolve a component call's execution mode.

    The sync component APIs keep their legacy ``run_batches=`` keyword; this
    wraps it (or its absence) in a :class:`SyncRuntime` so the shared async
    implementation is the only implementation.
    """
    if runtime is not None:
        return runtime
    return SyncRuntime(run_batches=run_batches)


async def dispatch_jobs(
    runtime: IORuntime,
    groups: list,
    make_attempt: Callable,
    retry=None,
    capture: tuple[type[BaseException], ...] = (Exception,),
    note_success: Callable[[str], None] | None = None,
    note_failure: Callable[[str], None] | None = None,
) -> list:
    """Run one job per ``(endpoint_id, batch)`` group; outcomes align with
    ``groups`` and exceptions of the ``capture`` classes are returned in
    their slot instead of aborting the dispatch — every live backend's batch
    completes before the caller decides how to surface failures.

    When a :class:`repro.fault.RetryPolicy` is wired, each job retries its
    call on transient errors before giving up (awaitable backoff under an
    event loop, the policy's own injected clock otherwise); every outcome —
    including each failed retry attempt — is reported through the
    ``note_success`` / ``note_failure`` health hooks.
    """

    def make_job(endpoint_id: str, batch):
        attempt = make_attempt(endpoint_id, batch)
        on_failure = None
        if note_failure is not None:
            on_failure = lambda _error, _n: note_failure(endpoint_id)  # noqa: E731

        async def job():
            try:
                if retry is not None and not retry.is_noop:
                    result = await runtime.retry_call(retry, attempt, on_failure)
                else:
                    result = attempt()
            except capture as error:
                if note_failure is not None:
                    note_failure(endpoint_id)
                return error
            if note_success is not None:
                note_success(endpoint_id)
            return result

        return job

    return await runtime.run_batches(
        [make_job(endpoint_id, batch) for endpoint_id, batch in groups]
    )


__all__ = [
    "AsyncRuntime",
    "Handle",
    "IORuntime",
    "SyncHandle",
    "SyncRuntime",
    "TaskHandle",
    "dispatch_jobs",
    "ensure_runtime",
    "run_sync",
]
