"""The paper's motivating scenario (Section 2.2): picture analytics.

A digital-processing company stores every uploaded picture in one huge blob.
Upload sites APPEND pictures concurrently while, at regular intervals, a
map-reduce style analysis READs disjoint parts of a *fixed snapshot* of the
blob and aggregates a contrast-quality score per camera type.  Some map
workers also overwrite pictures in place with an enhanced version (WRITE),
which saves recomputation for future analyses without duplicating the blob.

The example runs the uploads and the analysis concurrently from real threads
against an in-process cluster, demonstrating:

* atomic, totally ordered appends from concurrent writers;
* snapshot isolation: the analysis sees a consistent version while uploads
  keep landing;
* in-place enhancement through versioned WRITEs (old versions intact).

Run with::

    python examples/picture_analytics.py
"""

from __future__ import annotations

import json
import random
import struct
import threading
from collections import defaultdict

from repro import BlobStore, Cluster
from repro.config import KiB

PAGE_SIZE = 4 * KiB
CAMERA_TYPES = ("acme-a1", "acme-a2", "lumina-x", "lumina-y", "pixelpro-9")
RECORD_HEADER = struct.Struct(">I")  # length-prefixed picture records


def encode_picture(camera: str, contrast: float, payload_size: int, rng) -> bytes:
    """A 'picture': JSON metadata header plus an opaque pixel payload."""
    metadata = json.dumps({"camera": camera, "contrast": round(contrast, 4)}).encode()
    pixels = bytes(rng.getrandbits(8) for _ in range(payload_size))
    body = RECORD_HEADER.pack(len(metadata)) + metadata + pixels
    return RECORD_HEADER.pack(len(body)) + body


def decode_pictures(buffer: bytes):
    """Yield (offset, length, metadata dict) for every whole record in buffer."""
    position = 0
    while position + RECORD_HEADER.size <= len(buffer):
        (body_length,) = RECORD_HEADER.unpack_from(buffer, position)
        end = position + RECORD_HEADER.size + body_length
        if end > len(buffer):
            break
        body = buffer[position + RECORD_HEADER.size:end]
        (meta_length,) = RECORD_HEADER.unpack_from(body, 0)
        metadata = json.loads(body[RECORD_HEADER.size:RECORD_HEADER.size + meta_length])
        yield position, end - position, metadata
        position = end


def upload_site(store: BlobStore, blob_id: str, site: int, uploads: int, seed: int):
    """One upload site APPENDing pictures concurrently with the others."""
    rng = random.Random(seed)
    for _ in range(uploads):
        picture = encode_picture(
            camera=rng.choice(CAMERA_TYPES),
            contrast=rng.uniform(0.2, 0.95),
            payload_size=rng.randrange(600, 3000),
            rng=rng,
        )
        store.append(blob_id, picture)


def analyze_snapshot(store: BlobStore, blob_id: str, workers: int):
    """Map-reduce over a fixed snapshot: average contrast per camera type."""
    version = store.get_recent(blob_id)
    size = store.get_size(blob_id, version)
    chunk = -(-size // workers)  # ceil division: disjoint worker ranges
    scores: dict[str, list[float]] = defaultdict(list)
    lock = threading.Lock()

    def map_worker(index: int) -> None:
        offset = index * chunk
        length = min(chunk, size - offset)
        if length <= 0:
            return
        data = store.read(blob_id, version, offset, length)
        for _record_offset, _record_length, metadata in decode_pictures(data):
            with lock:
                scores[metadata["camera"]].append(metadata["contrast"])

    threads = [
        threading.Thread(target=map_worker, args=(index,))
        for index in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Reduce phase: aggregate per key.
    report = {camera: sum(values) / len(values) for camera, values in scores.items()}
    return version, size, report


def enhance_first_picture(store: BlobStore, blob_id: str, version: int) -> int | None:
    """Overwrite the first picture with an 'enhanced' version, in place.

    Returns the new snapshot version, or None when the blob is empty.  Past
    snapshots still return the original picture.
    """
    size = store.get_size(blob_id, version)
    if size == 0:
        return None
    head = store.read(blob_id, version, 0, min(size, 64 * KiB))
    records = list(decode_pictures(head))
    if not records:
        return None
    offset, length, metadata = records[0]
    rng = random.Random(42)
    enhanced = encode_picture(metadata["camera"], min(metadata["contrast"] + 0.05, 1.0),
                              length, rng)[:length]
    new_version = store.write(blob_id, enhanced, offset)
    store.sync(blob_id, new_version)
    return new_version


def main() -> None:
    cluster = Cluster.in_memory(
        num_data_providers=12, num_metadata_providers=12, page_size=PAGE_SIZE
    )
    store = BlobStore(cluster)
    blob_id = store.create()

    sites = 6
    uploads_per_site = 8
    uploaders = [
        threading.Thread(
            target=upload_site,
            args=(store, blob_id, site, uploads_per_site, 1000 + site),
        )
        for site in range(sites)
    ]
    for thread in uploaders:
        thread.start()
    for thread in uploaders:
        thread.join()
    store.sync(blob_id, store.get_recent(blob_id))

    version, size, report = analyze_snapshot(store, blob_id, workers=4)
    print(f"analysed snapshot {version} ({size} bytes, "
          f"{sites * uploads_per_site} pictures uploaded by {sites} sites)")
    for camera in sorted(report):
        print(f"  {camera:12s} average contrast {report[camera]:.3f}")

    enhanced_version = enhance_first_picture(store, blob_id, version)
    if enhanced_version is not None:
        print(f"enhanced the first picture in place -> snapshot {enhanced_version}; "
              f"snapshot {version} still serves the original bytes")
        original = store.read(blob_id, version, 0, 32)
        enhanced = store.read(blob_id, enhanced_version, 0, 32)
        print(f"  first bytes differ between versions: {original != enhanced}")

    print(f"total versions published: {store.get_recent(blob_id)}, "
          f"pages stored: {cluster.stored_page_count()}, "
          f"provider load imbalance (max/mean): "
          f"{cluster.provider_manager.imbalance():.2f}")


if __name__ == "__main__":
    main()
