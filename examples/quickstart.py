"""Quickstart: create a blob, write/append/read, inspect versions, branch.

Run with::

    python examples/quickstart.py

Every primitive of the paper's interface (Section 2.1) appears once:
CREATE, WRITE, APPEND, READ, GET_RECENT, GET_SIZE, SYNC and BRANCH.
"""

from __future__ import annotations

from repro import Blob, BlobStore, Cluster
from repro.config import KiB


def main() -> None:
    # An in-process deployment: 8 data providers, 8 metadata DHT buckets.
    cluster = Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=4 * KiB
    )
    store = BlobStore(cluster)

    # CREATE — the blob starts as the empty, published snapshot 0.
    blob = Blob.create(store)
    print(f"created blob {blob.blob_id}")
    print(f"snapshot 0 size: {blob.get_size(0)} bytes")

    # APPEND — grows the blob; each update produces a new snapshot version.
    v1 = blob.append(b"The quick brown fox ")
    v2 = blob.append(b"jumps over the lazy dog.")
    blob.sync(v2)  # SYNC: wait until our writes are published
    print(f"after appends: version {blob.get_recent()}, size {blob.get_size()}")

    # WRITE — overwrite part of the blob; older snapshots stay readable.
    v3 = blob.write(b"SLEEPY", offset=35)
    blob.sync(v3)
    print("v2:", blob.read(v2, 0, blob.get_size(v2)).decode())
    print("v3:", blob.read(v3, 0, blob.get_size(v3)).decode())

    # READ of a past version — versioning gives free rollback.
    print("v1:", blob.read(v1, 0, blob.get_size(v1)).decode())

    # BRANCH — cheap: the new blob shares every page with the original.
    draft = blob.branch(v2)
    v_draft = draft.append(b" (draft edits)")
    draft.sync(v_draft)
    print("branch:", draft.read_all().decode())
    print("main  :", blob.read_all().decode())

    # Storage accounting: only newly written pages consume space.
    print(f"pages stored: {cluster.stored_page_count()}, "
          f"metadata tree nodes: {cluster.metadata_node_count()}, "
          f"bytes on providers: {cluster.storage_bytes_used()}")


if __name__ == "__main__":
    main()
