"""Operating a BlobSeer deployment over time: diff, report, garbage-collect.

A curation team maintains a large versioned dataset blob.  Analysts keep
appending new measurement batches and occasionally patch bad records in
place; each change is a new snapshot.  Periodically the team

1. inspects *what changed* between the snapshot that was last validated and
   the current one (page-granular diff — cheap because unmodified subtrees
   are physically shared),
2. prints a storage/load report for the deployment, and
3. retires snapshots that no longer need to be reproducible, reclaiming the
   pages only they reference.

This exercises the operational tooling layered on top of the paper's design
(`repro.tools`): versioning is only affordable in production if you can also
see and bound what it costs.

Run with::

    python examples/dataset_curation.py
"""

from __future__ import annotations

import random

from repro import BlobStore, Cluster
from repro.config import KiB
from repro.tools import cluster_report, collect_garbage, diff_versions

PAGE_SIZE = 1 * KiB
BATCH_PAGES = 8


def ingest_batches(store: BlobStore, blob_id: str, batches: int, rng) -> None:
    """Append measurement batches, occasionally patching earlier records."""
    for batch in range(batches):
        payload = bytes(rng.getrandbits(8) for _ in range(BATCH_PAGES * PAGE_SIZE))
        store.append(blob_id, payload)
        if batch % 3 == 2:
            # A correction: overwrite one earlier page-sized record in place.
            size = store.get_size(blob_id, store.get_recent(blob_id))
            offset = rng.randrange(0, size // PAGE_SIZE) * PAGE_SIZE
            store.write(blob_id, bytes(PAGE_SIZE), offset)
    store.sync(blob_id, store.get_recent(blob_id))


def describe_changes(store: BlobStore, cluster: Cluster, blob_id: str,
                     validated: int) -> None:
    current = store.get_recent(blob_id)
    changes = diff_versions(cluster, blob_id, validated, current)
    added = sum(c.page_count for c in changes if c.kind == "added")
    modified = sum(c.page_count for c in changes if c.kind == "modified")
    print(f"since validated snapshot {validated} (now at {current}): "
          f"{added} pages added, {modified} pages corrected, "
          f"{len(changes)} changed ranges")
    for change in changes[:5]:
        start, length = change.byte_range(PAGE_SIZE)
        print(f"  {change.kind:9s} bytes [{start}, {start + length})")
    if len(changes) > 5:
        print(f"  ... and {len(changes) - 5} more ranges")


def retire_old_snapshots(store: BlobStore, cluster: Cluster, blob_id: str,
                         keep_last: int) -> None:
    current = store.get_recent(blob_id)
    keep = list(range(max(1, current - keep_last + 1), current + 1))
    report = collect_garbage(cluster, {blob_id: keep})
    print(f"retired snapshots below {keep[0]}: reclaimed {report.deleted_pages} pages "
          f"({report.reclaimed_bytes} bytes) "
          f"and {report.deleted_nodes} metadata nodes; "
          f"{report.reachable_pages} pages remain reachable")


def main() -> None:
    rng = random.Random(7)
    cluster = Cluster.in_memory(
        num_data_providers=10, num_metadata_providers=10, page_size=PAGE_SIZE
    )
    store = BlobStore(cluster)
    blob_id = store.create()

    ingest_batches(store, blob_id, batches=9, rng=rng)
    validated = store.get_recent(blob_id)
    print(f"validated snapshot: {validated} "
          f"({store.get_size(blob_id, validated)} bytes)")

    ingest_batches(store, blob_id, batches=6, rng=rng)
    describe_changes(store, cluster, blob_id, validated)

    print()
    print(cluster_report(cluster).format())
    print()

    retire_old_snapshots(store, cluster, blob_id, keep_last=4)
    print()
    print(cluster_report(cluster).format())

    # The kept snapshots are still fully readable after collection.
    current = store.get_recent(blob_id)
    size = store.get_size(blob_id, current)
    assert len(store.read(blob_id, current, 0, size)) == size
    print(f"\nlatest snapshot {current} verified readable after collection "
          f"({size} bytes)")


if __name__ == "__main__":
    main()
