"""Async quickstart: the paper's primitives as awaitables on one event loop.

Run with::

    python examples/async_quickstart.py

The same CREATE / WRITE / APPEND / READ / SYNC / BRANCH surface as
``examples/quickstart.py``, but through :class:`repro.AsyncBlobStore` — and
a fan-out at the end that gathers many concurrent reads on a single loop
with zero per-operation threads, which is where the async core earns its
keep: reads pipeline their metadata-tree descent across DHT buckets, writes
overlap their metadata publish with the page stores, and a blocked SYNC
parks on the loop instead of a thread.
"""

from __future__ import annotations

import asyncio

from repro import AsyncBlobStore, Cluster
from repro.config import KiB


async def main_async() -> None:
    # An in-process deployment: 8 data providers, 8 metadata DHT buckets.
    cluster = Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=4 * KiB
    )
    async with AsyncBlobStore(cluster) as store:
        # CREATE — the blob starts as the empty, published snapshot 0.
        blob_id = await store.create()
        print(f"created blob {blob_id}")

        # APPEND — each update produces a new snapshot version; SYNC waits
        # until our writes are published ("read your writes").
        v1 = await store.append(blob_id, b"The quick brown fox ")
        v2 = await store.append(blob_id, b"jumps over the lazy dog.")
        await store.sync(blob_id, v2)
        size = await store.get_size(blob_id, v2)
        print(f"after appends: version {await store.get_recent(blob_id)}, "
              f"size {size}")

        # WRITE — overwrite part of the blob; older snapshots stay readable.
        v3 = await store.write(blob_id, b"SLEEPY", 35)
        await store.sync(blob_id, v3)
        v2_text = await store.read(blob_id, v2, 0, size)
        v3_text = await store.read(blob_id, v3, 0, size)
        print("v2:", v2_text.decode())
        print("v3:", v3_text.decode())
        v1_size = await store.get_size(blob_id, v1)
        print("v1:", (await store.read(blob_id, v1, 0, v1_size)).decode())

        # BRANCH — cheap: the new blob shares every page with the original.
        draft = await store.branch(blob_id, v2)
        v_draft = await store.append(draft, b" (draft edits)")
        await store.sync(draft, v_draft)
        draft_size = await store.get_size(draft, v_draft)
        print("branch:", (await store.read(draft, v_draft, 0, draft_size)).decode())

        # The async payoff: gather hundreds of concurrent reads on ONE loop.
        # The *_ex variants return the full trip accounting per operation.
        reads = [
            store.read_ex(blob_id, v3, index % size, 1) for index in range(500)
        ]
        results = await asyncio.gather(*reads)
        trips = sum(stats.data_round_trips for _data, stats in results)
        print(f"gathered {len(results)} concurrent reads "
              f"({trips} provider round trips, 0 extra threads)")


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
