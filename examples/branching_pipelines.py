"""Cheap branching: explore alternative processing pipelines on one dataset.

The paper motivates BRANCH with "exploring alternative data processing
algorithms starting from the same blob version" (Section 1).  This example
stores a dataset of numeric samples in a blob, takes a snapshot, branches it
twice and lets two different cleaning pipelines evolve independently — one
clips outliers, the other rescales every record — then compares the results.
Because branches share unmodified pages with the original and every snapshot
shares its unmodified pages with the previous one, the whole history of both
pipelines consumes a small fraction of what naive per-version full copies
would need.

Run with::

    python examples/branching_pipelines.py
"""

from __future__ import annotations

import struct

from repro import BlobStore, Cluster

SAMPLE = struct.Struct(">d")
# A small page size keeps the copy-on-write granularity close to one record,
# so the many single-record overwrites of pipeline A stay cheap.
PAGE_SIZE = 64


def write_dataset(store: BlobStore, samples: list[float]) -> str:
    """Store samples as fixed-width records in a fresh blob."""
    blob_id = store.create()
    payload = b"".join(SAMPLE.pack(value) for value in samples)
    version = store.append(blob_id, payload)
    store.sync(blob_id, version)
    return blob_id


def read_dataset(
    store: BlobStore, blob_id: str, version: int | None = None
) -> list[float]:
    if version is None:
        version = store.get_recent(blob_id)
    size = store.get_size(blob_id, version)
    data = store.read(blob_id, version, 0, size)
    return [
        SAMPLE.unpack_from(data, offset)[0]
        for offset in range(0, size, SAMPLE.size)
    ]


def clip_outliers(store: BlobStore, blob_id: str, limit: float) -> int:
    """Pipeline A: overwrite, in place, every sample above ``limit``."""
    samples = read_dataset(store, blob_id)
    version = store.get_recent(blob_id)
    for index, value in enumerate(samples):
        if abs(value) > limit:
            version = store.write(
                blob_id,
                SAMPLE.pack(limit if value > 0 else -limit),
                index * SAMPLE.size,
            )
    store.sync(blob_id, version)
    return version


def rescale(store: BlobStore, blob_id: str, factor: float) -> int:
    """Pipeline B: rewrite the whole dataset scaled by ``factor``."""
    samples = read_dataset(store, blob_id)
    payload = b"".join(SAMPLE.pack(value * factor) for value in samples)
    version = store.write(blob_id, payload, 0)
    store.sync(blob_id, version)
    return version


def main() -> None:
    cluster = Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=PAGE_SIZE
    )
    store = BlobStore(cluster)

    raw = [float(x) for x in (1, 2, 3, 250, 5, -8, 13, -400, 21, 34, 55, 89)] * 64
    dataset = write_dataset(store, raw)
    snapshot = store.get_recent(dataset)
    print(f"dataset blob {dataset}: {len(raw)} samples at snapshot {snapshot}")

    # Branch the dataset twice; each pipeline evolves its own blob.
    clipped_branch = store.branch(dataset, snapshot)
    rescaled_branch = store.branch(dataset, snapshot)

    clip_outliers(store, clipped_branch, limit=100.0)
    rescale(store, rescaled_branch, factor=0.5)

    original = read_dataset(store, dataset, snapshot)
    clipped = read_dataset(store, clipped_branch)
    rescaled = read_dataset(store, rescaled_branch)

    mean_original = sum(original) / len(original)
    print(f"original  max={max(original):8.1f} mean={mean_original:8.2f}")
    print(f"clipped   max={max(clipped):8.1f} mean={sum(clipped) / len(clipped):8.2f}")
    mean_rescaled = sum(rescaled) / len(rescaled)
    print(f"rescaled  max={max(rescaled):8.1f} mean={mean_rescaled:8.2f}")
    assert max(clipped) <= 100.0
    assert abs(max(rescaled) - max(original) * 0.5) < 1e-9
    # The original snapshot is untouched by either pipeline.
    assert read_dataset(store, dataset, snapshot) == original

    # Storage accounting: what would naive versioning (a full copy of the
    # blob per published snapshot) have stored for the same history?
    full_copy_bytes = 0
    for blob_id in (dataset, clipped_branch, rescaled_branch):
        first_own_version = 1 if blob_id == dataset else snapshot + 1
        for version in range(first_own_version, store.get_recent(blob_id) + 1):
            full_copy_bytes += store.get_size(blob_id, version)
    stored = cluster.storage_bytes_used()
    versions_total = sum(
        store.get_recent(blob_id)
        for blob_id in (dataset, clipped_branch, rescaled_branch)
    )
    print(f"{versions_total} snapshots across 3 blobs; "
          f"physically stored: {stored} bytes; "
          f"full copies would need {full_copy_bytes} bytes "
          f"({full_copy_bytes / stored:.1f}x more)")


if __name__ == "__main__":
    main()
