"""Warm repeated reads: zero round trips on every axis.

Run with::

    python examples/warm_reads.py

A BlobSeer READ talks to three remote parties: the version manager (is the
snapshot published, how big is it), the metadata DHT (walk the segment
tree) and the data providers (fetch the pages).  Because everything a
published snapshot references is immutable, each leg has a never-invalidate
client cache:

* the version *lease* cache (PR 4)    — ``vm_round_trips``       -> 0
* the metadata *node* cache (PR 3)    — ``metadata_round_trips`` -> 0
* the page *payload* cache (PR 5)     — ``data_round_trips``     -> 0

This example reads the same range twice and prints each leg's round-trip
counter plus the page-cache statistics: the first (cold) read pays every
leg, the repeated (warm) read is served entirely from process memory.
"""

from __future__ import annotations

from repro import BlobStore, Cluster, NodeCache, PageCache
from repro.config import KiB
from repro.vm import LeaseCache


def main() -> None:
    cluster = Cluster.in_memory(
        num_data_providers=8, num_metadata_providers=8, page_size=4 * KiB
    )
    store = BlobStore(cluster)

    blob_id = store.create()
    payload = b"immutable pages never go stale " * 2048  # ~64 KiB
    version = store.append(blob_id, payload)
    store.sync(blob_id, version)

    # A separate reader: the writer's own caches are already warm from the
    # write (publish-time write-through), which would hide the cold trips
    # this example wants to show — so give the reader private cold caches.
    reader = BlobStore(
        cluster,
        node_cache=NodeCache(),
        page_cache=PageCache(),
        version_leases=LeaseCache(cluster.version_manager, ttl=30.0),
    )

    _, cold = reader.read_ex(blob_id, version, 0, len(payload))
    _, warm = reader.read_ex(blob_id, version, 0, len(payload))

    print("leg                      cold  warm")
    for leg, cold_trips, warm_trips in [
        ("version-manager trips", cold.vm_round_trips, warm.vm_round_trips),
        ("metadata round trips", cold.metadata_round_trips,
         warm.metadata_round_trips),
        ("data round trips", cold.data_round_trips, warm.data_round_trips),
    ]:
        print(f"{leg:<24} {cold_trips:>4}  {warm_trips:>4}")
    assert warm.vm_round_trips == 0
    assert warm.metadata_round_trips == 0
    assert warm.data_round_trips == 0

    pages = warm.pages_fetched
    print(f"\nwarm read served {pages} page ranges from the page cache "
          f"({warm.page_cache_hits} hits, hit rate "
          f"{warm.page_cache.hit_rate:.2f})")
    stats = reader.page_cache_stats()
    print(f"page cache: {stats.entries} entries, {stats.bytes} estimated "
          f"bytes, {stats.evictions} evictions")
    print("warm read: zero round trips on all three legs")


if __name__ == "__main__":
    main()
