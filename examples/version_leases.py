"""Version leases and the group-commit version-manager service.

Run with::

    python examples/version_leases.py

The version manager is the one serialization point of BlobSeer's design:
every update needs a ticket from it and every read used to check
publication with it.  This example shows the PR 4 service machinery that
takes it off the hot path:

* lease configuration through ``BlobSeerConfig.vm_lease_*``;
* ``ReadStats.vm_round_trips`` dropping to zero for warm repeated reads;
* the group-commit counters (``VMStats``) under concurrent writers.
"""

from __future__ import annotations

import threading

from repro import BlobStore, Cluster, LeaseCache
from repro.config import BlobSeerConfig, KiB
from repro.version.records import RegisterRequest


def main() -> None:
    # Lease knobs live on the deployment config: a 30-second recency lease
    # (renewed by publish notifications, so it is never stale in-process)
    # and room for 1024 leased blobs/facts per cache.
    config = BlobSeerConfig(
        page_size=4 * KiB,
        num_data_providers=8,
        num_metadata_providers=8,
        vm_lease_ttl=30.0,
        vm_lease_entries=1024,
    )
    cluster = Cluster(config)
    store = BlobStore(cluster)

    blob_id = store.create()
    version = store.append(blob_id, b"lease me" * 8 * KiB)
    store.sync(blob_id, version)

    # A separate reader with its own (cold) lease cache — the writer's
    # cache is already warm from its own publish notifications, so sharing
    # it would hide the cold trip this example wants to show.
    reader = BlobStore(
        cluster, version_leases=LeaseCache(cluster.version_manager, ttl=30.0)
    )
    # First read: the lease cache asks the version manager for the blob
    # record and the published size — two round trips, never more.
    _, cold = reader.read_ex(blob_id, version, 0, 16 * KiB)
    # Repeated read: the publication check is served entirely from the
    # lease cache — zero version-manager round trips.
    _, warm = reader.read_ex(blob_id, version, 0, 16 * KiB)
    print(f"cold read: vm_round_trips={cold.vm_round_trips}")
    print(f"warm read: vm_round_trips={warm.vm_round_trips} (lease hit)")
    assert cold.vm_round_trips == 2
    assert warm.vm_round_trips == 0

    # GET_RECENT is leased too; publish notifications renew it, so the
    # answer always matches the version manager's.
    print(f"leased get_recent: {store.get_recent(blob_id)} "
          f"(vm says {cluster.version_manager.get_recent(blob_id)})")

    # Concurrent appenders share the cluster's ticket window: their
    # register_update calls coalesce into multi_register batches whenever
    # they overlap (in-process registrations are so fast that overlap is
    # rare; a networked VM round makes the batches large — see ABL-vm).
    def appender(index: int) -> None:
        for _ in range(4):
            store.append(blob_id, bytes([index]) * 4 * KiB)

    threads = [threading.Thread(target=appender, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # A batch can also be handed to the service pre-assembled — one lock
    # round issues four tickets in submission order.
    tickets = cluster.version_manager.multi_register(
        [
            RegisterRequest(blob_id=blob_id, size=4 * KiB, is_append=True)
            for _ in range(4)
        ]
    )
    for ticket in tickets:
        cluster.version_manager.abort_update(blob_id, ticket.version, "demo only")

    stats = cluster.version_manager.vm_stats()
    print(f"tickets issued: {stats.register_requests} in "
          f"{stats.register_batches} lock rounds "
          f"(largest batch {stats.register_max_batch}, "
          f"{stats.lock_rounds_saved} rounds saved by group commit)")

    lease_stats = store.lease_stats()
    print(f"lease cache: hit rate {lease_stats.hit_rate:.2f}, "
          f"{lease_stats.renewals} publish renewals, "
          f"{lease_stats.leases} leases / {lease_stats.facts} facts held")


if __name__ == "__main__":
    main()
