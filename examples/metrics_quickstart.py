"""Observability quickstart: traces, metrics and exporters.

Run with::

    python examples/metrics_quickstart.py

``BlobSeerConfig(tracing=True)`` turns the observability layer on for one
cluster: every operation opens a trace whose child spans time each leg
(VM check, metadata levels, data waves), per-operation counters and
latency histograms accumulate in the process-wide metrics registry, and
the cluster's component snapshots (VM, DHT, caches, provider health)
appear as pull-source gauges.  With the default ``tracing=False`` all of
this is a strict no-op — every counter stays bit-identical.

This example runs one write plus a cold and a warm read, prints the
per-leg span breakdown of both reads, and finishes with the Prometheus
rendering of a few registry series.
"""

from __future__ import annotations

from repro import BlobStore, Cluster, NodeCache, PageCache
from repro.config import KiB
from repro.obs import get_registry, prometheus_text


def main() -> None:
    registry = get_registry()
    registry.reset()  # examples are re-runnable; the registry is process-wide
    cluster = Cluster.in_memory(
        num_data_providers=8,
        num_metadata_providers=8,
        page_size=4 * KiB,
        tracing=True,
    )
    store = BlobStore(cluster)
    blob_id = store.create()
    payload = b"every leg of this read is on the record " * 1638  # ~64 KiB
    version = store.append(blob_id, payload)
    store.sync(blob_id, version)

    # A cold reader with private caches, so the metadata walk and the data
    # fetch genuinely travel; the second read is warm and mostly local.
    reader = BlobStore(cluster, node_cache=NodeCache(), page_cache=PageCache())
    for label in ("cold", "warm"):
        cluster.tracer.clear()
        reader.read_ex(blob_id, version, 0, len(payload))
        root = next(
            item for item in cluster.tracer.spans("read")
            if item.parent_id is None
        )
        print(f"{label} read: {root.duration * 1000:.3f} ms total")
        for item in cluster.tracer.spans():
            if item.parent_id == root.span_id:
                print(
                    f"  {item.name:<12} {item.duration * 1000:>8.3f} ms  "
                    f"{item.attrs}"
                )

    print()
    print("a few registry series, Prometheus-rendered:")
    for line in prometheus_text(registry).splitlines():
        if line.startswith(("repro_read_ops", "repro_read_bytes_read",
                            "repro_vm_", "repro_health_suspects")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
