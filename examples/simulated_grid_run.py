"""Drive the simulated Grid'5000-like testbed directly from the public API.

This example reproduces, at a reduced scale, both experiments of the paper's
evaluation (Section 5) and prints the same series the figures show:

* append throughput while a blob grows (Figure 2(a));
* per-reader read throughput for 1..N concurrent readers (Figure 2(b)).

For the full-scale runs use the benchmark CLI instead::

    blobseer-bench fig2a --scale paper
    blobseer-bench fig2b --scale paper

Run with::

    python examples/simulated_grid_run.py
"""

from __future__ import annotations

from repro.config import KiB, MiB
from repro.sim import (
    run_append_growth_experiment,
    run_read_concurrency_experiment,
)


def main() -> None:
    print("Figure 2(a)-style run: single client appending 8 MiB per APPEND")
    for page_size in (64 * KiB, 256 * KiB):
        samples = run_append_growth_experiment(
            num_provider_nodes=40,
            page_size=page_size,
            append_bytes=8 * MiB,
            num_appends=6,
        )
        series = ", ".join(
            f"{sample.pages_total}p:{sample.bandwidth_mbps:.1f}" for sample in samples
        )
        print(f"  {page_size // KiB:>4d} KiB pages  (pages:MB/s)  {series}")

    print()
    print("Figure 2(b)-style run: concurrent readers on disjoint 8 MiB chunks")
    samples = run_read_concurrency_experiment(
        num_provider_nodes=40,
        page_size=64 * KiB,
        blob_bytes=512 * MiB,
        chunk_bytes=8 * MiB,
        reader_counts=[1, 20, 40],
    )
    for sample in samples:
        print(
            f"  {sample.readers:>3d} readers  avg {sample.avg_bandwidth_mbps:6.1f} MB/s"
            f"  aggregate {sample.aggregate_bandwidth_mbps:8.1f} MB/s"
        )
    single = samples[0].avg_bandwidth_mbps
    most = samples[-1].avg_bandwidth_mbps
    retained = 100 * most / single
    print(f"  per-reader bandwidth retained at full concurrency: {retained:.0f}%")


if __name__ == "__main__":
    main()
