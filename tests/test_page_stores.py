"""Unit tests for the page store backends (memory, file, null)."""

import pytest

from repro.errors import PageNotFoundError
from repro.providers.page_store import (
    FilePageStore,
    InMemoryPageStore,
    NullPageStore,
)


@pytest.fixture(params=["memory", "file"])
def real_store(request, tmp_path):
    """Backends that keep actual payload bytes."""
    if request.param == "memory":
        return InMemoryPageStore()
    return FilePageStore(str(tmp_path / "pages"))


class TestPayloadStores:
    def test_put_get_roundtrip(self, real_store):
        real_store.put("p1", b"hello world")
        assert real_store.get("p1") == b"hello world"

    def test_partial_reads(self, real_store):
        real_store.put("p1", b"0123456789")
        assert real_store.get("p1", offset=2, length=3) == b"234"
        assert real_store.get("p1", offset=5) == b"56789"

    def test_missing_page(self, real_store):
        with pytest.raises(PageNotFoundError):
            real_store.get("ghost")
        with pytest.raises(PageNotFoundError):
            real_store.page_info("ghost")

    def test_delete(self, real_store):
        real_store.put("p1", b"data")
        assert real_store.delete("p1") is True
        assert real_store.delete("p1") is False
        assert not real_store.contains("p1")

    def test_accounting(self, real_store):
        real_store.put("p1", b"aaaa")
        real_store.put("p2", b"bbbbbb")
        assert real_store.page_count() == 2
        assert real_store.bytes_used() == 10
        info = real_store.page_info("p2")
        assert info.size == 6
        assert info.checksum.startswith("crc32:")

    def test_overwrite_updates_accounting(self, real_store):
        real_store.put("p1", b"aaaa")
        real_store.put("p1", b"bb")
        assert real_store.page_count() == 1
        assert real_store.get("p1") == b"bb"

    def test_empty_page(self, real_store):
        real_store.put("p1", b"")
        assert real_store.get("p1") == b""
        assert real_store.page_info("p1").size == 0


class TestFilePageStoreRestart:
    def test_index_rebuilt_from_directory(self, tmp_path):
        directory = str(tmp_path / "pages")
        store = FilePageStore(directory)
        store.put("p1", b"persisted")
        reopened = FilePageStore(directory)
        assert reopened.contains("p1")
        assert reopened.get("p1") == b"persisted"
        assert reopened.bytes_used() == 9

    def test_path_traversal_is_neutralized(self, tmp_path):
        directory = tmp_path / "pages"
        store = FilePageStore(str(directory))
        store.put("../escape", b"x")
        assert store.get("../escape") == b"x"
        assert not (tmp_path / "escape").exists()


class TestNullPageStore:
    def test_records_sizes_only(self):
        store = NullPageStore()
        store.put("p1", b"xxxx")
        store.put_virtual("p2", 1024)
        assert store.page_count() == 2
        assert store.bytes_used() == 4 + 1024

    def test_reads_return_zero_bytes(self):
        store = NullPageStore()
        store.put_virtual("p1", 100)
        assert store.get("p1") == bytes(100)
        assert store.get("p1", offset=90, length=20) == bytes(10)

    def test_missing_page(self):
        store = NullPageStore()
        with pytest.raises(PageNotFoundError):
            store.get("nope")

    def test_delete_and_info(self):
        store = NullPageStore()
        store.put_virtual("p1", 64)
        assert store.page_info("p1").size == 64
        assert store.delete("p1") is True
        assert store.bytes_used() == 0
