"""Tests for the network model, the simulated deployment and clients."""

import pytest

from repro.config import KiB, MiB, SimConfig
from repro.errors import InvalidRangeError
from repro.sim.client import SimClient
from repro.sim.deployment import SimDeployment
from repro.sim.engine import Simulator
from repro.sim.network import Network, SimNode

CFG = SimConfig()


class TestNetworkPrimitives:
    def _run(self, generator):
        sim = Simulator()
        return sim, sim.run_process(generator)

    def test_push_charges_latency_and_serialization(self):
        sim = Simulator()
        network = Network(sim, CFG)
        src, dst = SimNode(sim, "a"), SimNode(sim, "b")
        sim.run_process(network.push(src, dst, 1 * MiB))
        expected = CFG.rpc_overhead + 1 * MiB / CFG.nic_bandwidth + CFG.latency + (
            1 * MiB / CFG.nic_bandwidth
        )
        assert sim.now == pytest.approx(expected)
        assert network.bytes_moved == 1 * MiB

    def test_fetch_round_trip_includes_two_latencies(self):
        sim = Simulator()
        network = Network(sim, CFG)
        client, server = SimNode(sim, "c"), SimNode(sim, "s")
        sim.run_process(network.fetch(client, server, 64 * KiB, service_time=1e-3))
        assert sim.now > 2 * CFG.latency + 1e-3
        assert server.tx.requests == 1
        assert client.rx.requests == 1

    def test_concurrent_pushes_share_the_sender_nic(self):
        sim = Simulator()
        network = Network(sim, CFG)
        src = SimNode(sim, "client")
        destinations = [SimNode(sim, f"p{i}") for i in range(4)]
        for dst in destinations:
            sim.process(network.push(src, dst, 1 * MiB))
        sim.run()
        # Four 1 MiB payloads serialized through one NIC: at least 4 MiB / bw.
        assert sim.now >= 4 * MiB / CFG.nic_bandwidth

    def test_small_rpc_is_cheap(self):
        sim = Simulator()
        network = Network(sim, CFG)
        a, b = SimNode(sim, "a"), SimNode(sim, "b")
        sim.run_process(network.small_rpc(a, b, service_time=1e-5))
        assert sim.now < 1e-3


class TestSimDeployment:
    def test_topology_mapping(self):
        deployment = SimDeployment(num_provider_nodes=5, page_size=64 * KiB)
        assert deployment.node_for_provider("data-0003").name == "provider-node-0003"
        # Co-deployed metadata: bucket i lives on provider node i.
        assert deployment.node_for_bucket("meta-0002").name == "provider-node-0002"
        assert deployment.client_node(0).name == "client-0000"
        assert deployment.client_node(0) is deployment.client_node(0)

    def test_dedicated_metadata_node_when_not_co_deployed(self):
        deployment = SimDeployment(
            num_provider_nodes=4, co_deploy_metadata=False, page_size=64 * KiB
        )
        assert deployment.config.num_metadata_providers == 1
        assert deployment.node_for_bucket("meta-0000").name == "metadata-node-0000"

    def test_co_located_clients_reuse_provider_nodes(self):
        deployment = SimDeployment(
            num_provider_nodes=3, page_size=64 * KiB, co_locate_clients=True
        )
        assert deployment.client_node(1).name == "provider-node-0001"

    def test_populate_blob_builds_real_state(self):
        deployment = SimDeployment(num_provider_nodes=4, page_size=64 * KiB)
        blob_id = deployment.create_blob()
        version = deployment.populate_blob(blob_id, 8 * MiB, append_bytes=2 * MiB)
        assert version == 4
        vm = deployment.version_manager
        assert vm.get_recent(blob_id) == 4
        assert vm.get_size(blob_id, 4) == 8 * MiB
        assert deployment.provider_manager.total_pages() == 128
        assert deployment.metadata_provider.node_count() > 128

    def test_untimed_append_requires_page_alignment(self):
        deployment = SimDeployment(num_provider_nodes=2, page_size=64 * KiB)
        blob_id = deployment.create_blob()
        with pytest.raises(ValueError):
            deployment.untimed_append(blob_id, 1000)

    def test_reset_timing_keeps_storage_state(self):
        deployment = SimDeployment(num_provider_nodes=3, page_size=64 * KiB)
        blob_id = deployment.create_blob()
        deployment.populate_blob(blob_id, 2 * MiB, append_bytes=1 * MiB)
        old_sim = deployment.simulator
        deployment.reset_timing()
        assert deployment.simulator is not old_sim
        assert deployment.simulator.now == 0.0
        assert deployment.version_manager.get_recent(blob_id) == 2


class TestSimClient:
    def test_append_outcome_matches_real_state(self):
        deployment = SimDeployment(num_provider_nodes=8, page_size=64 * KiB)
        blob_id = deployment.create_blob()
        client = SimClient(deployment, 0)
        outcome = deployment.simulator.run_process(
            client.append_process(blob_id, 2 * MiB)
        )
        assert outcome.version == 1
        assert outcome.pages_written == 32
        assert outcome.metadata_nodes_written == 63  # full tree over 32 pages
        assert outcome.elapsed > 0
        assert 0 < outcome.bandwidth < CFG.nic_bandwidth
        assert deployment.version_manager.get_size(blob_id, 1) == 2 * MiB

    def test_unaligned_simulated_append_rejected(self):
        deployment = SimDeployment(num_provider_nodes=2, page_size=64 * KiB)
        blob_id = deployment.create_blob()
        client = SimClient(deployment, 0)
        with pytest.raises(InvalidRangeError):
            deployment.simulator.run_process(client.append_process(blob_id, 1000))

    def test_read_outcome_and_errors(self):
        deployment = SimDeployment(num_provider_nodes=8, page_size=64 * KiB)
        blob_id = deployment.create_blob()
        deployment.populate_blob(blob_id, 4 * MiB, append_bytes=4 * MiB)
        client = SimClient(deployment, 0)
        outcome = deployment.simulator.run_process(
            client.read_process(blob_id, 1, 0, 1 * MiB)
        )
        assert outcome.pages_fetched == 16
        assert outcome.metadata_nodes_fetched >= 16
        assert outcome.bandwidth > 0
        with pytest.raises(InvalidRangeError):
            deployment.simulator.run_process(
                client.read_process(blob_id, 1, 0, 64 * MiB)
            )

    def test_sequential_appends_give_stable_bandwidth(self):
        deployment = SimDeployment(num_provider_nodes=8, page_size=64 * KiB)
        blob_id = deployment.create_blob()
        client = SimClient(deployment, 0)
        bandwidths = []
        for _ in range(4):
            outcome = deployment.simulator.run_process(
                client.append_process(blob_id, 1 * MiB)
            )
            bandwidths.append(outcome.bandwidth)
        assert max(bandwidths) / min(bandwidths) < 1.1
