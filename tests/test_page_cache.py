"""Tests for the shared page payload cache (:mod:`repro.cache.page_cache`).

Mirrors ``test_node_cache.py`` one layer down — the four concerns, for page
bytes instead of tree nodes:

* the :class:`PageCache` data structure — payload-dominated byte weights,
  LRU eviction, the page-group index (all sub-ranges of one page share a
  shard and are discarded together), and budget enforcement under
  concurrent readers;
* the sharing semantics — stores on one cluster warm each other so warm
  repeated reads cost ZERO data round trips, clusters sharing the
  process-wide default cache stay isolated through their namespaces, GC
  discards exactly the pages it deletes, and ``page_cache_entries=None``
  disables the subsystem;
* end-to-end correctness — a hypothesis property drives random APPEND /
  WRITE / BRANCH histories and checks page-cached reads are byte-identical
  to uncached reads, including under eviction pressure from a tiny budget;
* the simulator — warm repeated reads skip the provider NIC pipes
  entirely (``data_round_trips == 0``, hit rate 1.0) and a cache clear
  restores the cold regime.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BlobStore, Cluster, PageCache
from repro.cache import VirtualPagePayload, page_weight, shared_page_cache
from repro.sim.client import SimClient
from repro.sim.deployment import SimDeployment
from repro.tools.gc import collect_garbage

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


def small_cluster(**overrides) -> Cluster:
    return Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE,
        **overrides,
    )


class TestPageCacheStructure:
    def test_payload_bytes_dominate_entry_weight(self):
        small = page_weight(("ns", "p", 0, 16), b"x" * 16)
        large = page_weight(("ns", "p", 0, 4096), b"x" * 4096)
        assert large - small == 4096 - 16

    def test_byte_budget_evicts_lru_payloads(self):
        payload = b"d" * 100
        weight = page_weight(("ns", "p-000", 0, 100), payload)
        cache = PageCache(max_entries=10_000, max_bytes=4 * weight, shards=1)
        for index in range(12):
            cache.put(("ns", f"p-{index:03d}", 0, 100), payload)
            assert cache.bytes_used() <= cache.max_bytes
        stats = cache.stats()
        assert stats.entries == 4
        assert stats.evictions == 8
        # LRU order: the most recently inserted ranges survive.
        assert cache.get(("ns", "p-011", 0, 100)) == payload
        assert cache.get(("ns", "p-000", 0, 100)) is None

    def test_sub_ranges_of_one_page_share_a_shard_and_discard_together(self):
        cache = PageCache(max_entries=64, max_bytes=64 * 1024, shards=4)
        for offset, length in [(0, 10), (10, 20), (5, 40)]:
            cache.put(("ns", "page-a", offset, length), b"r" * length)
        cache.put(("ns", "page-b", 0, 10), b"b" * 10)
        assert cache.discard_page("ns", "page-a") == 3
        assert cache.get(("ns", "page-a", 0, 10)) is None
        assert cache.get(("ns", "page-a", 10, 20)) is None
        assert cache.get(("ns", "page-b", 0, 10)) == b"b" * 10
        assert cache.discard_page("ns", "page-a") == 0  # idempotent
        # Eviction maintains the group index: evicted entries are no longer
        # counted by a later discard.
        tiny = PageCache(max_entries=2, max_bytes=64 * 1024, shards=1)
        tiny.put(("ns", "p1", 0, 8), b"1" * 8)
        tiny.put(("ns", "p2", 0, 8), b"2" * 8)
        tiny.put(("ns", "p3", 0, 8), b"3" * 8)  # evicts p1's range
        assert tiny.discard_page("ns", "p1") == 0
        assert tiny.discard_page("ns", "p2") == 1

    def test_virtual_payloads_carry_size_only(self):
        virtual = VirtualPagePayload(4096)
        assert len(virtual) == 4096
        cache = PageCache(max_entries=8, max_bytes=64 * 1024, shards=1)
        cache.put(("ns", "p", 0, 4096), virtual)
        assert cache.bytes_used() >= 4096

    def test_budget_enforced_under_concurrent_readers(self):
        payload = b"c" * 64
        cache = PageCache(max_entries=48, max_bytes=48 * 200, shards=4)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for round_index in range(300):
                    key = ("ns", f"p-{(worker * 11 + round_index) % 96}", 0, 64)
                    if cache.get(key) is None:
                        cache.put(key, payload)
                    cache.get_many(
                        [("ns", f"p-{i}", 0, 64) for i in range(5)]
                    )
                    assert cache.bytes_used() <= cache.max_bytes * 2
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats.entries <= cache.max_entries
        assert stats.bytes <= cache.max_bytes
        assert stats.entries == len(cache)
        assert stats.hits + stats.misses == 8 * 300 * 6


class TestSharingSemantics:
    def test_warm_repeated_read_skips_the_providers(self):
        cluster = small_cluster()
        store = BlobStore(cluster, page_cache=PageCache())
        blob_id = store.create()
        payload = make_payload(16 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        data, cold = store.read_ex(blob_id, version, 0, len(payload))
        assert data == payload
        assert cold.data_round_trips > 0 and cold.page_cache_hits == 0
        gets_before = sum(
            provider.stats().get_requests
            for provider in cluster.provider_manager.providers()
        )
        data, warm = store.read_ex(blob_id, version, 0, len(payload))
        assert data == payload
        assert warm.data_round_trips == 0
        assert warm.page_cache_hits == warm.pages_fetched > 0
        assert warm.page_cache is not None and warm.page_cache.hits > 0
        assert sum(
            provider.stats().get_requests
            for provider in cluster.provider_manager.providers()
        ) == gets_before

    def test_two_stores_on_one_cluster_share_page_hits(self):
        cluster = small_cluster(page_cache_entries=4096)
        first = BlobStore(cluster)
        second = BlobStore(cluster)
        blob_id = first.create()
        payload = make_payload(8 * PAGE, seed=3)
        version = first.append(blob_id, payload)
        second.sync(blob_id, version)
        first.read(blob_id, version, 0, len(payload))  # warms the cluster cache
        _, stats = second.read_ex(blob_id, version, 0, len(payload))
        assert stats.data_round_trips == 0
        assert stats.page_cache_hits == stats.pages_fetched
        assert first.page_cache_stats() == second.page_cache_stats()

    def test_default_clusters_share_the_process_wide_cache(self):
        one, two = small_cluster(), small_cluster()
        assert one.page_cache is two.page_cache is shared_page_cache()
        # ...but namespaces keep them apart: same id generators, same page
        # ids, yet each cluster reads back its own bytes warm.
        store_one, store_two = BlobStore(one), BlobStore(two)
        blob_one, blob_two = store_one.create(), store_two.create()
        payload_one = make_payload(8 * PAGE, seed=1)
        payload_two = make_payload(8 * PAGE, seed=2)
        store_one.sync(blob_one, store_one.append(blob_one, payload_one))
        store_two.sync(blob_two, store_two.append(blob_two, payload_two))
        for _pass in range(2):  # second pass is served from the shared cache
            assert store_one.read(blob_one, 1, 0, len(payload_one)) == payload_one
            assert store_two.read(blob_two, 1, 0, len(payload_two)) == payload_two

    def test_page_cache_entries_none_disables_the_subsystem(self):
        cluster = small_cluster(page_cache_entries=None)
        assert cluster.page_cache is None
        store = BlobStore(cluster)
        blob_id = store.create()
        payload = make_payload(4 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        for _pass in range(2):
            data, stats = store.read_ex(blob_id, version, 0, len(payload))
            assert data == payload
            assert stats.data_round_trips > 0
            assert stats.page_cache_hits == 0 and stats.page_cache is None
        assert store.page_cache_stats().as_tuple() == (0, 0, 0)

    def test_gc_discards_collected_pages_from_the_cache(self):
        cluster = small_cluster(page_cache_entries=4096)
        store = BlobStore(cluster)
        blob_id = store.create()
        store.append(blob_id, make_payload(4 * PAGE, seed=1))
        replacement = make_payload(4 * PAGE, seed=2)
        version = store.write(blob_id, replacement, 0)
        store.sync(blob_id, version)
        store.read(blob_id, 1, 0, 4 * PAGE)  # warm v1's pages
        entries_before = cluster.page_cache.stats().entries
        assert entries_before > 0
        collect_garbage(cluster, {blob_id: [version]})
        # v1's pages are gone from providers AND from the cache: a read of
        # the collected snapshot must not be wrongly served from memory.
        assert cluster.page_cache.stats().entries < entries_before
        with pytest.raises(Exception):
            store.read(blob_id, 1, 0, 4 * PAGE)
        # The kept snapshot reads correctly, warm or cold.
        assert store.read(blob_id, version, 0, 4 * PAGE) == replacement
        assert store.read(blob_id, version, 0, 4 * PAGE) == replacement

    def test_eviction_pressure_keeps_reads_correct(self):
        cluster = small_cluster()
        tiny = PageCache(max_entries=8, max_bytes=8 * 1024, shards=2)
        store = BlobStore(cluster, page_cache=tiny)
        cold = BlobStore(cluster, cache_pages=False, cache_metadata=False)
        blob_id = store.create()
        payload = make_payload(32 * PAGE, seed=9)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        for offset, length in [(0, len(payload)), (3 * PAGE, 11 * PAGE), (7, 301)]:
            for _pass in range(2):
                assert store.read(blob_id, version, offset, length) == \
                    cold.read(blob_id, version, offset, length)
        assert len(tiny) <= 8
        assert tiny.stats().evictions > 0


class TestSimulatedPageCache:
    def test_warm_sim_reads_skip_provider_pipes(self):
        deployment = SimDeployment(num_provider_nodes=8, page_size=64 * 1024)
        blob_id = deployment.create_blob()
        deployment.populate_blob(blob_id, 8 * 1024 * 1024)
        version = deployment.version_manager.get_recent(blob_id)
        client = SimClient(deployment, 0)
        cold = deployment.simulator.run_process(
            client.read_process(blob_id, version, 0, 4 * 1024 * 1024)
        )
        assert cold.page_cache_hits == 0 and cold.data_round_trips == 8
        deployment.reset_timing()
        warm = deployment.simulator.run_process(
            SimClient(deployment, 0).read_process(blob_id, version, 0, 4 * 1024 * 1024)
        )
        assert warm.data_round_trips == 0
        assert warm.page_cache_hits == warm.pages_fetched
        assert warm.page_cache_hit_rate == 1.0
        assert warm.elapsed < cold.elapsed  # memory bandwidth beats the NIC
        assert warm.elapsed > 0.0  # ...but serving bytes is not free
        # A different range misses; a cache clear restores the cold regime.
        deployment.reset_timing()
        other = deployment.simulator.run_process(
            SimClient(deployment, 0).read_process(
                blob_id, version, 4 * 1024 * 1024, 4 * 1024 * 1024
            )
        )
        assert other.page_cache_hits == 0
        deployment.clear_node_caches()
        deployment.reset_timing()
        recold = deployment.simulator.run_process(
            SimClient(deployment, 0).read_process(blob_id, version, 0, 4 * 1024 * 1024)
        )
        assert recold.page_cache_hits == 0 and recold.data_round_trips == 8


# --------------------------------------------------------------- property test
operation_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(1, 3 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("write"), st.integers(1, 2 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("branch"), st.integers(0, 8), st.integers(0, 255)),
    ),
    min_size=1,
    max_size=10,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(operations=operation_strategy, data=st.data())
def test_page_cached_reads_match_uncached_reads_across_histories(operations, data):
    """Random APPEND / WRITE / BRANCH histories: every published snapshot
    must read identically through a warm shared page cache, a tiny
    thrashing one, and no page cache at all — twice, so the pure-hit path
    is exercised."""
    cluster = Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE
    )
    warm = BlobStore(cluster, page_cache=PageCache())
    tiny = BlobStore(
        cluster, page_cache=PageCache(max_entries=6, max_bytes=4096, shards=2)
    )
    cold = BlobStore(cluster, cache_pages=False, cache_metadata=False)

    blobs = [warm.create()]
    for operation, amount, fill in operations:
        blob_id = data.draw(st.sampled_from(blobs))
        recent = warm.get_recent(blob_id)
        if operation == "append":
            warm.sync(blob_id, warm.append(blob_id, bytes([fill]) * amount))
        elif operation == "write":
            size = warm.get_size(blob_id, recent)
            offset = data.draw(st.integers(0, max(size - 1, 0)))
            warm.sync(blob_id, warm.write(blob_id, bytes([fill]) * amount, offset))
        else:
            if recent > 0:
                version = data.draw(st.integers(1, recent))
                blobs.append(warm.branch(blob_id, version))

    for blob_id in blobs:
        for version in range(1, warm.get_recent(blob_id) + 1):
            size = warm.get_size(blob_id, version)
            expected = cold.read(blob_id, version, 0, size)
            for _ in range(2):  # second pass hits the warm/thrashed caches
                assert warm.read(blob_id, version, 0, size) == expected
                assert tiny.read(blob_id, version, 0, size) == expected
