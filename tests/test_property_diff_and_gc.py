"""Property-based tests for the operational tools (diff and GC).

The snapshot diff is validated against a brute-force byte comparison of the
two snapshots, and garbage collection is validated by checking that every
kept snapshot remains byte-identical after collection while the reclaimed
space is consistent with the accounting.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BlobStore, Cluster
from repro.tools.diff import diff_versions
from repro.tools.gc import collect_garbage

PAGE = 32


def build_cluster():
    return Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE
    )


def apply_operations(store, blob_id, operations, data):
    """Apply a random mix of appends and writes; return snapshot contents."""
    snapshots = {0: b""}
    content = bytearray()
    for kind, size, fill in operations:
        payload = bytes([fill]) * size
        if kind == "append" or not content:
            offset = len(content)
        else:
            offset = data.draw(st.integers(0, len(content)), label="write offset")
        version = (
            store.append(blob_id, payload)
            if offset == len(content)
            else store.write(blob_id, payload, offset)
        )
        if offset + size > len(content):
            content.extend(bytes(offset + size - len(content)))
        content[offset:offset + size] = payload
        snapshots[version] = bytes(content)
    if len(snapshots) > 1:
        store.sync(blob_id, max(snapshots))
    return snapshots


operations_strategy = st.lists(
    st.tuples(
        st.sampled_from(["append", "write"]),
        st.integers(1, 3 * PAGE),
        st.integers(0, 255),
    ),
    min_size=2,
    max_size=10,
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=operations_strategy, data=st.data())
def test_diff_matches_brute_force_byte_comparison(operations, data):
    cluster = build_cluster()
    store = BlobStore(cluster)
    blob_id = store.create()
    snapshots = apply_operations(store, blob_id, operations, data)
    versions = sorted(snapshots)
    old = data.draw(st.sampled_from(versions), label="old version")
    new = data.draw(st.sampled_from(versions), label="new version")

    changes = diff_versions(cluster, blob_id, old, new)
    flagged_pages = {
        page
        for change in changes
        for page in range(change.page_offset, change.page_offset + change.page_count)
    }

    old_bytes, new_bytes = snapshots[old], snapshots[new]
    total_pages = -(-max(len(old_bytes), len(new_bytes)) // PAGE)
    for page in range(total_pages):
        start, end = page * PAGE, (page + 1) * PAGE
        differs = old_bytes[start:end] != new_bytes[start:end]
        in_one_only = (start >= len(old_bytes)) != (start >= len(new_bytes))
        if differs or in_one_only:
            # Any page whose bytes differ must be flagged (no false negatives).
            assert page in flagged_pages, (page, old, new)
    # No page outside both snapshots is ever flagged.
    assert all(page < total_pages for page in flagged_pages)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=operations_strategy, data=st.data())
def test_gc_preserves_every_kept_snapshot(operations, data):
    cluster = build_cluster()
    store = BlobStore(cluster)
    blob_id = store.create()
    snapshots = apply_operations(store, blob_id, operations, data)
    versions = [version for version in sorted(snapshots) if version > 0]
    if not versions:
        return
    keep = sorted(
        set(
            data.draw(
                st.lists(st.sampled_from(versions), min_size=1, max_size=len(versions)),
                label="kept versions",
            )
        )
    )
    bytes_before = cluster.storage_bytes_used()
    report = collect_garbage(cluster, {blob_id: keep})
    assert cluster.storage_bytes_used() == bytes_before - report.reclaimed_bytes
    assert report.deleted_pages >= 0
    for version in keep:
        expected = snapshots[version]
        assert store.get_size(blob_id, version) == len(expected)
        if expected:
            assert store.read(blob_id, version, 0, len(expected)) == expected
    # Collecting again with the same keep set reclaims nothing further.
    second = collect_garbage(cluster, {blob_id: keep})
    assert second.deleted_pages == 0
    assert second.deleted_nodes == 0
