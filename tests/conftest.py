"""Shared fixtures for the test suite.

Most tests run against a small in-memory cluster with a tiny page size so
that multi-page and multi-level-tree behaviour is exercised with small
buffers.
"""

from __future__ import annotations

import os

import pytest

from repro import BlobStore, Cluster
from repro.analysis.sanitizer import LockSanitizer
from repro.config import BlobSeerConfig

#: Tiny page size so a few hundred bytes already span many pages/tree levels.
TEST_PAGE_SIZE = 64


@pytest.fixture
def lock_sanitizer():
    """Install the runtime concurrency sanitizer for one test.

    Every ``threading.Lock``/``RLock`` (and ``Condition``) created while
    the test runs is instrumented: inconsistent lock orders and locks held
    across a real ``await`` raise immediately (see
    :mod:`repro.analysis.sanitizer`).  Locks created before the test —
    module-level and process-shared ones — stay unsanitized.
    """
    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()


@pytest.fixture(autouse=True)
def _sanitize_from_env(request):
    """Sanitize every test when ``REPRO_SANITIZE=1`` (async/chaos CI jobs).

    Tests that already use ``lock_sanitizer`` are skipped here — only one
    sanitizer may be installed at a time.
    """
    if not os.environ.get("REPRO_SANITIZE"):
        yield
        return
    if "lock_sanitizer" in request.fixturenames:
        yield
        return
    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()


@pytest.fixture
def cluster() -> Cluster:
    """A small in-memory deployment (8 data providers, 8 DHT buckets)."""
    return Cluster.in_memory(
        num_data_providers=8,
        num_metadata_providers=8,
        page_size=TEST_PAGE_SIZE,
    )


@pytest.fixture
def store(cluster) -> BlobStore:
    """A cold-cache client: ``cache_metadata`` and ``cache_pages`` default
    to True (shared, LRU-bounded), but the suite's exact trip-count,
    DHT-traffic and provider-traffic assertions need cold-cache
    determinism; cache behaviour has its own tests with explicit
    :class:`~repro.cache.NodeCache` / :class:`~repro.cache.PageCache`
    instances."""
    return BlobStore(cluster, cache_metadata=False, cache_pages=False)


@pytest.fixture
def blob_id(store) -> str:
    return store.create()


@pytest.fixture
def replicated_cluster() -> Cluster:
    """A deployment with 3-way metadata replication and checksum verification."""
    config = BlobSeerConfig(
        page_size=TEST_PAGE_SIZE,
        num_data_providers=6,
        num_metadata_providers=6,
        metadata_replication=3,
        verify_checksums=True,
    )
    return Cluster(config)


def make_payload(size: int, seed: int = 0) -> bytes:
    """Deterministic pseudo-random payload of ``size`` bytes."""
    pattern = bytes((seed * 131 + index * 7) % 256 for index in range(251))
    repeats = -(-size // len(pattern))
    return (pattern * repeats)[:size]
