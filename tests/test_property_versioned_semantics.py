"""Property-based end-to-end test: BlobSeer vs. a reference model.

Hypothesis drives random sequences of APPEND / WRITE / BRANCH operations
against both the real system (BlobStore on an in-memory cluster) and the
trivially-correct full-copy reference model.  After every operation, every
published snapshot of every blob must read back identical to the model —
this is the paper's snapshot semantics stated as one invariant.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BlobStore, Cluster
from repro.baselines.fullcopy import FullCopyVersionedStore

PAGE = 32


class ReferenceBlob:
    """Reference model: per-blob full-copy history plus branch bookkeeping."""

    def __init__(self):
        self.snapshots: list[bytes] = [b""]

    def apply_write(self, data: bytes, offset: int) -> None:
        current = bytearray(self.snapshots[-1])
        if offset + len(data) > len(current):
            current.extend(bytes(offset + len(data) - len(current)))
        current[offset:offset + len(data)] = data
        self.snapshots.append(bytes(current))

    def branch(self, version: int) -> "ReferenceBlob":
        child = ReferenceBlob()
        child.snapshots = self.snapshots[:version + 1]
        return child


operation_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(1, 3 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("write"), st.integers(1, 2 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("branch"), st.integers(0, 10), st.integers(0, 255)),
    ),
    min_size=1,
    max_size=14,
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(operations=operation_strategy, data=st.data())
def test_blobseer_matches_reference_model(operations, data):
    cluster = Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE
    )
    store = BlobStore(cluster)
    root = store.create()
    blobs: list[tuple[str, ReferenceBlob]] = [(root, ReferenceBlob())]

    for kind, size, fill in operations:
        blob_index = data.draw(
            st.integers(0, len(blobs) - 1), label="target blob"
        )
        blob_id, model = blobs[blob_index]
        payload = bytes([fill]) * size

        if kind == "append":
            version = store.append(blob_id, payload)
            store.sync(blob_id, version)
            model.apply_write(payload, len(model.snapshots[-1]))
        elif kind == "write":
            current_size = len(model.snapshots[-1])
            offset = data.draw(st.integers(0, current_size), label="write offset")
            version = store.write(blob_id, payload, offset)
            store.sync(blob_id, version)
            model.apply_write(payload, offset)
        else:  # branch
            latest = store.get_recent(blob_id)
            branch_version = min(size % (latest + 1), latest)
            branch_id = store.branch(blob_id, branch_version)
            blobs.append((branch_id, model.branch(branch_version)))

    # Invariant: every published snapshot of every blob equals the model.
    for blob_id, model in blobs:
        recent = store.get_recent(blob_id)
        assert recent == len(model.snapshots) - 1
        for version, expected in enumerate(model.snapshots):
            assert store.get_size(blob_id, version) == len(expected)
            if expected:
                assert store.read(blob_id, version, 0, len(expected)) == expected


@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=5 * PAGE), min_size=1, max_size=10)
)
def test_append_stream_equals_concatenation(chunks):
    """Appending arbitrary binary chunks reads back as their concatenation,
    at every intermediate version."""
    cluster = Cluster.in_memory(
        num_data_providers=3, num_metadata_providers=3, page_size=PAGE
    )
    store = BlobStore(cluster)
    blob_id = store.create()
    accumulated = b""
    for version, chunk in enumerate(chunks, start=1):
        store.append(blob_id, chunk)
        accumulated += chunk
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, len(accumulated)) == accumulated
    # Storage never exceeds the page-rounded total of written bytes.
    pages_written = sum(-(-len(chunk) // PAGE) + 1 for chunk in chunks)
    assert cluster.stored_page_count() <= pages_written + len(chunks)


@settings(max_examples=25, deadline=None)
@given(
    base_size=st.integers(1, 6 * PAGE),
    overwrites=st.lists(
        st.tuples(
            st.integers(0, 6 * PAGE), st.integers(1, 2 * PAGE), st.integers(0, 255)
        ),
        max_size=6,
    ),
)
def test_full_copy_baseline_agrees_with_blobseer(base_size, overwrites):
    """The FullCopyVersionedStore baseline and BlobSeer stay byte-identical
    under the same workload (it is used as the oracle in the benchmarks)."""
    cluster = Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE
    )
    store = BlobStore(cluster)
    baseline = FullCopyVersionedStore()
    blob_id = store.create()
    base = b"\x7f" * base_size
    store.sync(blob_id, store.append(blob_id, base))
    baseline.append(base)
    for offset, size, fill in overwrites:
        payload = bytes([fill]) * size
        offset = min(offset, store.get_size(blob_id, store.get_recent(blob_id)))
        version = store.write(blob_id, payload, offset)
        store.sync(blob_id, version)
        baseline.write(payload, offset)
    recent = store.get_recent(blob_id)
    assert recent == baseline.get_recent()
    for version in range(recent + 1):
        size = store.get_size(blob_id, version)
        assert size == baseline.get_size(version)
        assert store.read(blob_id, version, 0, size) == baseline.read(version, 0, size)
