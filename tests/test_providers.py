"""Unit tests for data providers, allocation strategies and the provider
manager."""

import pytest

from repro.errors import NoProvidersError, PageNotFoundError, ProviderUnavailableError
from repro.providers.allocation import (
    LeastLoadedAllocation,
    RandomAllocation,
    RoundRobinAllocation,
    make_allocation_strategy,
)
from repro.providers.data_provider import DataProvider
from repro.providers.page_store import NullPageStore
from repro.providers.provider_manager import ProviderManager


class TestDataProvider:
    def test_store_and_fetch(self):
        provider = DataProvider("data-0000")
        provider.store_page("p1", b"payload")
        assert provider.fetch_page("p1") == b"payload"
        assert provider.fetch_page("p1", offset=3, length=2) == b"lo"
        assert provider.has_page("p1")

    def test_missing_page(self):
        provider = DataProvider("data-0000")
        with pytest.raises(PageNotFoundError):
            provider.fetch_page("ghost")

    def test_kill_and_revive(self):
        provider = DataProvider("data-0000")
        provider.store_page("p1", b"x")
        provider.kill()
        with pytest.raises(ProviderUnavailableError):
            provider.fetch_page("p1")
        with pytest.raises(ProviderUnavailableError):
            provider.store_page("p2", b"y")
        provider.revive()
        assert provider.fetch_page("p1") == b"x"

    def test_checksum_verification(self):
        provider = DataProvider("data-0000", verify_checksums=True)
        provider.store_page("p1", b"payload")
        assert provider.fetch_page("p1") == b"payload"

    def test_stats(self):
        provider = DataProvider("data-0000")
        provider.store_page("p1", b"aaaa")
        provider.fetch_page("p1")
        stats = provider.stats()
        assert stats.pages == 1
        assert stats.bytes_used == 4
        assert stats.put_requests == 1
        assert stats.get_requests == 1

    def test_virtual_pages_on_null_store(self):
        provider = DataProvider("data-0000", store=NullPageStore())
        provider.store_virtual_page("p1", 4096)
        assert provider.bytes_used() == 4096
        assert provider.fetch_page("p1", 0, 10) == bytes(10)

    def test_virtual_pages_fall_back_to_zero_payload(self):
        provider = DataProvider("data-0000")  # in-memory store, no put_virtual
        provider.store_virtual_page("p1", 16)
        assert provider.fetch_page("p1") == bytes(16)

    def test_delete_page(self):
        provider = DataProvider("data-0000")
        provider.store_page("p1", b"x")
        assert provider.delete_page("p1") is True
        assert provider.delete_page("p1") is False


class TestAllocationStrategies:
    PROVIDERS = [f"data-{index:04d}" for index in range(4)]

    def test_round_robin_cycles(self):
        strategy = RoundRobinAllocation()
        first = strategy.select(self.PROVIDERS, 6, lambda _p: 0)
        assert first == ["data-0000", "data-0001", "data-0002", "data-0003",
                         "data-0000", "data-0001"]
        second = strategy.select(self.PROVIDERS, 2, lambda _p: 0)
        assert second == ["data-0002", "data-0003"]

    def test_round_robin_empty_providers(self):
        assert RoundRobinAllocation().select([], 3, lambda _p: 0) == []

    def test_random_is_seedable(self):
        a = RandomAllocation(seed=7).select(self.PROVIDERS, 10, lambda _p: 0)
        b = RandomAllocation(seed=7).select(self.PROVIDERS, 10, lambda _p: 0)
        assert a == b
        assert set(a) <= set(self.PROVIDERS)

    def test_least_loaded_prefers_idle_providers(self):
        strategy = LeastLoadedAllocation(page_size_hint=60)
        loads = {"data-0000": 100, "data-0001": 0, "data-0002": 50, "data-0003": 100}
        chosen = strategy.select(self.PROVIDERS, 3, loads.get)
        # Greedy minimum, updated with the 60-byte hint after each choice:
        # 0001 (load 0), 0002 (load 50 vs 60), then 0001 again (60 vs 110).
        assert chosen == ["data-0001", "data-0002", "data-0001"]

    def test_factory(self):
        assert isinstance(make_allocation_strategy("round_robin"), RoundRobinAllocation)
        assert isinstance(make_allocation_strategy("random"), RandomAllocation)
        strategy = make_allocation_strategy("least_loaded")
        assert isinstance(strategy, LeastLoadedAllocation)
        with pytest.raises(ValueError):
            make_allocation_strategy("psychic")


class TestProviderManager:
    def _manager(self, count=4):
        manager = ProviderManager()
        for index in range(count):
            manager.register(DataProvider(f"data-{index:04d}"))
        return manager

    def test_register_and_allocate(self):
        manager = self._manager()
        assert len(manager) == 4
        allocation = manager.allocate(8)
        assert len(allocation) == 8
        assert set(allocation) == set(manager.provider_ids())

    def test_allocate_zero(self):
        assert self._manager().allocate(0) == []

    def test_no_providers_raises(self):
        manager = ProviderManager()
        with pytest.raises(NoProvidersError):
            manager.allocate(1)

    def test_deregistered_provider_not_allocated_but_still_readable(self):
        manager = self._manager()
        manager.provider("data-0001").store_page("p1", b"x")
        manager.deregister("data-0001")
        allocation = manager.allocate(12)
        assert "data-0001" not in allocation
        assert manager.provider("data-0001").fetch_page("p1") == b"x"

    def test_dead_providers_skipped(self):
        manager = self._manager()
        manager.provider("data-0002").kill()
        allocation = manager.allocate(9)
        assert "data-0002" not in allocation

    def test_all_dead_raises(self):
        manager = self._manager(2)
        for provider in manager.providers():
            provider.kill()
        with pytest.raises(NoProvidersError):
            manager.allocate(1)

    def test_load_accounting_and_imbalance(self):
        manager = self._manager()
        assert manager.imbalance() == 0.0
        for index, provider_id in enumerate(manager.allocate(8)):
            manager.provider(provider_id).store_page(f"p{index}", b"z" * 10)
        assert manager.total_pages() == 8
        assert manager.total_bytes_used() == 80
        assert manager.imbalance() == pytest.approx(1.0)

    def test_allocate_providers_resolves_objects(self):
        manager = self._manager()
        providers = manager.allocate_providers(3)
        assert all(isinstance(provider, DataProvider) for provider in providers)
