"""Unit tests for UpdateTicket geometry and BlobRecord lineage resolution."""

from repro.version.records import (
    BlobRecord,
    InFlightUpdate,
    UpdateTicket,
    resolve_owner,
)


class TestUpdateTicketGeometry:
    def _ticket(self, **overrides):
        defaults = dict(
            blob_id="blob",
            version=3,
            byte_offset=0,
            byte_size=256,
            prev_size=0,
            new_size=256,
            page_size=64,
            published_version=0,
            published_size=0,
        )
        defaults.update(overrides)
        return UpdateTicket(**defaults)

    def test_aligned_geometry(self):
        ticket = self._ticket()
        assert ticket.page_offset == 0
        assert ticket.page_count == 4
        assert ticket.new_num_pages == 4
        assert ticket.span == 4
        assert ticket.prev_num_pages == 0

    def test_unaligned_geometry_covers_boundary_pages(self):
        ticket = self._ticket(byte_offset=100, byte_size=100,
                              prev_size=150, new_size=200)
        assert ticket.page_offset == 1
        assert ticket.page_count == 3     # pages 1, 2, 3
        assert ticket.prev_num_pages == 3
        assert ticket.new_num_pages == 4
        assert ticket.span == 4

    def test_span_is_power_of_two(self):
        ticket = self._ticket(byte_offset=0, byte_size=64 * 5, new_size=64 * 5)
        assert ticket.span == 8

    def test_published_pages(self):
        ticket = self._ticket(published_version=2, published_size=130)
        assert ticket.published_num_pages == 3

    def test_inflight_tuples(self):
        ticket = self._ticket(
            inflight=(InFlightUpdate(1, 0, 2), InFlightUpdate(2, 2, 1))
        )
        assert ticket.inflight_tuples() == [(1, 0, 2), (2, 2, 1)]


class TestLineageResolution:
    def test_plain_blob_owns_everything(self):
        record = BlobRecord("root", 64)
        assert not record.is_branch
        assert resolve_owner(record, 0) == "root"
        assert resolve_owner(record, 99) == "root"

    def test_single_branch(self):
        record = BlobRecord("child", 64, lineage=(("root", 5),))
        assert record.is_branch
        assert resolve_owner(record, 5) == "root"
        assert resolve_owner(record, 3) == "root"
        assert resolve_owner(record, 6) == "child"

    def test_nested_branches(self):
        record = BlobRecord(
            "grandchild", 64, lineage=(("child", 8), ("root", 5))
        )
        assert resolve_owner(record, 9) == "grandchild"
        assert resolve_owner(record, 8) == "child"
        assert resolve_owner(record, 6) == "child"
        assert resolve_owner(record, 5) == "root"
        assert resolve_owner(record, 1) == "root"

    def test_branch_taken_before_parents_branch_point(self):
        # child branched from root at 10; grandchild branched from child at 3,
        # which is below root's branch point, so versions <= 3 belong to root.
        record = BlobRecord("grandchild", 64, lineage=(("child", 3), ("root", 10)))
        assert resolve_owner(record, 4) == "grandchild"
        assert resolve_owner(record, 3) == "root"
        assert resolve_owner(record, 1) == "root"
