"""Tests for the provider-parallel (batched) data path.

Mirrors ``test_batch_metadata.py`` one layer down: the same three concerns,
now for pages instead of tree nodes:

* the provider multi-ops — ``multi_fetch``/``multi_store`` must be
  byte-for-byte equivalent to the per-page loop, count one batch per
  request, and fail whole batches on a dead provider;
* the provider-manager grouping — requests are grouped into one batch per
  provider, results stay aligned with the request order, and a dead
  provider surfaces after the live ones finished;
* end-to-end accounting — ``ReadStats.data_round_trips`` and
  ``WriteResult.data_round_trips`` are O(providers touched), not O(pages),
  on aligned and unaligned reads/writes, with bytes and page counts
  unchanged by batching.
"""

import pytest

from repro import BlobStore, Cluster
from repro.errors import (
    IntegrityError,
    PageNotFoundError,
    ProviderUnavailableError,
    ShortReadError,
)
from repro.metadata.geometry import pages_for_size, span_for_pages
from repro.providers.data_provider import DataProvider
from repro.providers.provider_manager import ProviderManager
from repro.sim.client import SimClient
from repro.sim.deployment import SimDeployment
from repro.util.ranges import covering_page_range

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


def per_page_read(cluster, store, blob_id, version, offset, size):
    """Reference READ fetching every page with its own ``fetch_page`` call
    (the old protocol); returns (data, pages_fetched)."""
    record = cluster.version_manager.get_record(blob_id)
    page_size = record.page_size
    snapshot_size = cluster.version_manager.get_size(blob_id, version)
    page_offset, page_count = covering_page_range(offset, size, page_size)
    span = span_for_pages(pages_for_size(snapshot_size, page_size))
    plan_result = store._run_read_plan(
        record, version, span, page_offset, page_count
    )
    buffer = bytearray(size)
    fetched = 0
    for descriptor in plan_result.sorted_descriptors():
        page_start = descriptor.page_index * page_size
        want_start = max(offset, page_start)
        want_end = min(offset + size, page_start + page_size)
        if want_end <= want_start:
            continue
        chunk = cluster.provider_manager.provider(descriptor.provider_id).fetch_page(
            descriptor.page_id,
            offset=want_start - page_start,
            length=want_end - want_start,
        )
        buffer[want_start - offset:want_start - offset + len(chunk)] = chunk
        fetched += 1
    return bytes(buffer), fetched


class TestProviderMultiOps:
    def test_multi_store_then_multi_fetch_round_trip(self):
        provider = DataProvider("data-0000")
        items = [(f"p{i}", bytes([i]) * (10 + i)) for i in range(6)]
        provider.multi_store(items)
        payloads = provider.multi_fetch([(pid, 0, None) for pid, _ in items])
        assert payloads == [data for _, data in items]

    def test_batch_equals_per_page_loop(self):
        batched = DataProvider("data-batch")
        looped = DataProvider("data-loop")
        items = [(f"p{i}", make_payload(40, seed=i)) for i in range(5)]
        batched.multi_store(items)
        for page_id, data in items:
            looped.store_page(page_id, data)
        requests = [(f"p{i}", 3, 7) for i in range(5)]
        assert batched.multi_fetch(requests) == [
            looped.fetch_page(pid, offset=off, length=length)
            for pid, off, length in requests
        ]
        # Same per-page counters, one batch instead of N requests.
        bstats, lstats = batched.stats(), looped.stats()
        assert (bstats.put_requests, bstats.get_requests) == (
            lstats.put_requests, lstats.get_requests,
        )
        assert (bstats.batch_put_requests, bstats.batch_get_requests) == (1, 1)
        assert (lstats.batch_put_requests, lstats.batch_get_requests) == (0, 0)

    def test_empty_batches_are_free(self):
        provider = DataProvider("data-0000")
        provider.multi_store([])
        provider.multi_store_virtual([])
        assert provider.multi_fetch([]) == []
        stats = provider.stats()
        assert stats.batch_put_requests == 0
        assert stats.batch_get_requests == 0

    def test_dead_provider_fails_the_whole_batch(self):
        provider = DataProvider("data-0000")
        provider.multi_store([("p0", b"x"), ("p1", b"y")])
        provider.kill()
        with pytest.raises(ProviderUnavailableError):
            provider.multi_fetch([("p0", 0, None)])
        with pytest.raises(ProviderUnavailableError):
            provider.multi_store([("p2", b"z")])
        provider.revive()
        assert provider.multi_fetch([("p0", 0, None), ("p1", 0, None)]) == [
            b"x", b"y",
        ]

    def test_missing_page_raises_like_fetch_page(self):
        provider = DataProvider("data-0000")
        provider.store_page("p0", b"x")
        with pytest.raises(PageNotFoundError):
            provider.multi_fetch([("p0", 0, None), ("ghost", 0, None)])

    def test_full_page_batched_reads_verify_checksums(self):
        provider = DataProvider("data-0000", verify_checksums=True)
        provider.multi_store([("p0", b"payload-bytes")])
        # Full-page reads verify, whether the length is explicit or open.
        assert provider.multi_fetch([("p0", 0, None), ("p0", 0, 13)]) == [
            b"payload-bytes", b"payload-bytes",
        ]
        provider._store._pages["p0"] = b"corrupted-byte"[:13]
        with pytest.raises(IntegrityError):
            provider.multi_fetch([("p0", 0, 13)])
        # Partial reads cannot verify and still pass through.
        assert provider.multi_fetch([("p0", 1, 4)]) == [b"orru"]

    def test_multi_store_virtual_records_sizes(self):
        provider = DataProvider("data-0000")
        provider.multi_store_virtual([("p0", 100), ("p1", 200)])
        assert provider.bytes_used() == 300
        assert provider.multi_fetch([("p1", 10, 5)]) == [bytes(5)]


class TestShortReads:
    """Zero-copy short reads must raise, never silently serve zeros.

    Regression tests for the PR 5 bugfix: ``multi_fetch_into`` used to do
    ``out[:len(data)] = data`` and count ``len(data)``, leaving the tail of
    the destination view untouched when a stored page was truncated — the
    caller then returned those zero bytes as blob content.
    """

    def test_truncated_page_raises_instead_of_serving_zeros(self):
        provider = DataProvider("data-0000")
        provider.store_page("p0", b"x" * 64)
        # Simulate truncation: the store now holds fewer bytes than the
        # leaf metadata (and hence the request window) promises.
        provider._store.put("p0", b"x" * 40)
        out = bytearray(64)
        with pytest.raises(ShortReadError):
            provider.multi_fetch_into([("p0", 0, memoryview(out))])

    def test_truncated_page_raises_on_checksum_verify_path_too(self):
        provider = DataProvider("data-0000", verify_checksums=True)
        provider.store_page("p0", b"y" * 64)
        # The re-put refreshes the stored checksum, so only the length
        # reconciliation can catch the truncation — the verify path used to
        # be the one silently zero-filling.
        provider._store.put("p0", b"y" * 40)
        out = bytearray(64)
        with pytest.raises(ShortReadError):
            provider.multi_fetch_into([("p0", 0, memoryview(out))])

    def test_intact_page_still_reads_full_window(self):
        provider = DataProvider("data-0000")
        provider.store_page("p0", b"z" * 64)
        out = bytearray(16)
        written = provider.multi_fetch_into([("p0", 8, memoryview(out))])
        assert written == 16 and bytes(out) == b"z" * 16

    def test_manager_reconciles_batch_byte_counts(self):
        # Even a provider implementation that does NOT self-check cannot
        # smuggle a short batch past the manager: the per-batch byte count
        # is reconciled against the requested total.
        manager = ProviderManager()
        provider = DataProvider("data-0000")
        provider.store_page("p0", b"w" * 64)
        manager.register(provider)
        provider.multi_fetch_into = lambda requests: 3  # claims a short batch
        with pytest.raises(ShortReadError):
            manager.multi_fetch_into(
                [("data-0000", "p0", 0, memoryview(bytearray(8)))]
            )

    def test_end_to_end_read_surfaces_truncation(self, store, cluster, blob_id):
        payload = make_payload(4 * PAGE, seed=11)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        victim = next(
            provider
            for provider in cluster.provider_manager.providers()
            if provider.page_count()
        )
        page_id = victim.page_ids()[0]
        original = victim._store.get(page_id)
        victim._store.put(page_id, original[:-10])
        with pytest.raises(ShortReadError):
            store.read(blob_id, version, 0, 4 * PAGE)


class TestProviderManagerGrouping:
    def _manager(self, count=4):
        manager = ProviderManager()
        providers = [DataProvider(f"data-{i:04d}") for i in range(count)]
        for provider in providers:
            manager.register(provider)
        return manager, providers

    def test_requests_grouped_one_batch_per_provider(self):
        manager, providers = self._manager(3)
        items = [
            (f"data-{i % 3:04d}", f"p{i}", bytes([i]) * 8) for i in range(9)
        ]
        trips = manager.multi_store(items)
        assert trips == 3
        requests = [(pid, page_id, 0, None) for pid, page_id, _ in items]
        payloads, fetch_trips = manager.multi_fetch(requests)
        assert payloads == [payload for _, _, payload in items]
        assert fetch_trips == 3
        for provider in providers:
            stats = provider.stats()
            assert stats.put_requests == 3 and stats.batch_put_requests == 1
            assert stats.get_requests == 3 and stats.batch_get_requests == 1

    def test_empty_request_list(self):
        manager, _providers = self._manager(2)
        assert manager.multi_fetch([]) == ([], 0)
        assert manager.multi_store([]) == 0
        assert manager.multi_store_virtual([]) == 0

    def test_killed_provider_mid_batch_fails_after_live_ones(self):
        manager, providers = self._manager(3)
        items = [(f"data-{i % 3:04d}", f"p{i}", b"x" * 4) for i in range(6)]
        manager.multi_store(items)
        providers[1].kill()
        with pytest.raises(ProviderUnavailableError):
            manager.multi_fetch([(pid, page_id, 0, None) for pid, page_id, _ in items])
        # The live providers' batches still completed before the error; the
        # dead one rejected its batch before counting it.
        assert providers[0].stats().batch_get_requests == 1
        assert providers[2].stats().batch_get_requests == 1
        assert providers[1].stats().batch_get_requests == 0

    def test_run_batches_hook_receives_one_job_per_provider(self):
        manager, _providers = self._manager(4)
        items = [(f"data-{i % 4:04d}", f"p{i}", b"y" * 4) for i in range(8)]
        seen = []

        def run_batches(jobs):
            seen.append(len(jobs))
            return [job() for job in jobs]

        manager.multi_store(items, run_batches=run_batches)
        manager.multi_fetch(
            [(pid, page_id, 0, None) for pid, page_id, _ in items],
            run_batches=run_batches,
        )
        assert seen == [4, 4]


class TestEndToEndAccounting:
    def _cluster(self, providers=8, page_size=PAGE):
        return Cluster.in_memory(
            num_data_providers=providers,
            num_metadata_providers=8,
            page_size=page_size,
        )

    def test_128_page_read_over_8_providers_is_8_trips(self):
        cluster = self._cluster(providers=8)
        store = BlobStore(cluster)
        blob_id = store.create()
        payload = make_payload(128 * PAGE, seed=3)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        data, stats = store.read_ex(blob_id, version, 0, 128 * PAGE)
        assert data == payload
        assert stats.pages_fetched == 128
        assert stats.data_round_trips <= 8  # one batch per provider
        # Bytes and page counts identical to the per-page reference path.
        expected, fetched = per_page_read(
            cluster, store, blob_id, version, 0, 128 * PAGE
        )
        assert data == expected and fetched == 128

    def test_aligned_write_trips_count_providers_not_pages(self):
        cluster = self._cluster(providers=4)
        store = BlobStore(cluster)
        blob_id = store.create()
        result = store.write_ex(blob_id, make_payload(32 * PAGE, seed=1), 0)
        assert result.pages_written == 32
        assert result.data_round_trips == 4
        assert result.bytes_written == 32 * PAGE

    def test_unaligned_read_and_write_trips(self):
        cluster = self._cluster(providers=4)
        store = BlobStore(cluster)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(8 * PAGE, seed=2))
        store.sync(blob_id, version)

        # Unaligned read: partial first/last pages are still one batch per
        # provider holding a touched page.
        data, stats = store.read_ex(blob_id, version, PAGE // 2, 5 * PAGE)
        assert stats.pages_fetched == 6
        assert 1 <= stats.data_round_trips <= 4
        assert data == make_payload(8 * PAGE, seed=2)[PAGE // 2:PAGE // 2 + 5 * PAGE]

        # Unaligned write: boundary fetches and the store are all batched —
        # trips are bounded by providers touched, never by pages.
        result = store.write_ex(blob_id, make_payload(300, seed=4), PAGE // 2)
        boundary_pages = result.pages_written
        assert result.data_round_trips <= 4 + min(boundary_pages, 4)
        store.sync(blob_id, result.version)
        merged = store.read(blob_id, result.version, 0, 8 * PAGE)
        reference = bytearray(make_payload(8 * PAGE, seed=2))
        reference[PAGE // 2:PAGE // 2 + 300] = make_payload(300, seed=4)
        assert merged == bytes(reference)

    def test_parallel_io_batches_match_sequential(self):
        cluster = self._cluster(providers=8)
        # cache_pages pinned off: the second read would otherwise be served
        # by the shared page cache and report zero data trips.
        parallel = BlobStore(cluster, parallel_io=4, cache_pages=False)
        sequential = BlobStore(cluster, cache_pages=False)
        blob_id = parallel.create()
        payload = make_payload(64 * PAGE, seed=9)
        version = parallel.append(blob_id, payload)
        parallel.sync(blob_id, version)
        p_data, p_stats = parallel.read_ex(blob_id, version, 0, 64 * PAGE)
        s_data, s_stats = sequential.read_ex(blob_id, version, 0, 64 * PAGE)
        assert p_data == s_data == payload
        assert p_stats.data_round_trips == s_stats.data_round_trips <= 8

    def test_mid_store_death_discards_landed_pages(self):
        cluster = self._cluster(providers=2)
        store = BlobStore(cluster)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(4 * PAGE, seed=7))
        store.sync(blob_id, version)
        pages_before = cluster.provider_manager.total_pages()
        victim = cluster.provider_manager.provider("data-0001")
        original = victim.multi_store

        def dying_multi_store(items):
            victim.kill()
            return original(items)

        victim.multi_store = dying_multi_store
        # The victim dies mid-update: the other provider's batch landed, the
        # write fails, and the landed pages are garbage-collected.
        with pytest.raises(ProviderUnavailableError):
            store.append(blob_id, make_payload(4 * PAGE, seed=8))
        assert cluster.provider_manager.total_pages() == pages_before
        assert store.get_recent(blob_id) == version

    def test_read_fails_cleanly_when_a_provider_dies_mid_batch(self):
        cluster = self._cluster(providers=4)
        store = BlobStore(cluster)
        blob_id = store.create()
        payload = make_payload(8 * PAGE, seed=5)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        victim = cluster.provider_manager.provider("data-0002")
        victim.kill()
        # The dead provider's batch fails the READ; writes keep working
        # because allocation skips dead providers.
        with pytest.raises(ProviderUnavailableError):
            store.read(blob_id, version, 0, 8 * PAGE)
        next_version = store.append(blob_id, make_payload(4 * PAGE, seed=6))
        store.sync(blob_id, next_version)
        victim.revive()
        assert store.read(blob_id, version, 0, 8 * PAGE) == payload


class TestSimulatedDataTrips:
    def test_sim_read_and_append_report_provider_batches(self):
        deployment = SimDeployment(num_provider_nodes=8, page_size=64 * 1024)
        blob_id = deployment.create_blob()
        client = SimClient(deployment, 0)
        outcome = deployment.simulator.run_process(
            client.append_process(blob_id, 2 * 1024 * 1024)
        )
        assert outcome.pages_written == 32
        assert outcome.data_round_trips == 8  # one multi-push per provider
        read = deployment.simulator.run_process(
            client.read_process(blob_id, outcome.version, 0, 2 * 1024 * 1024)
        )
        assert read.pages_fetched == 32
        assert read.data_round_trips == 8  # one multi-fetch per provider
        # The appender's write-through warmed its machine's cache, so the
        # traversal is free; a cold client pays batched frontier trips.
        assert read.metadata_round_trips == 0
        assert read.metadata_cache_hits > 0
        deployment.clear_node_caches()
        cold = deployment.simulator.run_process(
            client.read_process(blob_id, outcome.version, 0, 2 * 1024 * 1024)
        )
        assert cold.metadata_cache_hits == 0
        assert 0 < cold.metadata_round_trips < cold.metadata_nodes_fetched
