"""Failure-injection tests: provider crashes, metadata bucket crashes,
replication, aborted updates and publication liveness.

The paper defers volatility and failures to future work; these tests cover
the extensions this reproduction adds (documented in DESIGN.md): killable
providers, replicated metadata, abort/timeout of stuck updates.
"""

import pytest

from repro import BlobStore, Cluster
from repro.config import BlobSeerConfig
from repro.errors import (
    NoProvidersError,
    ProviderUnavailableError,
    UpdateAbortedError,
    VersionNotPublishedError,
)

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


class TestDataProviderFailures:
    def test_reads_fail_only_for_pages_on_dead_providers(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        payload = make_payload(16 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        victim = cluster.provider_manager.provider_ids()[0]
        cluster.kill_data_provider(victim)
        with pytest.raises(ProviderUnavailableError):
            store.read(blob_id, version, 0, 16 * PAGE)
        cluster.revive_data_provider(victim)
        assert store.read(blob_id, version, 0, 16 * PAGE) == payload

    def test_new_writes_avoid_dead_providers(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        victim = cluster.provider_manager.provider_ids()[2]
        cluster.kill_data_provider(victim)
        version = store.append(blob_id, make_payload(12 * PAGE))
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, 12 * PAGE) == make_payload(12 * PAGE)
        assert cluster.provider_manager.provider(victim).page_count() == 0

    def test_all_providers_dead_fails_cleanly(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        for provider_id in cluster.provider_manager.provider_ids():
            cluster.kill_data_provider(provider_id)
        with pytest.raises(NoProvidersError):
            store.append(blob_id, b"x" * PAGE)
        # The failed append must not wedge the version pipeline.
        for provider_id in cluster.provider_manager.provider_ids():
            cluster.revive_data_provider(provider_id)
        version = store.append(blob_id, b"y" * PAGE)
        store.sync(blob_id, version)
        assert store.get_recent(blob_id) == version


class TestMetadataFailuresAndReplication:
    def test_unreplicated_metadata_bucket_failure_breaks_reads(self, cluster):
        # Cold cache: a warm shared cache would (correctly) mask the dead
        # bucket by serving the nodes from memory.
        store = BlobStore(cluster, cache_metadata=False)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(32 * PAGE))
        store.sync(blob_id, version)
        # Kill the bucket holding the root node of the latest version.
        loaded = [
            b for b, count in cluster.metadata_load_distribution().items() if count
        ]
        cluster.kill_metadata_bucket(loaded[0])
        with pytest.raises(ProviderUnavailableError):
            store.read(blob_id, version, 0, 32 * PAGE)
        cluster.revive_metadata_bucket(loaded[0])
        assert len(store.read(blob_id, version, 0, 32 * PAGE)) == 32 * PAGE

    def test_replicated_metadata_survives_single_bucket_failure(
        self, replicated_cluster
    ):
        store = BlobStore(replicated_cluster)
        blob_id = store.create()
        payload = make_payload(24 * PAGE, seed=5)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        victim = replicated_cluster.dht.bucket_ids()[0]
        replicated_cluster.kill_metadata_bucket(victim)
        assert store.read(blob_id, version, 0, len(payload)) == payload
        # Writes also keep working: the put lands on the surviving replicas.
        version2 = store.append(blob_id, payload)
        store.sync(blob_id, version2)
        assert store.read(blob_id, version2, len(payload), len(payload)) == payload


class TestAbortsAndLiveness:
    def test_failed_append_aborts_and_does_not_block_publication(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        store.append(blob_id, make_payload(2 * PAGE))
        # Kill every provider so the next append fails mid-flight.
        for provider_id in cluster.provider_manager.provider_ids():
            cluster.kill_data_provider(provider_id)
        with pytest.raises(NoProvidersError):
            store.append(blob_id, make_payload(PAGE))
        for provider_id in cluster.provider_manager.provider_ids():
            cluster.revive_data_provider(provider_id)
        version = store.append(blob_id, make_payload(PAGE, seed=2))
        store.sync(blob_id, version)
        assert store.get_recent(blob_id) == version
        assert store.get_size(blob_id, version) == 3 * PAGE

    def test_aborted_version_is_not_readable(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        store.append(blob_id, make_payload(PAGE))
        vm = cluster.version_manager
        ticket = vm.register_update(blob_id, PAGE, is_append=True)
        vm.abort_update(blob_id, ticket.version, "simulated crash")
        with pytest.raises((VersionNotPublishedError, UpdateAbortedError)):
            store.read(blob_id, ticket.version, 0, PAGE)
        assert store.get_recent(blob_id) == 1

    def test_update_timeout_reaps_crashed_writer(self):
        config = BlobSeerConfig(
            page_size=PAGE,
            num_data_providers=4,
            num_metadata_providers=4,
            update_timeout=0.05,
        )
        cluster = Cluster(config)
        store = BlobStore(cluster)
        blob_id = store.create()
        # Simulate a writer that stored pages and got a version but died
        # before writing metadata: register directly and never complete.
        cluster.version_manager.register_update(blob_id, PAGE, is_append=True)
        import time

        time.sleep(0.08)
        version = store.append(blob_id, make_payload(PAGE, seed=3))
        store.sync(blob_id, version, timeout=5)
        assert store.get_recent(blob_id) == version
