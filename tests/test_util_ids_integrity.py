"""Unit tests for id generation and checksum helpers."""

import threading

import pytest

from repro.errors import IntegrityError
from repro.util.ids import IdGenerator, new_blob_id, new_page_id
from repro.util.integrity import checksum, verify_checksum


class TestUuidIds:
    def test_blob_ids_are_unique_and_prefixed(self):
        ids = {new_blob_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(blob_id.startswith("blob-") for blob_id in ids)

    def test_page_ids_are_unique_and_prefixed(self):
        ids = {new_page_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(page_id.startswith("page-") for page_id in ids)


class TestIdGenerator:
    def test_deterministic_sequence(self):
        generator = IdGenerator("t")
        assert generator.next_blob_id() == "t-blob-00000000"
        assert generator.next_page_id() == "t-page-00000001"
        assert generator.next() == "t-00000002"

    def test_two_generators_restart_from_zero(self):
        assert IdGenerator("a").next() == IdGenerator("a").next()

    def test_thread_safety_produces_no_duplicates(self):
        generator = IdGenerator("x")
        results: list[str] = []
        lock = threading.Lock()

        def worker():
            local = [generator.next() for _ in range(200)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == len(set(results)) == 1600


class TestChecksums:
    def test_crc32_roundtrip(self):
        digest = checksum(b"hello world")
        assert digest.startswith("crc32:")
        verify_checksum(b"hello world", digest)

    def test_sha256_roundtrip(self):
        digest = checksum(b"hello world", algorithm="sha256")
        assert digest.startswith("sha256:")
        verify_checksum(b"hello world", digest)

    def test_mismatch_raises(self):
        digest = checksum(b"hello world")
        with pytest.raises(IntegrityError) as excinfo:
            verify_checksum(b"hello mars", digest, what="unit-test page")
        assert "unit-test page" in str(excinfo.value)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            checksum(b"data", algorithm="md5999")

    def test_empty_payload(self):
        verify_checksum(b"", checksum(b""))
