"""Tests of the observability layer (:mod:`repro.obs`, DESIGN.md §11).

Three groups:

* unit tests of the tracer, the sharded metrics registry and the
  exporters (including the Prometheus exposition linter);
* acceptance tests: a traced cold read produces ONE trace whose spans
  cover all three legs (VM check, metadata traversal, data fetch) with
  monotonically consistent timestamps — through the sync bridge AND
  across a 100-way ``asyncio.gather`` — and the simulator records the
  same legs in virtual-clock time;
* the invisibility property: with ``tracing=False`` (the default) every
  observable outcome — bytes, ``ReadStats``, ``WriteResult`` — is
  bit-identical to a traced run, proven over random operation histories
  exactly like the speculation-invisibility property of PR 8.
"""

from __future__ import annotations

import asyncio
import gc
import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings

from repro import AsyncBlobStore, BlobStore, Cluster, RepairService
from repro.cache import NodeCache, PageCache
from repro.fault.health import ProviderHealth
from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_span,
    get_registry,
    human_text,
    json_snapshot,
    parse_prometheus,
    prometheus_text,
    span,
)

from .conftest import TEST_PAGE_SIZE, make_payload
from .test_async_store import _SyncAsAsync, _drive_history, history_strategy


def traced_cluster(**overrides) -> Cluster:
    return Cluster.in_memory(
        num_data_providers=4,
        num_metadata_providers=4,
        page_size=TEST_PAGE_SIZE,
        tracing=True,
        **overrides,
    )


def untraced_cluster(**overrides) -> Cluster:
    return Cluster.in_memory(
        num_data_providers=4,
        num_metadata_providers=4,
        page_size=TEST_PAGE_SIZE,
        **overrides,
    )


# --------------------------------------------------------------------- tracer
class TestTracer:
    def test_span_is_a_noop_outside_any_trace(self):
        """Components instrumented with span() need no tracer and record
        nothing when no trace is active — the disabled-path contract."""
        assert current_span() is None
        with span("data.wave", wave=0) as leg:
            assert leg is None
        assert current_span() is None

    def test_root_and_children_share_a_trace(self):
        tracer = Tracer()
        with tracer.trace("read", blob_id="b") as root:
            assert current_span() is root
            with span("read.meta") as meta:
                assert meta is not None
                assert current_span() is meta
                with span("meta.fetch", nodes=3) as fetch:
                    assert fetch.parent_id == meta.span_id
            assert current_span() is root
        assert current_span() is None

        spans = tracer.spans()
        assert [item.name for item in spans] == [
            "meta.fetch",
            "read.meta",
            "read",
        ]  # completion order: innermost finishes first
        assert len({item.trace_id for item in spans}) == 1
        traces = tracer.traces()
        assert list(traces) == [root.trace_id]
        for item in spans:
            assert item.end is not None and item.end >= item.start
            assert item.start >= root.start
            assert item.end <= root.end
        assert spans[0].attrs == {"nodes": 3}

    def test_set_attaches_attributes_after_opening(self):
        tracer = Tracer()
        with tracer.trace("read") as root:
            with span("data.wave", wave=0) as wave:
                wave.set(requeued=2)
        assert tracer.spans("data.wave")[0].attrs == {"wave": 0, "requeued": 2}
        assert root.duration > 0.0

    def test_injectable_clock_and_retroactive_record(self):
        """The sim path: virtual-clock timestamps, spans recorded after
        the fact with explicit start/end and explicit parenting."""
        now = {"t": 10.0}
        tracer = Tracer(clock=lambda: now["t"])
        root = tracer.record("sim.read", 10.0, 14.0, size=128)
        tracer.record("sim.read.meta", 10.5, 12.0, parent=root)
        with tracer.trace("live") as live:
            now["t"] = 20.0
        assert live.start == 10.0 and live.end == 20.0
        meta = tracer.spans("sim.read.meta")[0]
        assert meta.trace_id == root.trace_id
        assert meta.parent_id == root.span_id
        assert meta.duration == pytest.approx(1.5)
        assert root.duration == pytest.approx(4.0)

    def test_buffer_is_bounded(self):
        tracer = Tracer(max_spans=4)
        for index in range(10):
            with tracer.trace(f"op{index}"):
                pass
        kept = tracer.spans()
        assert len(kept) == 4
        assert [item.name for item in kept] == ["op6", "op7", "op8", "op9"]


# ------------------------------------------------------------------- registry
class TestMetricsRegistry:
    def test_counters_gauges_histograms_render_sorted(self):
        registry = MetricsRegistry(shards=4)
        registry.inc("repro.read.ops", 2, {"cluster": "c1"})
        registry.inc("repro.read.ops", 3, {"cluster": "c1"})
        registry.set_gauge("repro.cache.entries", 7)
        registry.set_gauge("repro.cache.entries", 5)
        registry.observe("repro.read.latency_seconds", 0.003)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"repro.read.ops{cluster=c1}": 5}
        assert snapshot["gauges"] == {"repro.cache.entries": 5}
        histogram = snapshot["histograms"]["repro.read.latency_seconds"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(0.003)
        assert histogram["buckets"][-1][0] == "+Inf"
        # Per-slot counts: exactly one observation, in the 0.0025..0.005 slot.
        assert sum(counted for _bound, counted in histogram["buckets"]) == 1

    def test_count_fields_flattens_numeric_dataclass_fields(self):
        registry = MetricsRegistry()
        health = ProviderHealth().stats()
        registry.count_fields("repro.health", health, {"cluster": "c"})
        counters = registry.snapshot()["counters"]
        assert counters["repro.health.failures_recorded{cluster=c}"] == 0
        registry.count_fields(
            "x", {"keep": 1, "skipped": 2, "name": "str", "flag": True}, skip=("skipped",)
        )
        counters = registry.snapshot()["counters"]
        assert counters["x.keep"] == 1
        assert "x.skipped" not in counters  # explicitly skipped
        assert "x.name" not in counters  # non-numeric
        assert "x.flag" not in counters  # bools are not counters

    def test_sources_are_weak_and_pruned(self):
        registry = MetricsRegistry()

        class Owner:
            def stats(self):
                return {"value": 42}

        owner = Owner()
        registry.register_source("repro.thing", owner, lambda o: o.stats())
        assert registry.snapshot()["gauges"] == {"repro.thing.value": 42}
        del owner
        gc.collect()
        assert registry.snapshot()["gauges"] == {}

    def test_concurrent_increments_are_exact(self):
        """The sharded locks must lose no increment under thread contention
        (the sync bridge's parallel_io pool touches the registry)."""
        registry = MetricsRegistry(shards=4)

        def hammer():
            for _ in range(1000):
                registry.inc("repro.read.ops")
                registry.observe("repro.read.latency_seconds", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["repro.read.ops"] == 8000
        assert snapshot["histograms"]["repro.read.latency_seconds"]["count"] == 8000

    def test_process_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 1)
        registry.observe("c", 0.1)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ------------------------------------------------------------------ exporters
class TestExporters:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.inc("repro.read.ops", 3, {"cluster": "c-1"})
        registry.set_gauge("repro.cache.node.entries", 12, {"cluster": "c-1"})
        for value in (0.0002, 0.004, 9.0):
            registry.observe("repro.read.latency_seconds", value, {"cluster": "c-1"})
        return registry

    def test_prometheus_text_passes_the_linter(self):
        text = prometheus_text(self._populated())
        assert "# TYPE repro_read_ops counter" in text
        assert "# TYPE repro_cache_node_entries gauge" in text
        assert "# TYPE repro_read_latency_seconds histogram" in text
        samples = parse_prometheus(text)
        assert samples['repro_read_ops{cluster="c-1"}'] == 3
        assert samples['repro_cache_node_entries{cluster="c-1"}'] == 12
        assert samples['repro_read_latency_seconds_count{cluster="c-1"}'] == 3
        assert samples['repro_read_latency_seconds_sum{cluster="c-1"}'] == pytest.approx(
            9.0042
        )
        # Bucket counts are CUMULATIVE and the +Inf bucket equals _count.
        assert samples['repro_read_latency_seconds_bucket{cluster="c-1",le="+Inf"}'] == 3
        assert samples['repro_read_latency_seconds_bucket{cluster="c-1",le="5.0"}'] == 2
        assert samples['repro_read_latency_seconds_bucket{cluster="c-1",le="0.00025"}'] == 1

    def test_linter_rejects_malformed_exposition(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus("this is { not prometheus\n")
        with pytest.raises(ValueError, match="no samples"):
            parse_prometheus("\n")

    def test_json_snapshot_round_trips(self):
        document = json.loads(json_snapshot(self._populated()))
        assert document["counters"]["repro.read.ops{cluster=c-1}"] == 3
        assert document["histograms"]["repro.read.latency_seconds{cluster=c-1}"][
            "count"
        ] == 3

    def test_human_text_renders_sections_and_empty_registry(self):
        text = human_text(self._populated())
        assert "repro.read.ops{cluster=c-1}" in text
        assert "count=3" in text
        assert "(registry is empty)" in human_text(MetricsRegistry())


# ------------------------------------------------------- traced read coverage
def _trace_of_last_read(tracer):
    """The spans of the most recently finished ``read`` root trace."""
    roots = [item for item in tracer.spans("read") if item.parent_id is None]
    assert roots, "no read root span recorded"
    root = roots[-1]
    members = [item for item in tracer.spans() if item.trace_id == root.trace_id]
    return root, members


def _assert_read_legs(root, members):
    """All three legs present, timestamps monotonically consistent."""
    names = {item.name for item in members}
    assert {"read.vm", "read.meta", "read.data"} <= names
    by_id = {item.span_id: item for item in members}
    for item in members:
        assert item.end is not None
        assert item.end >= item.start
        assert item.start >= root.start
        assert item.end <= root.end
        if item.parent_id is not None:
            parent = by_id[item.parent_id]
            assert item.start >= parent.start
            assert item.end <= parent.end


class TestTracedReadCoverage:
    def test_cold_read_covers_all_three_legs_sync_bridge(self):
        """Acceptance: one cold ``read_ex`` through the SYNC bridge yields a
        single trace covering VM check, metadata levels and data waves."""
        cluster = traced_cluster()
        payload = make_payload(8 * TEST_PAGE_SIZE, seed=3)
        writer = BlobStore(cluster, node_cache=NodeCache(), page_cache=PageCache())
        blob_id = writer.create()
        version = writer.append(blob_id, payload)
        writer.sync(blob_id, version)

        cluster.tracer.clear()
        # A fresh reader with its own empty caches: the metadata walk and
        # the data fetch must genuinely travel.
        reader = BlobStore(cluster, node_cache=NodeCache(), page_cache=PageCache())
        data, stats = reader.read_ex(blob_id, version, 0, len(payload))
        assert data == payload

        root, members = _trace_of_last_read(cluster.tracer)
        assert len({item.trace_id for item in members}) == 1
        _assert_read_legs(root, members)
        names = [item.name for item in members]
        # Cold walk: one meta.fetch per traversed level, one data wave.
        assert names.count("meta.fetch") >= 2
        assert stats.metadata_round_trips >= 2
        assert "data.wave" in names
        assert root.attrs["blob_id"] == blob_id

    def test_cold_reads_cover_all_legs_under_100_way_gather(self):
        """Acceptance: 100 gathered reads on one loop produce 100 distinct
        traces, each with all three legs correctly parented (asyncio copies
        the context into every task, so concurrent spans never cross)."""
        cluster = traced_cluster()
        payload = make_payload(8 * TEST_PAGE_SIZE, seed=4)

        async def scenario():
            async with AsyncBlobStore(
                cluster, node_cache=NodeCache(), page_cache=PageCache()
            ) as store:
                blob_id = await store.create()
                version = await store.append(blob_id, payload)
                await store.sync(blob_id, version)
                cluster.tracer.clear()
                results = await asyncio.gather(
                    *(
                        store.read_ex(blob_id, version, 0, len(payload))
                        for _ in range(100)
                    )
                )
                return results

        results = asyncio.run(scenario())
        assert all(data == payload for data, _stats in results)

        tracer = cluster.tracer
        roots = [item for item in tracer.spans("read") if item.parent_id is None]
        assert len(roots) == 100
        grouped = tracer.traces()
        for root in roots:
            members = grouped[root.trace_id]
            assert len({item.trace_id for item in members}) == 1
            _assert_read_legs(root, members)

    def test_traced_write_and_append_cover_their_legs(self):
        cluster = traced_cluster()
        store = BlobStore(cluster, node_cache=NodeCache(), page_cache=PageCache())
        blob_id = store.create()
        store.append(blob_id, make_payload(4 * TEST_PAGE_SIZE, seed=5))
        names = {item.name for item in cluster.tracer.spans()}
        assert {"append", "write.vm", "write.store", "write.publish"} <= names
        store.write(blob_id, b"x" * TEST_PAGE_SIZE, 0)
        names = {item.name for item in cluster.tracer.spans()}
        assert "write" in names

    def test_operations_publish_registry_metrics(self):
        registry = get_registry()
        registry.reset()
        cluster = traced_cluster()
        store = BlobStore(cluster, node_cache=NodeCache(), page_cache=PageCache())
        blob_id = store.create()
        payload = make_payload(4 * TEST_PAGE_SIZE, seed=6)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        store.read(blob_id, version, 0, len(payload))

        snapshot = registry.snapshot()
        label = f"{{cluster={cluster.cache_namespace}}}"
        assert snapshot["counters"][f"repro.read.ops{label}"] == 1
        assert snapshot["counters"][f"repro.read.bytes_read{label}"] == len(payload)
        assert snapshot["counters"][f"repro.write.ops{label}"] == 1
        assert snapshot["histograms"][f"repro.read.latency_seconds{label}"]["count"] == 1
        # Pull sources: the cluster's VM/DHT/cache/health snapshots appear
        # among the gauges while the cluster is alive...
        assert snapshot["gauges"][f"repro.vm.register_requests{label}"] >= 1
        assert f"repro.dht.puts{label}" in snapshot["gauges"]
        # ...and the Prometheus rendering of the whole registry parses.
        parse_prometheus(prometheus_text(registry))
        registry.reset()

    def test_untraced_cluster_registers_and_records_nothing(self):
        registry = get_registry()
        registry.reset()
        cluster = untraced_cluster()
        assert cluster.tracer is None
        assert cluster.metrics is None
        store = BlobStore(cluster)
        blob_id = store.create()
        version = store.append(blob_id, b"x" * TEST_PAGE_SIZE)
        store.read(blob_id, version, 0, TEST_PAGE_SIZE)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ------------------------------------------------------------- sim virtual clock
class TestSimTracing:
    def test_sim_read_records_legs_in_virtual_clock_time(self):
        from repro.sim.client import SimClient
        from repro.sim.deployment import SimDeployment

        deployment = SimDeployment(num_provider_nodes=8, page_size=4096)
        deployment.tracer = Tracer(clock=lambda: deployment.simulator.now)
        blob_id = deployment.create_blob()
        version = deployment.populate_blob(blob_id, 16 * 4096)
        outcome = deployment.simulator.run_process(
            SimClient(deployment, 0).read_process(blob_id, version, 0, 16 * 4096)
        )

        tracer = deployment.tracer
        roots = [item for item in tracer.spans("sim.read") if item.parent_id is None]
        assert len(roots) == 1
        root = roots[0]
        # Virtual timestamps: the root covers exactly the outcome's elapsed
        # virtual time, and every leg nests inside it.
        assert root.duration == pytest.approx(outcome.elapsed)
        members = tracer.traces()[root.trace_id]
        names = {item.name for item in members}
        assert {"sim.read.vm", "sim.read.meta", "sim.read.data"} <= names
        for item in members:
            assert root.start <= item.start <= item.end <= root.end
        meta = next(item for item in members if item.name == "sim.read.meta")
        assert meta.duration == pytest.approx(outcome.meta_latency)


# ----------------------------------------------------------- stats satellites
class TestStatsSnapshots:
    def test_provider_health_stats(self):
        health = ProviderHealth(suspect_after=2)
        health.record_failure("p1")
        health.record_failure("p1")  # crosses the suspect threshold
        health.record_failure("p2")
        health.record_success("p2")
        stats = health.stats()
        assert stats.failures_recorded == 3
        assert stats.successes_recorded == 1
        assert stats.suspected == 1
        assert stats.tracked == 1  # p2 was cleared by its success
        assert stats.suspects == 1

    def test_repair_service_stats_accumulate_across_passes(self):
        cluster = Cluster.in_memory(
            num_data_providers=6,
            num_metadata_providers=4,
            page_size=TEST_PAGE_SIZE,
            page_replication=2,
        )
        store = BlobStore(cluster, cache_metadata=False, cache_pages=False)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(8 * TEST_PAGE_SIZE, seed=7))
        store.sync(blob_id, version)
        service = RepairService(cluster)

        first = service.repair()
        assert service.stats().passes == 1
        assert service.stats().pages_scanned == first.pages_scanned

        victim = max(
            cluster.provider_manager.providers(),
            key=lambda provider: provider.page_count(),
        ).provider_id
        cluster.kill_data_provider(victim)
        second = service.repair()
        stats = service.stats()
        assert stats.passes == 2
        assert stats.pages_scanned == first.pages_scanned + second.pages_scanned
        assert stats.copies_created == second.copies_created > 0

    def test_traced_cluster_repair_service_registers_as_source(self):
        registry = get_registry()
        registry.reset()
        cluster = traced_cluster()
        service = RepairService(cluster)
        service.repair()
        label = f"{{cluster={cluster.cache_namespace}}}"
        gauges = registry.snapshot()["gauges"]
        assert gauges[f"repro.repair.passes{label}"] == 1
        registry.reset()


# ------------------------------------------------------- invisibility property
class TestTracingIsInvisible:
    """BlobSeerConfig.tracing must be PURE observation: every byte and every
    counter identical with it on or off (the PR 8 speculation-invisibility
    model applied to the whole observability layer)."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=history_strategy)
    def test_sync_outcomes_bit_identical_with_tracing(self, operations):
        plain_store = BlobStore(
            untraced_cluster(), node_cache=NodeCache(), page_cache=PageCache()
        )
        plain = asyncio.run(_drive_history(_SyncAsAsync(plain_store), operations))

        traced_store = BlobStore(
            traced_cluster(), node_cache=NodeCache(), page_cache=PageCache()
        )
        traced = asyncio.run(_drive_history(_SyncAsAsync(traced_store), operations))
        assert traced == plain

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=history_strategy)
    def test_async_sync_equivalence_holds_under_tracing(self, operations):
        """The PR 7 equivalence property survives span recording: traced
        async (pipelined, context copied into every task) and traced sync
        (inline context) still agree field for field."""
        sync_store = BlobStore(
            traced_cluster(), node_cache=NodeCache(), page_cache=PageCache()
        )
        sync_outcomes = asyncio.run(
            _drive_history(_SyncAsAsync(sync_store), operations)
        )

        async def run_async():
            async with AsyncBlobStore(
                traced_cluster(), node_cache=NodeCache(), page_cache=PageCache()
            ) as store:
                return await _drive_history(store, operations)

        assert asyncio.run(run_async()) == sync_outcomes


# ------------------------------------------------------------ bench delta guard
class TestBenchDeltaGuard:
    def test_zero_baseline_never_prints_inf(self):
        from repro.bench.cli import format_delta

        assert format_delta(0, 0) == "+0.0%"
        assert format_delta(0.0, 3.5) == "new"
        assert format_delta(0, -1) == "new"
        assert format_delta(2.0, 3.0) == "+50.0%"
        assert format_delta(4.0, 3.0) == "-25.0%"
        for then, value in ((0, 0), (0, 123), (0.0, 1e-9)):
            rendered = format_delta(then, value)
            assert "inf" not in rendered and "nan" not in rendered

    def test_print_deltas_handles_zero_baseline_rows(self, capsys):
        from repro.bench.cli import _print_deltas

        rows = [{"readers": 4, "avg_bandwidth_mbps": 120.0, "failovers": 3}]
        baseline = [{"readers": 4, "avg_bandwidth_mbps": 0.0, "failovers": 0}]
        _print_deltas("fig2b", rows, baseline)
        output = capsys.readouterr().out
        assert "new" in output
        assert "inf" not in output
