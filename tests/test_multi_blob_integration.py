"""Integration tests across multiple blobs sharing one deployment."""

import pytest

from repro import BlobStore, Cluster
from repro.config import BlobSeerConfig
from repro.tools import cluster_report, collect_garbage, diff_versions

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


class TestMultipleBlobsShareTheCluster:
    def test_blobs_are_fully_isolated(self, store):
        blob_a = store.create()
        blob_b = store.create()
        payload_a = make_payload(5 * PAGE, seed=1)
        payload_b = make_payload(3 * PAGE, seed=2)
        store.sync(blob_a, store.append(blob_a, payload_a))
        store.sync(blob_b, store.append(blob_b, payload_b))
        assert store.get_recent(blob_a) == 1
        assert store.get_recent(blob_b) == 1
        assert store.read(blob_a, 1, 0, len(payload_a)) == payload_a
        assert store.read(blob_b, 1, 0, len(payload_b)) == payload_b
        # Updating one blob does not advance the other's versions.
        store.sync(blob_a, store.append(blob_a, payload_b))
        assert store.get_recent(blob_b) == 1

    def test_blobs_with_different_page_sizes_coexist(self, store, cluster):
        coarse = store.create(page_size=4 * PAGE)
        fine = store.create(page_size=PAGE)
        payload = make_payload(8 * PAGE, seed=3)
        store.sync(coarse, store.append(coarse, payload))
        store.sync(fine, store.append(fine, payload))
        assert store.read(coarse, 1, PAGE, PAGE) == payload[PAGE:2 * PAGE]
        assert store.read(fine, 1, PAGE, PAGE) == payload[PAGE:2 * PAGE]
        # The fine-grained blob needs more pages and more metadata.
        report = cluster_report(cluster)
        assert report.blobs == 2
        assert report.pages_stored == 8 + 2

    def test_report_aggregates_branches_and_blobs(self, store, cluster):
        origin = store.create()
        store.sync(origin, store.append(origin, make_payload(4 * PAGE)))
        branch = store.branch(origin, 1)
        store.sync(branch, store.append(branch, make_payload(PAGE, seed=4)))
        report = cluster_report(cluster)
        assert report.blobs == 2
        assert report.published_versions == 3     # origin v1 + branch v1..v2
        assert report.logical_bytes == 4 * PAGE + 5 * PAGE
        assert report.pages_stored == 5           # branch shares the first 4

    def test_gc_across_blobs_and_branches(self, store, cluster):
        origin = store.create()
        store.sync(origin, store.append(origin, make_payload(6 * PAGE, seed=5)))
        store.sync(origin, store.write(origin, make_payload(2 * PAGE, seed=6), 0))
        branch = store.branch(origin, 2)
        store.sync(branch, store.append(branch, make_payload(PAGE, seed=7)))
        other = store.create()
        store.sync(other, store.append(other, make_payload(2 * PAGE, seed=8)))

        report = collect_garbage(
            cluster,
            {origin: [2], branch: [3], other: [1]},
        )
        # Only origin v1's two overwritten pages are unreachable.
        assert report.deleted_pages == 2
        assert store.read(origin, 2, 0, 2 * PAGE) == make_payload(2 * PAGE, seed=6)
        assert store.read(branch, 3, 6 * PAGE, PAGE) == make_payload(PAGE, seed=7)
        assert store.read(other, 1, 0, 2 * PAGE) == make_payload(2 * PAGE, seed=8)

    def test_diff_is_per_blob(self, store, cluster):
        blob_a = store.create()
        blob_b = store.create()
        store.sync(blob_a, store.append(blob_a, make_payload(4 * PAGE, seed=1)))
        store.sync(blob_b, store.append(blob_b, make_payload(4 * PAGE, seed=2)))
        store.sync(blob_a, store.write(blob_a, make_payload(PAGE, seed=3), PAGE))
        changes_a = diff_versions(cluster, blob_a, 1, 2)
        assert len(changes_a) == 1 and changes_a[0].page_offset == 1
        assert diff_versions(cluster, blob_b, 1, 1) == []


class TestAlternativeStrategyDeployments:
    @pytest.mark.parametrize("allocation", ["least_loaded", "random"])
    def test_end_to_end_with_other_allocation_strategies(self, allocation):
        cluster = Cluster(
            BlobSeerConfig(
                page_size=PAGE,
                num_data_providers=5,
                num_metadata_providers=5,
                allocation_strategy=allocation,
            ),
            seed=3,
        )
        store = BlobStore(cluster)
        blob_id = store.create()
        payload = make_payload(20 * PAGE, seed=9)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, len(payload)) == payload
        assert cluster.stored_page_count() == 20

    def test_end_to_end_with_consistent_hash_metadata(self):
        cluster = Cluster(
            BlobSeerConfig(
                page_size=PAGE,
                num_data_providers=4,
                num_metadata_providers=6,
                dht_strategy="consistent",
            )
        )
        store = BlobStore(cluster)
        blob_id = store.create()
        payload = make_payload(16 * PAGE, seed=11)
        store.append(blob_id, payload)
        version = store.write(blob_id, make_payload(2 * PAGE, seed=12), 4 * PAGE)
        store.sync(blob_id, version)
        expected = (
            payload[:4 * PAGE] + make_payload(2 * PAGE, seed=12) + payload[6 * PAGE:]
        )
        assert store.read(blob_id, version, 0, len(payload)) == expected
        loads = cluster.metadata_load_distribution()
        assert sum(loads.values()) == cluster.metadata_node_count()
