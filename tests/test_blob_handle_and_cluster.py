"""Unit tests for the Blob handle, the Cluster wiring and the metadata
provider façade."""

import pytest

from repro import Blob, BlobStore, Cluster
from repro.config import BlobSeerConfig
from repro.errors import MetadataNotFoundError
from repro.metadata.metadata_provider import MetadataProvider
from repro.metadata.node import InnerNode, LeafNode, NodeKey
from repro.dht.dht import DHT
from repro.providers.page_store import FilePageStore, NullPageStore

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


class TestBlobHandle:
    def test_create_and_roundtrip(self, store):
        blob = Blob.create(store)
        version = blob.append(b"hello ")
        version = blob.append(b"world")
        blob.sync(version)
        assert blob.get_recent() == 2
        assert blob.get_size() == 11
        assert blob.read_all() == b"hello world"
        assert blob.read(1, 0, 6) == b"hello "

    def test_read_recent_and_versions(self, store):
        blob = Blob.create(store)
        blob.sync(blob.append(b"abc"))
        version, data = blob.read_recent(0, 3)
        assert (version, data) == (1, b"abc")
        assert blob.versions() == [0, 1]

    def test_write_and_default_arguments(self, store):
        blob = Blob.create(store)
        blob.sync(blob.append(b"x" * 100))
        blob.sync(blob.write(b"y" * 10, 5))
        assert blob.get_size(1) == 100
        assert blob.read_all()[5:15] == b"y" * 10

    def test_branch_defaults_to_recent_version(self, store):
        blob = Blob.create(store)
        blob.sync(blob.append(b"shared"))
        draft = blob.branch()
        assert isinstance(draft, Blob)
        draft.sync(draft.append(b"-draft"))
        assert draft.read_all() == b"shared-draft"
        assert blob.read_all() == b"shared"
        assert draft.store is blob.store


class TestCluster:
    def test_in_memory_constructor_applies_overrides(self):
        cluster = Cluster.in_memory(
            num_data_providers=3, num_metadata_providers=5, page_size=128,
            allocation_strategy="least_loaded",
        )
        assert len(cluster.provider_manager) == 3
        assert len(cluster.dht.bucket_ids()) == 5
        assert cluster.config.page_size == 128
        assert cluster.config.allocation_strategy == "least_loaded"

    def test_page_store_factory_is_used(self, tmp_path):
        cluster = Cluster(
            BlobSeerConfig(page_size=PAGE, num_data_providers=2,
                           num_metadata_providers=2),
            page_store_factory=lambda pid: FilePageStore(str(tmp_path / pid)),
        )
        store = BlobStore(cluster)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(4 * PAGE))
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, 4 * PAGE) == make_payload(4 * PAGE)
        assert any((tmp_path / "data-0000").iterdir())

    def test_null_page_store_cluster_tracks_sizes_only(self):
        cluster = Cluster(
            BlobSeerConfig(page_size=PAGE, num_data_providers=2,
                           num_metadata_providers=2),
            page_store_factory=lambda _pid: NullPageStore(),
        )
        store = BlobStore(cluster)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(4 * PAGE))
        store.sync(blob_id, version)
        assert cluster.storage_bytes_used() == 4 * PAGE
        assert store.read(blob_id, version, 0, PAGE) == bytes(PAGE)

    def test_introspection_counters(self, cluster, store, blob_id):
        version = store.append(blob_id, make_payload(4 * PAGE))
        store.sync(blob_id, version)
        assert cluster.stored_page_count() == 4
        assert cluster.storage_bytes_used() == 4 * PAGE
        assert cluster.metadata_node_count() == 7
        assert sum(cluster.page_load_distribution().values()) == 4 * PAGE
        assert sum(cluster.metadata_load_distribution().values()) == 7

    def test_random_allocation_strategy_is_seedable(self):
        cluster_a = Cluster(
            BlobSeerConfig(page_size=PAGE, num_data_providers=4,
                           num_metadata_providers=4,
                           allocation_strategy="random"),
            seed=11,
        )
        cluster_b = Cluster(
            BlobSeerConfig(page_size=PAGE, num_data_providers=4,
                           num_metadata_providers=4,
                           allocation_strategy="random"),
            seed=11,
        )
        assert cluster_a.provider_manager.allocate(10) == (
            cluster_b.provider_manager.allocate(10)
        )


class TestMetadataProviderFacade:
    def test_put_get_roundtrip(self):
        provider = MetadataProvider(DHT(num_buckets=4))
        key = NodeKey("blob", 1, 0, 4)
        provider.put_node(key, InnerNode(1, 1))
        assert provider.get_node(key) == InnerNode(1, 1)
        assert provider.has_node(key)
        assert provider.node_count() == 1

    def test_leaf_roundtrip_and_delete(self):
        provider = MetadataProvider(DHT(num_buckets=4))
        key = NodeKey("blob", 2, 3, 1)
        provider.put_node(key, LeafNode("p1", "data-0000", 64))
        assert provider.get_node(key).page_id == "p1"
        assert provider.delete_node(key) is True
        assert not provider.has_node(key)

    def test_missing_node_raises(self):
        provider = MetadataProvider(DHT(num_buckets=4))
        with pytest.raises(MetadataNotFoundError):
            provider.get_node(NodeKey("blob", 1, 0, 1))

    def test_non_node_values_rejected(self):
        provider = MetadataProvider(DHT(num_buckets=4))
        with pytest.raises(TypeError):
            provider.put_node(NodeKey("blob", 1, 0, 1), {"not": "a node"})

    def test_node_key_string_roundtrip(self):
        key = NodeKey("bs-blob-00000042", 17, 96, 32)
        assert NodeKey.from_string(key.to_string()) == key
